//! `silkmoth` — command-line related-set discovery and search.
//!
//! Input format: one set per line; elements separated by a configurable
//! delimiter (default `|`); tokens within elements separated by
//! whitespace. Lines starting with `#` are ignored.
//!
//! ```text
//! # addresses.sets
//! 77 Mass Ave Boston MA|5th St 02115 Seattle WA|77 5th St Chicago IL
//! 77 Massachusetts Avenue Boston MA|Fifth Street Seattle MA 02115
//! ```
//!
//! Examples:
//!
//! ```text
//! silkmoth discover --input data.sets --metric similarity --delta 0.7
//! silkmoth search   --input lake.sets --reference q.sets --metric containment \
//!                   --delta 0.7 --alpha 0.5
//! silkmoth discover --input titles.sets --phi eds --alpha 0.8 --delta 0.8
//! silkmoth stats    --input data.sets
//! ```

use silkmoth::{
    Collection, Engine, EngineConfig, FilterKind, RelatednessMetric, SignatureScheme,
    SimilarityFunction, Tokenization,
};
use std::io::Read;
use std::process::exit;

#[derive(Debug)]
struct Cli {
    command: String,
    input: Option<String>,
    reference: Option<String>,
    metric: RelatednessMetric,
    phi: String,
    delta: f64,
    alpha: f64,
    scheme: SignatureScheme,
    filter: FilterKind,
    no_reduction: bool,
    delimiter: char,
    threads: usize,
    quiet: bool,
}

const USAGE: &str = "\
usage: silkmoth <discover|search|stats> [options]

options:
  --input FILE        sets file (one set per line; elements separated by the
                      delimiter; '-' for stdin)
  --reference FILE    reference sets file (search mode)
  --metric M          similarity | containment        (default: similarity)
  --phi F             jaccard | dice | cosine | eds | neds  (default: jaccard)
  --delta D           relatedness threshold in (0,1]  (default: 0.7)
  --alpha A           similarity threshold in [0,1)   (default: 0)
  --scheme S          unweighted | weighted | combined-unweighted |
                      skyline | dichotomy             (default: dichotomy)
  --filter F          none | check | nn               (default: nn)
  --no-reduction      disable reduction-based verification
  --delimiter C       element delimiter               (default: '|')
  --threads N         discovery threads, 0 = all      (default: 0)
  --quiet             print only result pairs
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| fail("missing command"));
    let mut cli = Cli {
        command,
        input: None,
        reference: None,
        metric: RelatednessMetric::Similarity,
        phi: "jaccard".into(),
        delta: 0.7,
        alpha: 0.0,
        scheme: SignatureScheme::Dichotomy,
        filter: FilterKind::CheckAndNearestNeighbor,
        no_reduction: false,
        delimiter: '|',
        threads: 0,
        quiet: false,
    };
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| fail("missing option value"));
        match a.as_str() {
            "--input" => cli.input = Some(val()),
            "--reference" => cli.reference = Some(val()),
            "--metric" => {
                cli.metric = match val().as_str() {
                    "similarity" => RelatednessMetric::Similarity,
                    "containment" => RelatednessMetric::Containment,
                    m => fail(&format!("unknown metric {m}")),
                }
            }
            "--phi" => cli.phi = val(),
            "--delta" => cli.delta = val().parse().unwrap_or_else(|_| fail("bad --delta")),
            "--alpha" => cli.alpha = val().parse().unwrap_or_else(|_| fail("bad --alpha")),
            "--scheme" => {
                cli.scheme = match val().as_str() {
                    "unweighted" => SignatureScheme::Unweighted,
                    "weighted" => SignatureScheme::Weighted,
                    "combined-unweighted" => SignatureScheme::CombinedUnweighted,
                    "skyline" => SignatureScheme::Skyline,
                    "dichotomy" => SignatureScheme::Dichotomy,
                    s => fail(&format!("unknown scheme {s}")),
                }
            }
            "--filter" => {
                cli.filter = match val().as_str() {
                    "none" => FilterKind::None,
                    "check" => FilterKind::Check,
                    "nn" => FilterKind::CheckAndNearestNeighbor,
                    f => fail(&format!("unknown filter {f}")),
                }
            }
            "--no-reduction" => cli.no_reduction = true,
            "--delimiter" => {
                let v = val();
                cli.delimiter = v.chars().next().unwrap_or_else(|| fail("empty delimiter"));
            }
            "--threads" => cli.threads = val().parse().unwrap_or_else(|_| fail("bad --threads")),
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown option {other}")),
        }
    }
    cli
}

fn read_sets(path: &str, delimiter: char) -> Vec<Vec<String>> {
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .unwrap_or_else(|e| fail(&format!("reading stdin: {e}")));
        s
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")))
    };
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| l.split(delimiter).map(str::to_owned).collect())
        .collect()
}

fn main() {
    let cli = parse_cli();
    let input = cli
        .input
        .clone()
        .unwrap_or_else(|| fail("--input is required"));
    let raw = read_sets(&input, cli.delimiter);
    if raw.is_empty() {
        fail("input contains no sets");
    }

    let similarity = match cli.phi.as_str() {
        "jaccard" => SimilarityFunction::Jaccard,
        "dice" => SimilarityFunction::Dice,
        "cosine" => SimilarityFunction::Cosine,
        "eds" | "neds" => {
            let q = SimilarityFunction::max_q_for_alpha(cli.alpha).unwrap_or(2);
            if cli.phi == "eds" {
                SimilarityFunction::Eds { q }
            } else {
                SimilarityFunction::NEds { q }
            }
        }
        p => fail(&format!("unknown phi {p}")),
    };
    let tokenization = match similarity {
        SimilarityFunction::Eds { q } | SimilarityFunction::NEds { q } => {
            Tokenization::QGram { q }
        }
        _ => Tokenization::Whitespace,
    };
    let collection = Collection::build(&raw, tokenization);

    if cli.command == "stats" {
        println!("{}", collection.stats());
        return;
    }

    let cfg = EngineConfig {
        metric: cli.metric,
        similarity,
        delta: cli.delta,
        alpha: cli.alpha,
        scheme: cli.scheme,
        filter: cli.filter,
        reduction: !cli.no_reduction,
    };
    let engine = match Engine::new(&collection, cfg) {
        Ok(e) => e,
        Err(e) => fail(&e.to_string()),
    };

    let t0 = std::time::Instant::now();
    match cli.command.as_str() {
        "discover" => {
            let out = engine.discover_self_parallel(cli.threads);
            for p in &out.pairs {
                println!("{}\t{}\t{:.6}", p.r, p.s, p.score);
            }
            if !cli.quiet {
                eprintln!(
                    "# {} pairs in {:.3}s over {} sets; candidates {} → check {} → nn {} → verified {}",
                    out.pairs.len(),
                    t0.elapsed().as_secs_f64(),
                    collection.len(),
                    out.stats.candidates,
                    out.stats.after_check,
                    out.stats.after_nn,
                    out.stats.verified,
                );
            }
        }
        "search" => {
            let ref_path = cli
                .reference
                .clone()
                .unwrap_or_else(|| fail("search needs --reference"));
            let refs_raw = read_sets(&ref_path, cli.delimiter);
            let mut total = 0usize;
            for (rid, r) in refs_raw.iter().enumerate() {
                let strs: Vec<&str> = r.iter().map(String::as_str).collect();
                let record = collection.encode_set(&strs);
                let out = engine.search(&record);
                for &(sid, score) in &out.results {
                    println!("{rid}\t{sid}\t{score:.6}");
                    total += 1;
                }
            }
            if !cli.quiet {
                eprintln!(
                    "# {} results for {} references in {:.3}s",
                    total,
                    refs_raw.len(),
                    t0.elapsed().as_secs_f64()
                );
            }
        }
        c => fail(&format!("unknown command {c}")),
    }
}
