//! `silkmoth` — command-line related-set discovery and search.
//!
//! Input format: one set per line; elements separated by a configurable
//! delimiter (default `|`); tokens within elements separated by
//! whitespace. Lines starting with `#` are ignored.
//!
//! ```text
//! # addresses.sets
//! 77 Mass Ave Boston MA|5th St 02115 Seattle WA|77 5th St Chicago IL
//! 77 Massachusetts Avenue Boston MA|Fifth Street Seattle MA 02115
//! ```
//!
//! Examples:
//!
//! ```text
//! silkmoth discover --input data.sets --metric similarity --delta 0.7
//! silkmoth search   --input lake.sets --reference q.sets --metric containment \
//!                   --delta 0.7 --alpha 0.5 --threads 8
//! silkmoth search   --input lake.sets --reference q.sets --top-k 10 --floor 0.3
//! silkmoth discover --input titles.sets --phi eds --alpha 0.8 --delta 0.8
//! silkmoth stats    --input data.sets
//! silkmoth serve    --input lake.sets --port 7700 --shards 4 --threads 8
//! silkmoth serve    --input lake.sets --data-dir ./lake-store --compact-ratio 0.3
//! silkmoth serve    --data-dir ./lake-store   # later: recover, no --input needed
//! silkmoth update   --input lake.sets --append new.sets --remove 3,17 --output lake.sets
//! ```

use silkmoth::storage::EngineState;
use silkmoth::{
    Collection, CompactionPolicy, Engine, EngineConfig, FilterKind, QuerySpec, RelatednessMetric,
    ShardSpec, ShardedEngine, SignatureScheme, SimilarityFunction, StorageError, Store,
    StoreConfig, StoreEngine, Tokenization,
};
use silkmoth_server::{
    dir_needs_fresh_store, follower_store_config, serve_catalog, serve_log, start_follower,
    CatalogConfig, CatalogService, FollowerConfig, LogFormat, SearchService, ServiceSource,
    StreamerConfig,
};
use std::io::Read;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct Cli {
    command: String,
    input: Option<String>,
    reference: Option<String>,
    append: Option<String>,
    remove: Vec<u32>,
    output: Option<String>,
    metric: RelatednessMetric,
    phi: String,
    delta: f64,
    alpha: f64,
    scheme: SignatureScheme,
    filter: FilterKind,
    no_reduction: bool,
    delimiter: char,
    threads: usize,
    top_k: Option<usize>,
    floor: Option<f64>,
    timeout_ms: Option<u64>,
    search_timeout_ms: Option<u64>,
    quiet: bool,
    addr: String,
    port: u16,
    shards: usize,
    data_dir: Option<String>,
    compact_ratio: Option<f64>,
    snapshot_every: Option<u64>,
    wal_segment_bytes: Option<u64>,
    max_inflight_updates: Option<usize>,
    max_collections: usize,
    no_fsync: bool,
    replicate_addr: Option<String>,
    replicate_from: Option<String>,
    log_format: Option<LogFormat>,
    slow_query_ms: Option<u64>,
    trace_sample: Option<u64>,
}

const USAGE: &str = "\
usage: silkmoth <discover|search|stats|serve|update> [options]

options:
  --input FILE        sets file (one set per line; elements separated by the
                      delimiter; '-' for stdin)
  --reference FILE    reference sets file (search mode)
  --append FILE       update: sets file to append to the collection
  --remove IDS        update: comma-separated set ids (input line numbers,
                      0-based) to remove
  --output FILE       update: where to write the updated collection
                      (default: stdout)
  --metric M          similarity | containment        (default: similarity)
  --phi F             jaccard | dice | cosine | eds | neds  (default: jaccard)
  --delta D           relatedness threshold in (0,1]  (default: 0.7)
  --alpha A           similarity threshold in [0,1)   (default: 0)
  --scheme S          unweighted | weighted | combined-unweighted |
                      skyline | dichotomy             (default: dichotomy)
  --filter F          none | check | nn               (default: nn)
  --no-reduction      disable reduction-based verification
  --delimiter C       element delimiter               (default: '|')
  --threads N         worker threads for discover/search, or HTTP workers
                      for serve; 0 = all (default: 0)
  --top-k K           search: keep only the K most related sets per
                      reference (score desc, then set id asc)
  --floor F           search: report sets with relatedness >= F in [0,1]
                      instead of the engine delta
  --timeout-ms N      search: wall-clock budget per reference; an expired
                      query reports the results proven so far (marked on
                      stderr) instead of scanning to the floor
  --quiet             print only result pairs
  --addr A            serve: bind address             (default: 127.0.0.1)
  --port P            serve: TCP port                 (default: 7700)
  --shards N          serve: engine shards, >= 1      (default: 4)
  --data-dir DIR      serve: run durable — recover the collection from
                      DIR (snapshot + WAL) or, when DIR is empty,
                      initialize it from --input; every update is
                      WAL-logged + fsync'd before it is acknowledged
  --compact-ratio R   auto-compact when dead/slots >= R in [0,1]
                      (works with and without --data-dir)
  --snapshot-every N  durable: auto-snapshot once the WAL holds N
                      records (default: 4096; requires --data-dir)
  --wal-segment-bytes N
                      durable: seal the active WAL segment once it
                      reaches N bytes (default: 64 MiB; 0 keeps one
                      unbounded segment per generation; requires
                      --data-dir)
  --max-inflight-updates N
                      serve: reject updates beyond N in flight with
                      503 + Retry-After instead of queuing unboundedly
  --search-timeout-ms N
                      serve: whole-request budget for POST /search and
                      POST /search/batch; an exhausted request gets 504
  --max-collections N serve: upper bound on catalog collections,
                      including 'default' (default: 64); also the
                      declared cardinality cap for the 'collection'
                      metric label
  --no-fsync          durable: skip the per-update fsync (faster bulk
                      loads; a crash may lose the unsynced tail)
  --log-format F      serve: structured request logging to stderr, one
                      line per request — text | json (off by default)
  --slow-query-ms N   serve: log the full spec of any search slower
                      than N ms (independent of --log-format); such
                      requests are also always captured as traces on
                      GET /debug/traces
  --trace-sample N    serve: additionally capture 1 in N requests as a
                      trace (0 = slow queries only, the default)
  --replicate-addr A:P
                      durable: also listen on A:P and ship the WAL to
                      followers (snapshot bootstrap + live tail)
  --replicate-from A:P
                      durable: run as a read-only follower of the
                      primary's replication listener at A:P; an empty
                      --data-dir bootstraps from the primary, updates
                      answer 409 until POST /promote (conflicts with
                      --input; both flags together chain replicas)

serve exposes POST /search, POST /search/batch, POST /discover,
POST /sets, DELETE /sets, POST /compact, POST /snapshot (durable),
POST /promote (follower failover), GET /stats, GET /healthz, and
GET /metrics (Prometheus text format; JSON everywhere else — see the
README for the schema and curl examples). Those routes serve the
'default' collection; the catalog adds PUT/GET/DELETE
/collections/<name>, GET /collections, and every route above scoped
as /collections/<name>/<route> for per-tenant collections (own
shards, quotas, metrics label, and durable subdirectory).

update applies --append and/or --remove to the collection through the
incremental-update layer, compacts it, and writes the surviving sets
(one per line) to --output.
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

/// The value of option `flag`, or a failure naming the flag that was
/// short an argument.
fn opt_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| fail(&format!("missing value for {flag}")))
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| fail("missing command"));
    let mut cli = Cli {
        command,
        input: None,
        reference: None,
        append: None,
        remove: Vec::new(),
        output: None,
        metric: RelatednessMetric::Similarity,
        phi: "jaccard".into(),
        delta: 0.7,
        alpha: 0.0,
        scheme: SignatureScheme::Dichotomy,
        filter: FilterKind::CheckAndNearestNeighbor,
        no_reduction: false,
        delimiter: '|',
        threads: 0,
        top_k: None,
        floor: None,
        timeout_ms: None,
        search_timeout_ms: None,
        quiet: false,
        addr: "127.0.0.1".into(),
        port: 7700,
        shards: 4,
        data_dir: None,
        compact_ratio: None,
        snapshot_every: None,
        wal_segment_bytes: None,
        max_inflight_updates: None,
        max_collections: 64,
        no_fsync: false,
        replicate_addr: None,
        replicate_from: None,
        log_format: None,
        slow_query_ms: None,
        trace_sample: None,
    };
    while let Some(a) = args.next() {
        let mut val = || opt_value(&mut args, &a);
        match a.as_str() {
            "--input" => cli.input = Some(val()),
            "--reference" => cli.reference = Some(val()),
            "--append" => cli.append = Some(val()),
            "--remove" => {
                cli.remove = val()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("bad set id '{s}' in --remove")))
                    })
                    .collect()
            }
            "--output" => cli.output = Some(val()),
            "--metric" => {
                cli.metric = match val().as_str() {
                    "similarity" => RelatednessMetric::Similarity,
                    "containment" => RelatednessMetric::Containment,
                    m => fail(&format!("unknown metric {m}")),
                }
            }
            "--phi" => cli.phi = val(),
            "--delta" => cli.delta = val().parse().unwrap_or_else(|_| fail("bad --delta")),
            "--alpha" => cli.alpha = val().parse().unwrap_or_else(|_| fail("bad --alpha")),
            "--scheme" => {
                cli.scheme = match val().as_str() {
                    "unweighted" => SignatureScheme::Unweighted,
                    "weighted" => SignatureScheme::Weighted,
                    "combined-unweighted" => SignatureScheme::CombinedUnweighted,
                    "skyline" => SignatureScheme::Skyline,
                    "dichotomy" => SignatureScheme::Dichotomy,
                    s => fail(&format!("unknown scheme {s}")),
                }
            }
            "--filter" => {
                cli.filter = match val().as_str() {
                    "none" => FilterKind::None,
                    "check" => FilterKind::Check,
                    "nn" => FilterKind::CheckAndNearestNeighbor,
                    f => fail(&format!("unknown filter {f}")),
                }
            }
            "--no-reduction" => cli.no_reduction = true,
            "--delimiter" => {
                let v = val();
                cli.delimiter = v.chars().next().unwrap_or_else(|| fail("empty delimiter"));
            }
            "--threads" => cli.threads = val().parse().unwrap_or_else(|_| fail("bad --threads")),
            "--top-k" => cli.top_k = Some(val().parse().unwrap_or_else(|_| fail("bad --top-k"))),
            "--floor" => cli.floor = Some(val().parse().unwrap_or_else(|_| fail("bad --floor"))),
            "--timeout-ms" => {
                cli.timeout_ms = Some(val().parse().unwrap_or_else(|_| fail("bad --timeout-ms")))
            }
            "--search-timeout-ms" => {
                cli.search_timeout_ms = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| fail("bad --search-timeout-ms")),
                )
            }
            "--quiet" => cli.quiet = true,
            "--addr" => cli.addr = val(),
            "--port" => cli.port = val().parse().unwrap_or_else(|_| fail("bad --port")),
            "--shards" => cli.shards = val().parse().unwrap_or_else(|_| fail("bad --shards")),
            "--data-dir" => cli.data_dir = Some(val()),
            "--compact-ratio" => {
                let r: f64 = val()
                    .parse()
                    .unwrap_or_else(|_| fail("bad --compact-ratio"));
                if !(0.0..=1.0).contains(&r) {
                    fail("--compact-ratio must be in [0, 1]");
                }
                cli.compact_ratio = Some(r);
            }
            "--snapshot-every" => {
                cli.snapshot_every = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| fail("bad --snapshot-every")),
                )
            }
            "--wal-segment-bytes" => {
                cli.wal_segment_bytes = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| fail("bad --wal-segment-bytes")),
                )
            }
            "--max-inflight-updates" => {
                cli.max_inflight_updates = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| fail("bad --max-inflight-updates")),
                )
            }
            "--max-collections" => {
                cli.max_collections = val()
                    .parse()
                    .unwrap_or_else(|_| fail("bad --max-collections"));
                if cli.max_collections == 0 {
                    fail("--max-collections must be at least 1 (the default collection)");
                }
            }
            "--no-fsync" => cli.no_fsync = true,
            "--replicate-addr" => cli.replicate_addr = Some(val()),
            "--replicate-from" => cli.replicate_from = Some(val()),
            "--log-format" => {
                cli.log_format = Some(match val().as_str() {
                    "text" => LogFormat::Text,
                    "json" => LogFormat::Json,
                    f => fail(&format!("unknown log format {f} (text | json)")),
                })
            }
            "--slow-query-ms" => {
                cli.slow_query_ms = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| fail("bad --slow-query-ms")),
                )
            }
            "--trace-sample" => {
                cli.trace_sample =
                    Some(val().parse().unwrap_or_else(|_| fail("bad --trace-sample")))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown option {other}")),
        }
    }
    cli
}

fn read_sets(path: &str, delimiter: char) -> Vec<Vec<String>> {
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .unwrap_or_else(|e| fail(&format!("reading stdin: {e}")));
        s
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")))
    };
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| l.split(delimiter).map(str::to_owned).collect())
        .collect()
}

/// `silkmoth update`: applies `--append` / `--remove` through the
/// incremental-update layer, compacts, and writes the surviving sets.
/// Every failure path is a named CLI error (missing files, bad ids) —
/// never a panic.
fn run_update(cli: &Cli, raw: &[Vec<String>], tokenization: Tokenization) {
    if cli.append.is_none() && cli.remove.is_empty() {
        fail("update needs --append and/or --remove");
    }
    let mut collection = Collection::build(raw, tokenization);
    let mut appended = 0;
    let removed = match collection.remove_sets(&cli.remove) {
        Ok(n) => n,
        Err(e) => fail(&format!("--remove: {e} (input has {} sets)", raw.len())),
    };
    if let Some(path) = &cli.append {
        let new_sets = read_sets(path, cli.delimiter);
        appended = collection.append_sets(&new_sets).len();
    }
    collection.compact();

    let delim = cli.delimiter.to_string();
    let mut out = String::new();
    for set in collection.sets() {
        let line: Vec<&str> = set.elements.iter().map(|e| e.text.as_ref()).collect();
        out.push_str(&line.join(&delim));
        out.push('\n');
    }
    match &cli.output {
        Some(path) => {
            std::fs::write(path, &out).unwrap_or_else(|e| fail(&format!("writing {path}: {e}")))
        }
        None => print!("{out}"),
    }
    if !cli.quiet {
        eprintln!(
            "# update: {} sets in, {appended} appended, {removed} removed, {} sets out",
            raw.len(),
            collection.len(),
        );
    }
}

/// Reads the (required) `--input` sets file, failing with a named
/// error when missing or empty.
fn read_required_input(cli: &Cli) -> Vec<Vec<String>> {
    let input = cli
        .input
        .clone()
        .unwrap_or_else(|| fail("--input is required"));
    let raw = read_sets(&input, cli.delimiter);
    if raw.is_empty() {
        fail("input contains no sets");
    }
    raw
}

/// `silkmoth serve`: ephemeral, or durable when `--data-dir` is given —
/// a populated data dir is recovered (snapshot + WAL replay; `--input`
/// is not needed), an empty one is initialized from `--input`.
fn run_serve(cli: &Cli, similarity: SimilarityFunction) {
    if cli.shards == 0 {
        fail("--shards must be at least 1");
    }
    let cfg = EngineConfig {
        metric: cli.metric,
        similarity,
        delta: cli.delta,
        alpha: cli.alpha,
        scheme: cli.scheme,
        filter: cli.filter,
        reduction: !cli.no_reduction,
    };
    let mut policy = CompactionPolicy::default();
    if let Some(r) = cli.compact_ratio {
        policy = policy.compact_at_dead_ratio(r);
    }
    if cli.snapshot_every.is_some() && cli.data_dir.is_none() {
        fail("--snapshot-every requires --data-dir");
    }
    if cli.wal_segment_bytes.is_some() && cli.data_dir.is_none() {
        fail("--wal-segment-bytes requires --data-dir");
    }
    if cli.no_fsync && cli.data_dir.is_none() {
        fail("--no-fsync requires --data-dir");
    }
    if cli.replicate_addr.is_some() && cli.data_dir.is_none() {
        fail("--replicate-addr requires --data-dir (followers resume from the WAL)");
    }
    if cli.replicate_from.is_some() && cli.data_dir.is_none() {
        fail("--replicate-from requires --data-dir");
    }
    if cli.replicate_from.is_some() && cli.input.is_some() {
        fail("--input conflicts with --replicate-from; the collection comes from the primary");
    }

    let spec = ShardSpec {
        cfg,
        shards: cli.shards,
    };
    let service = match &cli.data_dir {
        Some(dir) => {
            // Snapshots are what bound WAL growth, so durable serving
            // defaults to a checkpoint every 4096 records; segments
            // bound the size of any single WAL file in between (0
            // keeps one unbounded segment per generation).
            policy = policy.snapshot_at_wal_records(cli.snapshot_every.unwrap_or(4096));
            match cli.wal_segment_bytes.unwrap_or(64 * 1024 * 1024) {
                0 => {}
                bytes => policy = policy.segment_at_wal_bytes(bytes),
            }
            let mut store_cfg = StoreConfig {
                sync: !cli.no_fsync,
                policy,
            };
            if cli.replicate_from.is_some() {
                // Compactions reach a follower through the log, never
                // as its own decision — a local one would diverge it.
                store_cfg = follower_store_config(store_cfg);
            }
            match Store::open(dir, &spec, store_cfg) {
                Ok((store, report)) => {
                    eprintln!(
                        "# recovered {dir}: snapshot {} + {} WAL records replayed{}",
                        report.snapshot_seq,
                        report.wal_replayed,
                        match &report.wal_discarded {
                            Some(d) => format!(" ({} torn bytes discarded: {})", d.bytes, d.reason),
                            None => String::new(),
                        }
                    );
                    if cli.input.is_some() {
                        eprintln!("# note: --input ignored, {dir} already holds the collection");
                    }
                    SearchService::durable(store)
                }
                Err(e) if cli.replicate_from.is_some() && dir_needs_fresh_store(&e) => {
                    // A follower needs no --input: create an empty
                    // store; the first handshake (cursor 0) bootstraps
                    // a full snapshot from the primary.
                    let state = EngineState {
                        live: Vec::new(),
                        dead: Vec::new(),
                        next_id: 0,
                        tokenization: cfg.tokenization(),
                    };
                    let engine = <ShardedEngine as StoreEngine>::restore(&spec, state)
                        .unwrap_or_else(|e| fail(&e.to_string()));
                    let store = Store::create(dir, engine, store_cfg)
                        .unwrap_or_else(|e| fail(&e.to_string()));
                    eprintln!("# initialized empty follower store in {dir}");
                    SearchService::durable(store)
                }
                Err(StorageError::NotInitialized { .. }) => {
                    if cli.input.is_none() {
                        fail(&format!(
                            "{dir} holds no store yet; pass --input to initialize it"
                        ));
                    }
                    let raw = read_required_input(cli);
                    let engine = ShardedEngine::build(&raw, cfg, cli.shards)
                        .unwrap_or_else(|e| fail(&e.to_string()));
                    let store = Store::create(dir, engine, store_cfg)
                        .unwrap_or_else(|e| fail(&e.to_string()));
                    eprintln!("# initialized durable store in {dir}");
                    SearchService::durable(store)
                }
                Err(e) => fail(&e.to_string()),
            }
        }
        None => {
            let raw = read_required_input(cli);
            let engine = ShardedEngine::build(&raw, cfg, cli.shards)
                .unwrap_or_else(|e| fail(&e.to_string()));
            SearchService::new(engine).with_policy(policy)
        }
    };
    let service = match cli.max_inflight_updates {
        Some(n) => service.with_max_inflight_updates(n),
        None => service,
    };
    let service = match cli.search_timeout_ms {
        Some(ms) => service.with_search_timeout(Duration::from_millis(ms)),
        None => service,
    };
    let service = match cli.log_format {
        Some(format) => service.with_log_format(format),
        None => service,
    };
    let service = match cli.slow_query_ms {
        Some(ms) => service.with_slow_query_ms(ms),
        None => service,
    };
    let service = match cli.trace_sample {
        Some(n) => service.with_trace_sample(n),
        None => service,
    };
    let service = Arc::new(service);

    // Replication wiring: the follower tail loop and/or the primary's
    // log listener. Both at once chains replicas (A → B → C).
    let follower_runtime = cli.replicate_from.as_ref().map(|primary| {
        eprintln!(
            "# follower of {primary}: updates answer 409 until POST /promote; \
             an unreachable primary is retried (see GET /healthz)"
        );
        start_follower(
            Arc::clone(&service),
            primary.clone(),
            spec,
            follower_store_config(StoreConfig {
                sync: !cli.no_fsync,
                policy,
            }),
            FollowerConfig::default(),
        )
    });
    let log_server = cli.replicate_addr.as_ref().map(|addr| {
        let source = Arc::new(ServiceSource::new(Arc::clone(&service)));
        let log = serve_log(source, addr.as_str(), StreamerConfig::default())
            .unwrap_or_else(|e| fail(&format!("binding replication log {addr}: {e}")));
        service.set_follower_gauge(log.follower_gauge());
        // Sealed WAL segments a connected follower still needs are
        // retained past snapshot rotation until its cursor moves on.
        let cursors = log.cursor_tracker();
        service.set_wal_retention(silkmoth::storage::RetentionHook::new(move || {
            cursors.floor()
        }));
        eprintln!("# replication log listening on {}", log.local_addr());
        log
    });

    // The catalog front: the service built above becomes the `default`
    // collection (replication, when configured, covers it alone);
    // named collections get their own engines, stores, and quotas
    // under `<data-dir>/collections/`, recovered from the versioned
    // catalog manifest on restart.
    let catalog = CatalogService::open(
        Arc::clone(&service),
        CatalogConfig {
            data_dir: cli.data_dir.as_ref().map(PathBuf::from),
            engine_cfg: cfg,
            store_cfg: StoreConfig {
                sync: !cli.no_fsync,
                policy,
            },
            ephemeral_policy: policy,
            default_shards: cli.shards,
            max_collections: cli.max_collections,
            max_inflight_updates: cli.max_inflight_updates,
            search_timeout: cli.search_timeout_ms.map(Duration::from_millis),
        },
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    let collections = catalog.collection_names().len();

    let threads = match cli.threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    };
    let (sets, shards) = {
        let engine = service.engine();
        (engine.len(), engine.shard_count())
    };
    let durable = cli.data_dir.is_some();
    let bind = format!("{}:{}", cli.addr, cli.port);
    let server = serve_catalog(Arc::new(catalog), bind.as_str(), threads)
        .unwrap_or_else(|e| fail(&format!("binding {bind}: {e}")));
    eprintln!(
        "# silkmoth-server listening on http://{} — {} sets, {} shards, {} workers, \
         {} collection{}{}",
        server.addr(),
        sets,
        shards,
        threads,
        collections,
        if collections == 1 { "" } else { "s" },
        if durable { ", durable" } else { "" },
    );
    eprintln!(
        "# endpoints: POST /search, POST /search/batch, POST /discover, POST /sets, \
         DELETE /sets, POST /compact, POST /snapshot, POST /promote, GET /stats, \
         GET /healthz, GET /metrics; catalog: GET /collections, PUT|GET|DELETE \
         /collections/<name>, scoped /collections/<name>/<route>"
    );
    server.wait();
    if let Some(mut log) = log_server {
        log.shutdown();
    }
    if let Some(rt) = follower_runtime {
        rt.shared.stop();
        let _ = rt.handle.join();
    }
}

fn main() {
    let cli = parse_cli();
    let similarity = match cli.phi.as_str() {
        "jaccard" => SimilarityFunction::Jaccard,
        "dice" => SimilarityFunction::Dice,
        "cosine" => SimilarityFunction::Cosine,
        "eds" | "neds" => {
            let q = SimilarityFunction::max_q_for_alpha(cli.alpha).unwrap_or(2);
            if cli.phi == "eds" {
                SimilarityFunction::Eds { q }
            } else {
                SimilarityFunction::NEds { q }
            }
        }
        p => fail(&format!("unknown phi {p}")),
    };
    let tokenization = match similarity {
        SimilarityFunction::Eds { q } | SimilarityFunction::NEds { q } => Tokenization::QGram { q },
        _ => Tokenization::Whitespace,
    };

    if cli.command == "serve" {
        run_serve(&cli, similarity);
        return;
    }

    let raw = read_required_input(&cli);
    if cli.command == "update" {
        run_update(&cli, &raw, tokenization);
        return;
    }

    let collection = Collection::build(&raw, tokenization);

    if cli.command == "stats" {
        println!("{}", collection.stats());
        return;
    }

    let engine = match Engine::builder(collection)
        .metric(cli.metric)
        .phi(similarity)
        .delta(cli.delta)
        .alpha(cli.alpha)
        .scheme(cli.scheme)
        .filter(cli.filter)
        .reduction(!cli.no_reduction)
        .build()
    {
        Ok(e) => e,
        Err(e) => fail(&e.to_string()),
    };

    let t0 = std::time::Instant::now();
    match cli.command.as_str() {
        "discover" => {
            let out = engine.discover_self_parallel(cli.threads);
            for p in &out.pairs {
                println!("{}\t{}\t{:.6}", p.r, p.s, p.score);
            }
            if !cli.quiet {
                eprintln!(
                    "# {} pairs in {:.3}s over {} sets; candidates {} → check {} → nn {} → verified {}",
                    out.pairs.len(),
                    t0.elapsed().as_secs_f64(),
                    engine.collection().len(),
                    out.stats.candidates,
                    out.stats.after_check,
                    out.stats.after_nn,
                    out.stats.verified,
                );
            }
        }
        "search" => {
            let ref_path = cli
                .reference
                .clone()
                .unwrap_or_else(|| fail("search needs --reference"));
            let refs_raw = read_sets(&ref_path, cli.delimiter);
            // Every reference search is one QuerySpec — the same owned
            // query description the engine, the sharded engine, and the
            // HTTP routes execute — batched across the worker threads.
            let specs: Vec<QuerySpec> = refs_raw
                .into_iter()
                .map(|set| {
                    let mut spec = QuerySpec::new(set);
                    if let Some(k) = cli.top_k {
                        spec = spec.with_top_k(k);
                    }
                    if let Some(f) = cli.floor {
                        spec = spec.with_floor(f).unwrap_or_else(|e| fail(&e.to_string()));
                    }
                    if let Some(ms) = cli.timeout_ms {
                        spec = spec.with_deadline(Duration::from_millis(ms));
                    }
                    spec
                })
                .collect();
            let outputs = engine.execute_batch(&specs, cli.threads);
            let mut total = 0usize;
            let mut expired = 0usize;
            for (rid, out) in outputs.iter().enumerate() {
                for &(sid, score) in &out.hits {
                    println!("{rid}\t{sid}\t{score:.6}");
                    total += 1;
                }
                if out.timed_out {
                    expired += 1;
                    if !cli.quiet {
                        eprintln!("# reference {rid}: deadline exceeded, results truncated");
                    }
                }
            }
            if !cli.quiet {
                eprintln!(
                    "# {} results for {} references in {:.3}s{}",
                    total,
                    specs.len(),
                    t0.elapsed().as_secs_f64(),
                    if expired > 0 {
                        format!(" ({expired} hit the --timeout-ms budget)")
                    } else {
                        String::new()
                    }
                );
            }
        }
        c => fail(&format!("unknown command {c}")),
    }
}
