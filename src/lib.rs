//! # silkmoth
//!
//! A Rust implementation of **SilkMoth** (Deng, Kim, Madden, Stonebraker —
//! *SILKMOTH: An Efficient Method for Finding Related Sets with Maximum
//! Matching Constraints*, VLDB 2017): exact, index-accelerated discovery
//! and search of related sets under maximum-matching relatedness metrics.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`text`] — tokenizers (whitespace, q-grams, q-chunks) and element
//!   similarity functions (Jaccard, `Eds`, `NEds`, α-clamping);
//! * [`collection`] — set collections, the frequency-ordered token
//!   dictionary, and the inverted index;
//! * [`matching`] — maximum-weight bipartite matching (Hungarian) and the
//!   triangle-inequality reduction;
//! * [`core`] — signature schemes, the check and nearest-neighbor
//!   filters, verification, the [`Engine`], and the brute-force baseline;
//! * [`datagen`] — deterministic synthetic workloads mirroring the
//!   paper's evaluation datasets;
//! * [`server`] — the network service: [`ShardedEngine`] scatter-gather
//!   over hash-partitioned engine shards (output identical to one
//!   unsharded engine) behind a multi-threaded HTTP/1.1 front
//!   (`silkmoth serve`, or [`server::serve`] from code);
//! * [`storage`] — durable snapshots + write-ahead log with crash
//!   recovery and auto-compaction ([`Store`], `silkmoth serve
//!   --data-dir`): every acknowledged update survives `kill -9`, and
//!   recovery is provably byte-identical to the engine that served the
//!   updates.
//!
//! ## Example
//!
//! The engine owns its collection behind an `Arc` (pass a `Collection`
//! to move it in, or an `Arc<Collection>` to share it), has no lifetime
//! parameters, and is `Send + Sync` — it drops straight into server
//! state. Configuration goes through the fluent builder, and per-query
//! knobs (`top_k`, `floor`, streaming) through [`Engine::query`]:
//!
//! ```
//! use silkmoth::{Collection, Engine, RelatednessMetric, SimilarityFunction, Tokenization};
//!
//! let corpus = vec![
//!     vec!["77 Mass Ave Boston MA", "5th St 02115 Seattle WA", "77 5th St Chicago IL"],
//!     vec![
//!         "77 Massachusetts Avenue Boston MA",
//!         "Fifth Street Seattle MA 02115",
//!         "77 Fifth Street Chicago IL",
//!         "One Kendall Square Cambridge MA",
//!     ],
//! ];
//! let collection = Collection::build(&corpus, Tokenization::Whitespace);
//! let engine = Engine::builder(collection)
//!     .metric(RelatednessMetric::Containment)
//!     .phi(SimilarityFunction::Jaccard)
//!     .delta(0.35)
//!     .alpha(0.2)
//!     .build()
//!     .unwrap();
//!
//! // Is the Location column (set 0) approximately contained in Address (set 1)?
//! let r = engine.collection().set(0).clone();
//! let out = engine.query(&r).run().unwrap();
//! assert!(out.results.iter().any(|&(sid, _)| sid == 1));
//!
//! // Stream results as they verify, stopping at the first hit:
//! let first = engine.query(&r).iter().unwrap().next();
//! assert!(first.is_some());
//!
//! // Batched discovery over external references fans out across threads
//! // with output identical to the serial run:
//! let refs = vec![engine.collection().encode_set(&["77 Mass Ave Boston MA"])];
//! let pairs = engine.discover_parallel(&refs, 0).pairs;
//! assert_eq!(pairs, engine.discover(&refs).pairs);
//!
//! // The same search as an owned, serializable QuerySpec — the artifact
//! // the engine, the sharded engine, the HTTP routes, and the CLI all
//! // execute identically (with optional top-k, floor, and deadline):
//! use silkmoth::QuerySpec;
//! let spec = QuerySpec::new(vec!["77 Mass Ave Boston MA".to_string()]).with_top_k(1);
//! let top = engine.execute(&spec);
//! assert_eq!(top.hits.len(), 1);
//! assert!(!top.timed_out);
//! ```

pub use silkmoth_collection as collection;
pub use silkmoth_core as core;
pub use silkmoth_datagen as datagen;
pub use silkmoth_matching as matching;
pub use silkmoth_server as server;
pub use silkmoth_storage as storage;
pub use silkmoth_text as text;

pub use silkmoth_collection::{
    Collection, Element, InvertedIndex, SetIdx, SetRecord, Tokenization, UpdateError,
};
pub use silkmoth_core::{
    brute, CompactionPolicy, ConfigError, DiscoveryOutput, Engine, EngineBuilder, EngineConfig,
    FilterKind, PassStats, Query, QueryIter, QueryOutput, QuerySpec, RelatedPair,
    RelatednessMetric, SearchOutput, SignatureScheme, Update, UpdateOutcome,
};
pub use silkmoth_datagen::{ColumnsConfig, DblpConfig, SchemaConfig};
pub use silkmoth_matching::{max_weight_assignment, WeightMatrix};
pub use silkmoth_server::{
    ShardSpec, ShardedDiscoveryOutput, ShardedEngine, ShardedQueryOutput, ShardedSearchOutput,
};
pub use silkmoth_storage::{StorageError, Store, StoreConfig, StoreEngine};
pub use silkmoth_text::SimilarityFunction;
