#!/usr/bin/env bash
# Scrape `GET /metrics` twice on one or more live servers and validate
# both pages with the exposition linter (`metricslint`, built from
# crates/bench). The second scrape is linted against the first, so
# besides format problems (duplicate families, kind mismatches,
# non-cumulative histogram buckets) this catches counters or histogram
# rows moving BACKWARDS between scrapes — the regression the linter
# exists for.
#
# The soak scripts call this while their servers are still up, passing
# the primary's and (for the failover soak) the follower's HTTP port,
# so CI validates the exposition on both roles under real traffic.
#
# Usage: scripts/metrics_check.sh PORT [PORT...]
# Env:   METRICSLINT=path/to/metricslint (default: target/release/metricslint)

set -euo pipefail

[ "$#" -ge 1 ] || {
    echo "usage: $0 PORT [PORT...]" >&2
    exit 2
}
METRICSLINT="${METRICSLINT:-target/release/metricslint}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

for port in "$@"; do
    a="$WORK/$port.1.prom"
    b="$WORK/$port.2.prom"
    curl -sf "localhost:$port/metrics" >"$a" || {
        echo "FAIL: scraping localhost:$port/metrics" >&2
        exit 1
    }
    # A little traffic between the scrapes so the monotonicity lint has
    # movement to judge; /healthz itself bumps the request counters.
    curl -sf "localhost:$port/healthz" >/dev/null
    curl -sf "localhost:$port/stats" >/dev/null
    curl -sf "localhost:$port/metrics" >"$b" || {
        echo "FAIL: re-scraping localhost:$port/metrics" >&2
        exit 1
    }
    "$METRICSLINT" "$a" "$b" || {
        echo "FAIL: exposition lint on localhost:$port" >&2
        exit 1
    }
    echo "# metrics on port $port: two scrapes, lint clean"

    # Trace check: the soaks serve with --slow-query-ms 0, so this
    # adversarial query must land in the trace ring marked slow; the
    # traces page must be valid JSON with a root span on every trace.
    t="$WORK/$port.traces.json"
    curl -sf -X POST "localhost:$port/search" \
        -d '{"reference": ["adversarial trace probe"], "floor": 0.0}' >/dev/null || {
        echo "FAIL: adversarial /search on localhost:$port" >&2
        exit 1
    }
    curl -sf "localhost:$port/debug/traces" >"$t" || {
        echo "FAIL: fetching localhost:$port/debug/traces" >&2
        exit 1
    }
    "$METRICSLINT" --traces "$t" --require-route /search --require-slow || {
        echo "FAIL: trace lint on localhost:$port" >&2
        exit 1
    }
    echo "# traces on port $port: slow-query capture verified, page clean"
done
