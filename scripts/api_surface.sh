#!/usr/bin/env bash
# Dumps the workspace's public API surface to a checked-in snapshot
# (scripts/api_surface.txt) so that API changes are deliberate: CI runs
# `./scripts/api_surface.sh --check` and fails on any diff that was not
# committed alongside the code change.
#
#   ./scripts/api_surface.sh           # regenerate the snapshot in place
#   ./scripts/api_surface.sh --check   # diff against the snapshot; exit 1 on drift
#
# The dump is a grep-level approximation (no nightly rustdoc-JSON in this
# toolchain): for every non-test, non-vendored source file it lists the
# `pub` items — fns, types, traits, consts, statics, modules, re-exports,
# macros, and public struct fields — first line only for multi-line
# signatures, prefixed with the file path and sorted. That is enough to
# catch additions, removals, renames, and signature changes of anything
# exported from the workspace crates.

set -euo pipefail
cd "$(dirname "$0")/.."

SNAPSHOT=scripts/api_surface.txt

generate() {
    # src/ (the facade crate + CLI) and crates/*/src; vendor/ is
    # explicitly out of scope (stand-in crates, not our API).
    find src crates -name '*.rs' -path '*/src/*' -o -name '*.rs' -path 'src/*' \
        | LC_ALL=C sort \
        | while read -r f; do
            # `pub` / `pub(crate)` etc. — only plain `pub` is public API.
            grep -hE '^[[:space:]]*pub (fn|unsafe fn|struct|enum|trait|type|const|static|mod|use|macro_rules!|[A-Za-z_][A-Za-z0-9_]*:)' "$f" \
                | sed -e 's/^[[:space:]]*//' -e 's/[[:space:]]*$//' -e "s|^|$f: |" \
                || true
        done
}

case "${1:-}" in
--check)
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    generate >"$tmp"
    if ! diff -u "$SNAPSHOT" "$tmp"; then
        echo >&2
        echo "error: public API surface drifted from $SNAPSHOT." >&2
        echo "If the change is deliberate, run ./scripts/api_surface.sh and" >&2
        echo "commit the regenerated snapshot with your change." >&2
        exit 1
    fi
    echo "API surface matches $SNAPSHOT ($(wc -l <"$SNAPSHOT") public items)."
    ;;
"")
    generate >"$SNAPSHOT"
    echo "Wrote $SNAPSHOT ($(wc -l <"$SNAPSHOT") public items)."
    ;;
*)
    echo "usage: $0 [--check]" >&2
    exit 2
    ;;
esac
