#!/usr/bin/env bash
# Crash-recovery soak test for `silkmoth serve --data-dir`.
#
# Loops for a fixed number of rounds with a fixed seed:
#   1. start the durable server (first round initializes the store)
#      with a tiny --wal-segment-bytes so every round spans many
#      sealed segments and recovery exercises the parallel,
#      multi-segment replay path,
#   2. issue random acknowledged updates (appends / removes / compacts /
#      forced snapshots) over HTTP, recording each acked one, then a
#      burst of CONCURRENT writers whose appends contend for the
#      group-commit queue — gid order in the acks is commit order, so
#      the interleaving is stitched back into the replay log,
#   3. append to a second catalog collection (`aux`, created in round 1
#      via PUT /collections/aux) through its scoped route, so every
#      crash covers two stores plus the catalog manifest,
#   4. `kill -9` the server (no graceful shutdown — the WAL tail must
#      carry everything),
#   5. restart from --data-dir alone and check /stats AND
#      /collections/aux/stats match the expected live counts.
#
# After the last round a REFERENCE server is built fresh from the seed
# input and fed the exact same acked update sequence in-memory (both
# collections); the recovered durable server and the reference must
# return identical search results (ids and scores) for a panel of
# probe references against the default AND the aux collection. Any
# divergence fails the script.
#
# Usage: scripts/crash_recovery.sh [rounds] [updates-per-round]
# Env:   SILKMOTH=path/to/silkmoth (default: target/release/silkmoth)

set -euo pipefail

ROUNDS="${1:-5}"
UPDATES="${2:-12}"
WRITERS=4           # concurrent writers per round
PER_WRITER=5        # appends each concurrent writer issues
SEGMENT_BYTES=512   # tiny WAL segments: every round seals several
SEED=20170711 # fixed: the soak is reproducible run-to-run
SILKMOTH="${SILKMOTH:-target/release/silkmoth}"
PORT=7741
REF_PORT=7742
WORK="$(mktemp -d)"
STORE="$WORK/store"
INPUT="$WORK/seed.sets"
OPS="$WORK/ops.jsonl"         # every acknowledged default-collection update
AUX_OPS="$WORK/aux_ops.jsonl" # every acknowledged aux-collection append
SERVER_PID=""
REF_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    [ -n "$REF_PID" ] && kill -9 "$REF_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

die() {
    echo "FAIL: $*" >&2
    exit 1
}

# Deterministic RNG: bash's $RANDOM re-seeded from a fixed seed.
RANDOM=$SEED

wait_healthy() {
    local port="$1"
    for _ in $(seq 1 100); do
        if curl -sf "localhost:$port/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    die "server on port $port never became healthy"
}

# --- seed input: 20 sets of 2 elements each --------------------------------
: >"$INPUT"
for i in $(seq 0 19); do
    echo "w$((i % 7)) w$(((i + 3) % 5)) shared$((i % 4))|w$(((i * 3) % 11)) shared$(((i + 1) % 4))" >>"$INPUT"
done
: >"$OPS"
: >"$AUX_OPS"
AUX_COUNT=0 # expected live sets in the aux collection

# Track the expected live set count; gids are assigned monotonically so
# the shell can mirror the numbering: base 0..19, appends continue it.
NEXT_GID=20
declare -A LIVE
for i in $(seq 0 19); do LIVE[$i]=1; done

live_count() { echo "${#LIVE[@]}"; }

random_live_gid() {
    local keys=("${!LIVE[@]}")
    echo "${keys[$((RANDOM % ${#keys[@]}))]}"
}

issue_updates() {
    local port="$1" n="$2"
    for _ in $(seq 1 "$n"); do
        local roll=$((RANDOM % 100))
        if [ "$roll" -lt 45 ]; then
            local body="{\"sets\": [[\"w$((RANDOM % 9)) shared$((RANDOM % 4))\", \"w$((RANDOM % 9)) w$((RANDOM % 6))\"]]}"
            curl -sf -X POST "localhost:$port/sets" -d "$body" >/dev/null ||
                die "append not acknowledged"
            echo "POST /sets $body" >>"$OPS"
            LIVE[$NEXT_GID]=1
            NEXT_GID=$((NEXT_GID + 1))
        elif [ "$roll" -lt 75 ] && [ "$(live_count)" -gt 2 ]; then
            local gid
            gid=$(random_live_gid)
            curl -sf -X DELETE "localhost:$port/sets" -d "{\"ids\": [$gid]}" >/dev/null ||
                die "remove of live gid $gid not acknowledged"
            echo "DELETE /sets {\"ids\": [$gid]}" >>"$OPS"
            unset "LIVE[$gid]"
        elif [ "$roll" -lt 90 ]; then
            curl -sf -X POST "localhost:$port/compact" >/dev/null ||
                die "compact not acknowledged"
            echo "POST /compact" >>"$OPS"
        else
            # Durable-only: force a checkpoint (not replayed on the
            # reference, where it would be a 409 and changes nothing).
            curl -sf -X POST "localhost:$port/snapshot" >/dev/null ||
                die "snapshot not acknowledged"
        fi
    done
}

# A burst of WRITERS concurrent processes, each issuing PER_WRITER
# single-set appends. Every ack carries the assigned gid; gid order IS
# commit order (the group-commit leader assigns gids as records hit
# the WAL), so sorting the acks by gid reconstructs the exact update
# sequence for the reference replay.
concurrent_appends() {
    local port="$1" w pid pids=()
    rm -f "$WORK"/concurrent.*
    for w in $(seq 1 "$WRITERS"); do
        (
            for i in $(seq 1 "$PER_WRITER"); do
                body="{\"sets\": [[\"cw$w u$i shared$(((w + i) % 4))\"]]}"
                resp=$(curl -sf -X POST "localhost:$port/sets" -d "$body") || exit 1
                gid=$(echo "$resp" | jq '.appended[0]')
                echo "$gid POST /sets $body" >>"$WORK/concurrent.$w"
            done
        ) &
        pids+=($!)
    done
    for pid in "${pids[@]}"; do
        wait "$pid" || die "a concurrent writer's append was not acknowledged"
    done
    sort -n "$WORK"/concurrent.* | sed 's/^[0-9]* //' >>"$OPS"
    local n
    n=$(cat "$WORK"/concurrent.* | wc -l)
    [ "$n" -eq $((WRITERS * PER_WRITER)) ] || die "expected $((WRITERS * PER_WRITER)) concurrent acks, saw $n"
    rm -f "$WORK"/concurrent.*
    for _ in $(seq 1 "$n"); do
        LIVE[$NEXT_GID]=1
        NEXT_GID=$((NEXT_GID + 1))
    done
}

check_sets() {
    local port="$1" want got
    want="$(live_count)"
    got=$(curl -sf "localhost:$port/stats" | jq .sets)
    [ "$got" = "$want" ] || die "port $port reports $got sets, expected $want"
}

# Appends to the aux collection through its scoped route — the same
# ack-then-record discipline as the default collection's updates.
aux_appends() {
    local port="$1" n="$2" i body
    for i in $(seq 1 "$n"); do
        body="{\"sets\": [[\"aux r$round u$i shared$((RANDOM % 4))\", \"aux w$((RANDOM % 9))\"]]}"
        curl -sf -X POST "localhost:$port/collections/aux/sets" -d "$body" >/dev/null ||
            die "aux append not acknowledged"
        echo "$body" >>"$AUX_OPS"
        AUX_COUNT=$((AUX_COUNT + 1))
    done
}

check_aux() {
    local port="$1" got
    got=$(curl -sf "localhost:$port/collections/aux/stats" | jq .sets)
    [ "$got" = "$AUX_COUNT" ] || die "port $port reports $got aux sets, expected $AUX_COUNT"
}

# --- the soak ---------------------------------------------------------------
for round in $(seq 1 "$ROUNDS"); do
    if [ "$round" -eq 1 ]; then
        "$SILKMOTH" serve --input "$INPUT" --data-dir "$STORE" --port "$PORT" \
            --shards 3 --threads 2 --delta 0.4 --wal-segment-bytes "$SEGMENT_BYTES" &
    else
        "$SILKMOTH" serve --data-dir "$STORE" --port "$PORT" \
            --shards 3 --threads 2 --delta 0.4 --wal-segment-bytes "$SEGMENT_BYTES" &
    fi
    SERVER_PID=$!
    wait_healthy "$PORT"
    check_sets "$PORT" # recovery restored the previous round's state
    if [ "$round" -eq 1 ]; then
        curl -sf -X PUT "localhost:$PORT/collections/aux" -d '{"shards": 2}' >/dev/null ||
            die "creating the aux collection failed"
    else
        check_aux "$PORT" # the catalog manifest + aux store recovered too
    fi
    issue_updates "$PORT" "$UPDATES"
    concurrent_appends "$PORT"
    aux_appends "$PORT" 3
    check_sets "$PORT"
    check_aux "$PORT"
    kill -9 "$SERVER_PID"
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
    echo "# round $round ok: killed with $(live_count) live + $AUX_COUNT aux sets on disk"
done

# --- final recovery + differential check vs a reference rebuild -------------
# --slow-query-ms 0 arms slow-query trace capture so metrics_check.sh
# can verify /debug/traces caught its adversarial query.
"$SILKMOTH" serve --data-dir "$STORE" --port "$PORT" --shards 3 --threads 2 --delta 0.4 \
    --wal-segment-bytes "$SEGMENT_BYTES" --slow-query-ms 0 &
SERVER_PID=$!
"$SILKMOTH" serve --input "$INPUT" --port "$REF_PORT" --shards 1 --threads 2 --delta 0.4 &
REF_PID=$!
wait_healthy "$PORT"
wait_healthy "$REF_PORT"
check_sets "$PORT"
check_aux "$PORT"

# Replay every acked update against the reference (same order, same
# bodies → same gids, since ids are assigned monotonically).
while IFS=' ' read -r method path body; do
    if [ -n "$body" ]; then
        curl -sf -X "$method" "localhost:$REF_PORT$path" -d "$body" >/dev/null ||
            die "reference replay rejected: $method $path $body"
    else
        curl -sf -X "$method" "localhost:$REF_PORT$path" >/dev/null ||
            die "reference replay rejected: $method $path"
    fi
done <"$OPS"
check_sets "$REF_PORT"

# Rebuild the aux collection on the (ephemeral) reference catalog and
# replay its acked appends in order — gids are per-collection, so the
# same body sequence yields the same ids.
curl -sf -X PUT "localhost:$REF_PORT/collections/aux" -d '{"shards": 2}' >/dev/null ||
    die "creating aux on the reference failed"
while IFS= read -r body; do
    curl -sf -X POST "localhost:$REF_PORT/collections/aux/sets" -d "$body" >/dev/null ||
        die "aux reference replay rejected: $body"
done <"$AUX_OPS"
check_aux "$REF_PORT"

# Probe panel: results (ids + scores) must match exactly. Pass stats
# may legitimately differ (pruning depends on index internals), so only
# the "results" field is compared.
for probe in \
    '{"reference": ["w0 w3 shared0", "w3 shared1"], "floor": 0.1}' \
    '{"reference": ["w1 w4 shared1"], "k": 5, "floor": 0.0}' \
    '{"reference": ["w6 shared3", "w9 w2"], "floor": 0.3}' \
    '{"reference": ["nothing matches this probe"], "floor": 0.0}'; do
    got=$(curl -sf -X POST "localhost:$PORT/search" -d "$probe" | jq -S .results)
    want=$(curl -sf -X POST "localhost:$REF_PORT/search" -d "$probe" | jq -S .results)
    if [ "$got" != "$want" ]; then
        echo "probe: $probe" >&2
        echo "recovered: $got" >&2
        echo "reference: $want" >&2
        die "recovered server diverges from the reference rebuild"
    fi
done

# Same exactness bar for the recovered aux collection, through its
# scoped route. A probe that only matches default-collection elements
# must come back empty here — catalog recovery must not bleed one
# tenant's sets into another's index.
for probe in \
    '{"reference": ["aux r1 u1 shared0", "aux w3"], "floor": 0.0}' \
    '{"reference": ["aux r2 u2 shared2"], "k": 4, "floor": 0.0}' \
    '{"reference": ["w0 w3 shared0"], "floor": 0.4}'; do
    got=$(curl -sf -X POST "localhost:$PORT/collections/aux/search" -d "$probe" | jq -S .results)
    want=$(curl -sf -X POST "localhost:$REF_PORT/collections/aux/search" -d "$probe" | jq -S .results)
    if [ "$got" != "$want" ]; then
        echo "aux probe: $probe" >&2
        echo "recovered: $got" >&2
        echo "reference: $want" >&2
        die "recovered aux collection diverges from the reference rebuild"
    fi
done

# With the recovered server still up and warm from the probe panel,
# validate its /metrics exposition: two scrapes, linted for format and
# counter monotonicity.
"$(dirname "$0")/metrics_check.sh" "$PORT"

echo "PASS: $ROUNDS rounds × ($UPDATES random + $((WRITERS * PER_WRITER)) concurrent + 3 aux) updates, ${SEGMENT_BYTES}-byte WAL segments, kill -9 each round, both collections identical on the probe panels"
