#!/usr/bin/env bash
# Replica failover soak for `silkmoth serve --replicate-addr/--replicate-from`.
#
# With a fixed seed:
#   1. start a durable PRIMARY that ships its WAL on a replication
#      listener, and a FOLLOWER that starts from an *empty* data dir
#      (it must bootstrap a snapshot over the wire, then tail),
#   2. issue random acknowledged updates (appends / removes / compacts /
#      forced snapshot rotations) against the primary over HTTP,
#      recording each acked one,
#   3. wait for the follower to catch up (matching `update_seq`), then
#      `kill -9` the primary — no goodbye,
#   4. `POST /promote` the follower: it must flip to the primary role,
#      bump the failover epoch, and start accepting writes,
#   5. issue more acked updates against the promoted follower,
#   6. build a REFERENCE server fresh from the seed input, replay the
#      exact acked update sequence, and diff a panel of search results
#      (ids + scores) against the promoted follower.
# Any divergence — or a write the promoted follower lost — fails.
#
# Usage: scripts/replica_failover.sh [updates] [post-failover-updates]
# Env:   SILKMOTH=path/to/silkmoth (default: target/release/silkmoth)

set -euo pipefail

UPDATES="${1:-25}"
POST_UPDATES="${2:-10}"
SEED=20170711 # fixed: the soak is reproducible run-to-run
SILKMOTH="${SILKMOTH:-target/release/silkmoth}"
PORT=7751     # primary HTTP
F_PORT=7752   # follower HTTP
REF_PORT=7753 # reference HTTP
REPL=7851     # primary replication log listener
WORK="$(mktemp -d)"
P_STORE="$WORK/primary"
F_STORE="$WORK/follower"
INPUT="$WORK/seed.sets"
OPS="$WORK/ops.jsonl" # every acknowledged update, in order
PRIMARY_PID=""
FOLLOWER_PID=""
REF_PID=""

cleanup() {
    for pid in "$PRIMARY_PID" "$FOLLOWER_PID" "$REF_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

die() {
    echo "FAIL: $*" >&2
    exit 1
}

# Deterministic RNG: bash's $RANDOM re-seeded from a fixed seed.
RANDOM=$SEED

wait_healthy() {
    local port="$1"
    for _ in $(seq 1 100); do
        if curl -sf "localhost:$port/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    die "server on port $port never became healthy"
}

# --- seed input: 20 sets of 2 elements each --------------------------------
: >"$INPUT"
for i in $(seq 0 19); do
    echo "w$((i % 7)) w$(((i + 3) % 5)) shared$((i % 4))|w$(((i * 3) % 11)) shared$(((i + 1) % 4))" >>"$INPUT"
done
: >"$OPS"

# Track the expected live set count; gids are assigned monotonically so
# the shell can mirror the numbering: base 0..19, appends continue it.
NEXT_GID=20
declare -A LIVE
for i in $(seq 0 19); do LIVE[$i]=1; done

live_count() { echo "${#LIVE[@]}"; }

random_live_gid() {
    local keys=("${!LIVE[@]}")
    echo "${keys[$((RANDOM % ${#keys[@]}))]}"
}

issue_updates() {
    local port="$1" n="$2"
    for _ in $(seq 1 "$n"); do
        local roll=$((RANDOM % 100))
        if [ "$roll" -lt 45 ]; then
            local body="{\"sets\": [[\"w$((RANDOM % 9)) shared$((RANDOM % 4))\", \"w$((RANDOM % 9)) w$((RANDOM % 6))\"]]}"
            curl -sf -X POST "localhost:$port/sets" -d "$body" >/dev/null ||
                die "append not acknowledged"
            echo "POST /sets $body" >>"$OPS"
            LIVE[$NEXT_GID]=1
            NEXT_GID=$((NEXT_GID + 1))
        elif [ "$roll" -lt 75 ] && [ "$(live_count)" -gt 2 ]; then
            local gid
            gid=$(random_live_gid)
            curl -sf -X DELETE "localhost:$port/sets" -d "{\"ids\": [$gid]}" >/dev/null ||
                die "remove of live gid $gid not acknowledged"
            echo "DELETE /sets {\"ids\": [$gid]}" >>"$OPS"
            unset "LIVE[$gid]"
        elif [ "$roll" -lt 90 ]; then
            curl -sf -X POST "localhost:$port/compact" >/dev/null ||
                die "compact not acknowledged"
            echo "POST /compact" >>"$OPS"
        else
            # Durable-only: force a checkpoint + WAL rotation. On the
            # primary this also forces any follower that lags past the
            # rotation to re-bootstrap. Not replayed on the reference
            # (a 409 there, and state-neutral anyway).
            curl -sf -X POST "localhost:$port/snapshot" >/dev/null ||
                die "snapshot not acknowledged"
        fi
    done
}

check_sets() {
    local port="$1" want got
    want="$(live_count)"
    got=$(curl -sf "localhost:$port/stats" | jq .sets)
    [ "$got" = "$want" ] || die "port $port reports $got sets, expected $want"
}

update_seq() {
    curl -sf "localhost:$1/stats" | jq .storage.update_seq
}

wait_caught_up() {
    local want
    want=$(update_seq "$PORT")
    for _ in $(seq 1 200); do
        if [ "$(update_seq "$F_PORT")" = "$want" ]; then
            return 0
        fi
        sleep 0.1
    done
    die "follower stuck at $(update_seq "$F_PORT") of $want"
}

# --- primary + follower ----------------------------------------------------
# --slow-query-ms 0 arms slow-query trace capture on both roles so
# metrics_check.sh can verify /debug/traces caught its adversarial query.
"$SILKMOTH" serve --input "$INPUT" --data-dir "$P_STORE" --port "$PORT" \
    --shards 3 --threads 2 --delta 0.4 --replicate-addr "127.0.0.1:$REPL" \
    --slow-query-ms 0 &
PRIMARY_PID=$!
wait_healthy "$PORT"
# The follower's data dir does not exist: everything it serves must
# arrive through the replication stream.
"$SILKMOTH" serve --data-dir "$F_STORE" --port "$F_PORT" \
    --shards 3 --threads 2 --delta 0.4 --replicate-from "127.0.0.1:$REPL" \
    --slow-query-ms 0 &
FOLLOWER_PID=$!
wait_healthy "$F_PORT"

role=$(curl -sf "localhost:$F_PORT/healthz" | jq -r .role)
[ "$role" = "follower" ] || die "follower reports role '$role'"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "localhost:$F_PORT/sets" \
    -d '{"sets": [["too early"]]}')
[ "$code" = "409" ] || die "follower accepted a write pre-promotion (HTTP $code)"

issue_updates "$PORT" "$UPDATES"
check_sets "$PORT"
wait_caught_up
check_sets "$F_PORT"
echo "# follower caught up at update_seq $(update_seq "$F_PORT") with $(live_count) live sets"

# Both roles are live and mid-replication: validate the /metrics
# exposition on the primary AND the follower (two scrapes each, linted
# for format and counter monotonicity).
"$(dirname "$0")/metrics_check.sh" "$PORT" "$F_PORT"

# --- kill -9 the primary, promote the follower -----------------------------
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

promoted=$(curl -sf -X POST "localhost:$F_PORT/promote")
[ "$(echo "$promoted" | jq -r .role)" = "primary" ] || die "promote answered: $promoted"
[ "$(echo "$promoted" | jq .epoch)" = "1" ] || die "promote did not bump the epoch: $promoted"
role=$(curl -sf "localhost:$F_PORT/healthz" | jq -r .role)
[ "$role" = "primary" ] || die "promoted follower reports role '$role'"

issue_updates "$F_PORT" "$POST_UPDATES"
check_sets "$F_PORT"
echo "# promoted follower took $POST_UPDATES post-failover updates"

# --- differential check vs a reference rebuild -----------------------------
"$SILKMOTH" serve --input "$INPUT" --port "$REF_PORT" --shards 1 --threads 2 --delta 0.4 &
REF_PID=$!
wait_healthy "$REF_PORT"

# Replay every acked update against the reference (same order, same
# bodies → same gids, since ids are assigned monotonically).
while IFS=' ' read -r method path body; do
    if [ -n "$body" ]; then
        curl -sf -X "$method" "localhost:$REF_PORT$path" -d "$body" >/dev/null ||
            die "reference replay rejected: $method $path $body"
    else
        curl -sf -X "$method" "localhost:$REF_PORT$path" >/dev/null ||
            die "reference replay rejected: $method $path"
    fi
done <"$OPS"
check_sets "$REF_PORT"

# Probe panel: results (ids + scores) must match exactly. Pass stats
# may legitimately differ (pruning depends on index internals), so only
# the "results" field is compared.
for probe in \
    '{"reference": ["w0 w3 shared0", "w3 shared1"], "floor": 0.1}' \
    '{"reference": ["w1 w4 shared1"], "k": 5, "floor": 0.0}' \
    '{"reference": ["w6 shared3", "w9 w2"], "floor": 0.3}' \
    '{"reference": ["nothing matches this probe"], "floor": 0.0}'; do
    got=$(curl -sf -X POST "localhost:$F_PORT/search" -d "$probe" | jq -S .results)
    want=$(curl -sf -X POST "localhost:$REF_PORT/search" -d "$probe" | jq -S .results)
    if [ "$got" != "$want" ]; then
        echo "probe: $probe" >&2
        echo "promoted: $got" >&2
        echo "reference: $want" >&2
        die "promoted follower diverges from the reference rebuild"
    fi
done

echo "PASS: bootstrap from empty dir, $UPDATES replicated updates, kill -9 + promote, $POST_UPDATES post-failover updates, results identical to the reference rebuild"
