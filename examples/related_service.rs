//! End-to-end service demo: build a sharded engine, serve it over HTTP
//! on an ephemeral port, query it through a real TCP socket, and shut
//! down gracefully.
//!
//! ```text
//! cargo run --example related_service
//! ```

use silkmoth::server::{serve, Json, ShardedEngine};
use silkmoth::{EngineConfig, RelatednessMetric, SimilarityFunction};
use std::io::{Read, Write};
use std::net::TcpStream;

fn main() {
    // A tiny data lake: address columns from two tables plus noise.
    let raw = vec![
        vec![
            "77 Mass Ave Boston MA",
            "5th St 02115 Seattle WA",
            "77 5th St Chicago IL",
        ],
        vec![
            "77 Massachusetts Avenue Boston MA",
            "Fifth Street Seattle MA 02115",
            "77 Fifth Street Chicago IL",
            "One Kendall Square Cambridge MA",
        ],
        vec!["lorem ipsum", "dolor sit amet"],
    ];
    let cfg = EngineConfig::full(
        RelatednessMetric::Containment,
        SimilarityFunction::Jaccard,
        0.3,
        0.0,
    );
    let engine = ShardedEngine::build(&raw, cfg, 2).expect("valid config");

    // Bind port 0: the OS picks a free port, `server.addr()` reports it.
    let server = serve(engine, "127.0.0.1:0", 2).expect("bind");
    let addr = server.addr();
    println!("serving on http://{addr}");

    let body = r#"{"reference": ["77 Mass Ave Boston MA", "5th St 02115 Seattle WA"], "k": 2, "floor": 0.2}"#;
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /search HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let json = response.split("\r\n\r\n").nth(1).expect("body");
    let doc = Json::parse(json).expect("valid JSON");
    println!("response: {doc}");
    for result in doc.get("results").and_then(Json::as_array).unwrap_or(&[]) {
        println!(
            "  related set {} with score {:.3}",
            result.get("set").and_then(Json::as_usize).unwrap_or(0),
            result.get("score").and_then(Json::as_f64).unwrap_or(0.0),
        );
    }

    server.shutdown();
    println!("server drained and stopped");
}
