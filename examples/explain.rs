//! Why was this pair (not) matched? — the explain API on the paper's own
//! running example (Table 2, Examples 8–9).
//!
//! Run with: `cargo run --release --example explain`

use silkmoth::core::explain_pair;
use silkmoth::{
    EngineConfig, FilterKind, InvertedIndex, RelatednessMetric, SignatureScheme, SimilarityFunction,
};

fn main() {
    // Table 2: reference R (the Location column) and S = {S1..S4}.
    let (collection, r) = silkmoth::collection::paper_example::table2();
    let index = InvertedIndex::build(&collection);
    let cfg = EngineConfig {
        metric: RelatednessMetric::Containment,
        similarity: SimilarityFunction::Jaccard,
        delta: 0.7,
        alpha: 0.0,
        scheme: SignatureScheme::Weighted,
        filter: FilterKind::CheckAndNearestNeighbor,
        reduction: false,
    };

    for sid in 0..collection.len() as u32 {
        let ex = explain_pair(&r, collection.set(sid), &cfg, &index);
        println!(
            "───────────────────────────── S{} ─────────────────────────────",
            sid + 1
        );
        print!("{ex}");
        let verdict = if !ex.is_candidate {
            "pruned at candidate selection (no shared signature token)"
        } else if !ex.passes_check_filter {
            "pruned by the check filter (Example 8)"
        } else if !ex.passes_nn_filter {
            "pruned by the nearest-neighbor filter (Example 9)"
        } else if ex.related {
            "verified related (Example 2)"
        } else {
            "verified, below δ"
        };
        println!("→ {verdict}");
        println!();
    }
}
