//! Approximate string matching (§8.1, application 1).
//!
//! Each publication title is a set, each word an element, and tokens are
//! q-grams. RELATED SET DISCOVERY under SET-SIMILARITY with edit
//! similarity finds near-duplicate titles despite typos — the FastJoin
//! problem, solved exactly and faster.
//!
//! Run with: `cargo run --release --example string_matching`

use silkmoth::{Collection, Engine, RelatednessMetric, SimilarityFunction, Tokenization};

fn main() {
    let alpha = 0.8;
    // Footnote 11: the largest valid q for α = 0.8 is 3.
    let q = silkmoth::SimilarityFunction::max_q_for_alpha(alpha).expect("feasible q");
    let delta = 0.8;

    // A synthetic DBLP-like corpus with planted near-duplicate clusters.
    let corpus = silkmoth::datagen::dblp_titles(&silkmoth::DblpConfig {
        num_sets: 1500,
        seed: 7,
        ..Default::default()
    });
    let collection = Collection::build(&corpus, Tokenization::QGram { q });
    println!("corpus: {}", collection.stats());

    let engine = Engine::builder(collection)
        .metric(RelatednessMetric::Similarity)
        .phi(SimilarityFunction::Eds { q })
        .delta(delta)
        .alpha(alpha)
        .build()
        .expect("valid configuration");
    let collection = engine.collection();

    let t0 = std::time::Instant::now();
    let out = engine.discover_self_parallel(0);
    let elapsed = t0.elapsed();

    println!(
        "discovery: {} related title pairs in {:.2?} (δ = {delta}, α = {alpha}, q = {q})",
        out.pairs.len(),
        elapsed
    );
    println!(
        "stats: {} candidates → {} after check → {} after NN → {} verified; {} φ evals",
        out.stats.candidates,
        out.stats.after_check,
        out.stats.after_nn,
        out.stats.verified,
        out.stats.sim_evals
    );
    println!();
    println!("sample matches:");
    for p in out.pairs.iter().take(5) {
        let title = |sid: u32| {
            collection
                .set(sid)
                .elements
                .iter()
                .map(|e| e.text.as_ref())
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("  {:.3}  \"{}\"", p.score, title(p.r));
        println!("         \"{}\"", title(p.s));
    }
    assert!(!out.pairs.is_empty(), "planted clusters must be found");
}
