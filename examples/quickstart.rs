//! Quickstart: the paper's Table 1 scenario.
//!
//! Two address columns from different databases refer to the same
//! entities, but no element matches exactly. Exact-match metrics see
//! nothing; the maximum-matching metric pairs each address with its best
//! counterpart and scores the alignment.
//!
//! Run with: `cargo run --release --example quickstart`

use silkmoth::{Collection, Engine, RelatednessMetric, SimilarityFunction, Tokenization};

fn main() {
    // Table 1: two related datasets.
    let location = vec![
        "77 Mass Ave Boston MA",
        "5th St 02115 Seattle WA",
        "77 5th St Chicago IL",
    ];
    let address = vec![
        "77 Massachusetts Avenue Boston MA",
        "Fifth Street Seattle MA 02115",
        "77 Fifth Street Chicago IL",
        "One Kendall Square Cambridge MA",
    ];
    let unrelated = vec!["apples oranges pears", "red green blue"];

    // The searchable collection: Address plus a decoy column. The engine
    // takes ownership (an Arc<Collection> would share it instead).
    let corpus = vec![address.clone(), unrelated];
    let collection = Collection::build(&corpus, Tokenization::Whitespace);

    // SET-CONTAINMENT with Jaccard, α = 0.2 (Example 1), δ = 0.3.
    let engine = Engine::builder(collection)
        .metric(RelatednessMetric::Containment)
        .phi(SimilarityFunction::Jaccard)
        .delta(0.3)
        .alpha(0.2)
        .build()
        .expect("valid configuration");
    let collection = engine.collection();

    // Search: which columns approximately contain Location?
    let reference = collection.encode_set(&location);
    let out = engine.query(&reference).run().expect("no query overrides");

    println!("reference column (Location):");
    for e in &location {
        println!("    {e}");
    }
    println!();
    println!(
        "related columns under contain(R,S) ≥ {} with φ = Jaccard, α = {}:",
        engine.config().delta,
        engine.config().alpha
    );
    for &(sid, score) in &out.results {
        println!("  set {sid} — containment score {score:.3}");
        for e in collection.set(sid).elements.iter() {
            println!("    {}", e.text);
        }
    }
    println!();
    println!(
        "pass stats: {} candidates → {} after check filter → {} after NN filter → {} verified",
        out.stats.candidates, out.stats.after_check, out.stats.after_nn, out.stats.verified
    );
    assert_eq!(out.results.len(), 1, "only the Address column is related");
}
