//! Schema matching (§8.1, application 2).
//!
//! Each web-table schema is a set, each attribute an element (rendered as
//! its bag of values), and each value word a token. RELATED SET DISCOVERY
//! under SET-SIMILARITY with Jaccard finds schemas describing the same
//! kind of table even when their values only partially overlap.
//!
//! Run with: `cargo run --release --example schema_matching`

use silkmoth::{Collection, Engine, RelatednessMetric, SimilarityFunction, Tokenization};

fn main() {
    let delta = 0.7;
    let corpus = silkmoth::datagen::webtable_schemas(&silkmoth::SchemaConfig {
        num_sets: 3000,
        seed: 11,
        ..Default::default()
    });
    let collection = Collection::build(&corpus, Tokenization::Whitespace);
    println!("corpus: {}", collection.stats());

    let engine = Engine::builder(collection)
        .metric(RelatednessMetric::Similarity)
        .phi(SimilarityFunction::Jaccard)
        .delta(delta)
        .alpha(0.0)
        .build()
        .expect("valid configuration");
    let collection = engine.collection();

    let t0 = std::time::Instant::now();
    let out = engine.discover_self_parallel(0);
    let elapsed = t0.elapsed();

    println!(
        "discovery: {} related schema pairs in {:.2?} (δ = {delta})",
        out.pairs.len(),
        elapsed
    );
    println!(
        "pruning: {} candidates → {} after check → {} after NN → {} verified",
        out.stats.candidates, out.stats.after_check, out.stats.after_nn, out.stats.verified
    );
    // Compare against the quadratic baseline's workload: m² pairs.
    let m = collection.len() as u64;
    println!(
        "brute force would verify {} pairs; SilkMoth verified {} ({:.4}%)",
        m * (m - 1) / 2,
        out.stats.verified,
        out.stats.verified as f64 / (m * (m - 1) / 2) as f64 * 100.0
    );
    println!();
    for p in out.pairs.iter().take(3) {
        println!("match ({:.3}):", p.score);
        for sid in [p.r, p.s] {
            let attrs: Vec<&str> = collection
                .set(sid)
                .elements
                .iter()
                .map(|e| e.text.as_ref())
                .collect();
            println!("  schema {sid}: {} attributes", attrs.len());
            for a in attrs.iter().take(2) {
                println!("    [{a}]");
            }
        }
    }
    assert!(!out.pairs.is_empty());
}
