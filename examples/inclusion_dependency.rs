//! Approximate inclusion dependency discovery (§8.1, application 3).
//!
//! Each column is a set, each cell value an element, each word a token.
//! RELATED SET SEARCH under SET-CONTAINMENT answers: "which columns in
//! this data lake approximately contain my column?" — i.e. which columns
//! are joinable with it despite dirty values.
//!
//! Run with: `cargo run --release --example inclusion_dependency`

use silkmoth::{Collection, Engine, RelatednessMetric, SimilarityFunction, Tokenization};

fn main() {
    let corpus = silkmoth::datagen::webtable_columns(&silkmoth::ColumnsConfig {
        num_sets: 5000,
        seed: 13,
        ..Default::default()
    });
    let collection = Collection::build(&corpus, Tokenization::Whitespace);
    println!("data lake: {}", collection.stats());

    let engine = Engine::builder(collection)
        .metric(RelatednessMetric::Containment)
        .phi(SimilarityFunction::Jaccard)
        .delta(0.7)
        .alpha(0.5)
        .build()
        .expect("valid configuration");
    let collection = engine.collection();

    // 50 random reference columns with enough distinct values (§8.1 uses
    // 1000 out of 500K; scaled down proportionally). The whole reference
    // batch fans out across all cores; output is identical to serial.
    let ref_ids = silkmoth::datagen::pick_references(&corpus, 50, 4, 17);
    let refs: Vec<_> = ref_ids
        .iter()
        .map(|&rid| collection.set(rid as u32).clone())
        .collect();
    let t0 = std::time::Instant::now();
    let out = engine.discover_parallel(&refs, 0);
    let mut total_hits = 0usize;
    let mut example: Option<(usize, u32, f64)> = None;
    for p in &out.pairs {
        let rid = ref_ids[p.r as usize];
        if p.s as usize != rid {
            total_hits += 1;
            example.get_or_insert((rid, p.s, p.score));
        }
    }
    let elapsed = t0.elapsed();

    println!(
        "searched {} reference columns in {:.2?}: {} approximate inclusion dependencies",
        ref_ids.len(),
        elapsed,
        total_hits
    );
    if let Some((rid, sid, score)) = example {
        println!();
        println!("example: column {rid} ⊑ column {sid} (containment {score:.3})");
        let show = |id: u32, label: &str| {
            let vals: Vec<&str> = collection
                .set(id)
                .elements
                .iter()
                .take(5)
                .map(|e| e.text.as_ref())
                .collect();
            println!(
                "  {label} ({} values): {:?} …",
                collection.set(id).len(),
                vals
            );
        };
        show(rid as u32, "contained");
        show(sid, "container");
    }
    assert!(total_hits > 0, "planted containment pairs must be found");
}
