//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`Strategy`] with [`prop_map`](Strategy::prop_map), [`Just`],
//! [`any`], [`prop_oneof!`], integer/float range strategies, a
//! regex-subset string strategy (character classes, groups, and `{m,n}`
//! repetition — exactly what the test patterns need), and
//! [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * cases are generated from a fixed per-test seed (derived from the
//!   test function's name), so runs are fully deterministic;
//! * failures panic with the case number but are **not shrunk**;
//! * `prop_assume!` skips the case instead of recording rejections.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct OneOf<T> {
    /// The alternatives chosen among.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

/// Values with a canonical "any" strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// The canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- Regex-subset string strategy ------------------------------------

/// One node of the parsed pattern.
enum Node {
    Class(Vec<char>),
    Literal(char),
    Group(Vec<(Node, (usize, usize))>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ']' {
            chars.next();
            return out;
        }
        chars.next();
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // consume '-'
            match lookahead.peek() {
                Some(&hi) if hi != ']' => {
                    chars.next();
                    chars.next();
                    for v in c as u32..=hi as u32 {
                        out.push(char::from_u32(v).unwrap());
                    }
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    panic!("unterminated character class in pattern");
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                None => {
                    let n = spec.parse().unwrap();
                    (n, n)
                }
            };
            return (lo, hi);
        }
        spec.push(c);
    }
    panic!("unterminated repetition in pattern");
}

fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    in_group: bool,
) -> Vec<(Node, (usize, usize))> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.peek() {
        let node = match c {
            '[' => {
                chars.next();
                Node::Class(parse_class(chars))
            }
            '(' => {
                chars.next();
                Node::Group(parse_seq(chars, true))
            }
            ')' => {
                if !in_group {
                    panic!("unmatched ')' in pattern");
                }
                chars.next();
                return seq;
            }
            _ => {
                chars.next();
                Node::Literal(c)
            }
        };
        seq.push((node, parse_repeat(chars)));
    }
    if in_group {
        panic!("unterminated group in pattern");
    }
    seq
}

fn generate_seq(seq: &[(Node, (usize, usize))], rng: &mut StdRng, out: &mut String) {
    for (node, (lo, hi)) in seq {
        let n = rng.random_range(*lo..=*hi);
        for _ in 0..n {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::Class(chars) => out.push(chars[rng.random_range(0..chars.len())]),
                Node::Group(inner) => generate_seq(inner, rng, out),
            }
        }
    }
}

/// String literals are regex-subset strategies: character classes,
/// groups, literals, and `{m,n}` / `{n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let seq = parse_seq(&mut self.chars().peekable(), false);
        let mut out = String::new();
        generate_seq(&seq, rng, &mut out);
        out
    }
}

// ---- Collections ------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Acceptable size arguments: a fixed `usize` or a `Range<usize>`.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// `Vec`s of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet`s of values from `element`; up to `size` draws, deduped.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = rng.random_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- Runner -----------------------------------------------------------

/// Outcome of one generated case (used by the macros; not public API in
/// real proptest either).
pub enum CaseResult {
    /// Case ran to completion.
    Ok,
    /// `prop_assume!` rejected the case.
    Rejected,
}

/// Prints the failing case's coordinates while a panic unwinds out of
/// [`run_cases`], so a failure seen in CI (debug *or* release mode) can
/// be reproduced exactly: seeds derive only from the test name and the
/// printed attempt number, never from time or environment.
struct FailureReport<'a> {
    name: &'a str,
    attempt: u32,
    case_seed: u64,
    armed: bool,
}

impl Drop for FailureReport<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: test '{}' failed on attempt {} (case rng seed {:#018x}); \
                 seeds are deterministic per test name, so rerunning the test \
                 reproduces this case",
                self.name, self.attempt, self.case_seed,
            );
        }
    }
}

/// Runs `cases` deterministic cases of `body`, seeding from `name`.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut StdRng) -> CaseResult) {
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    // Mirror proptest's behavior of replacing rejected cases, with a cap
    // so a pathological prop_assume! cannot loop forever.
    while accepted < cases && attempts < cases.saturating_mul(16) {
        let case_seed = seed ^ (attempts as u64).wrapping_mul(0x9e37_79b9);
        let mut rng = StdRng::seed_from_u64(case_seed);
        attempts += 1;
        let mut report = FailureReport {
            name,
            attempt: attempts,
            case_seed,
            armed: true,
        };
        let outcome = body(&mut rng);
        report.armed = false;
        match outcome {
            CaseResult::Ok => accepted += 1,
            CaseResult::Rejected => {}
        }
    }
}

/// The proptest entry-point macro: wraps `#[test]` functions whose
/// parameters are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                    $body
                    $crate::CaseResult::Ok
                });
            }
        )+
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property test (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Rejected;
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

/// The usual `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_patterns() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{0,8}", &mut rng);
            assert!(s.len() <= 8 && s.chars().all(|c| ('a'..='c').contains(&c)));
            let s = Strategy::generate(&"[a-e ]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            let s = Strategy::generate(&"[a-d]( [a-d]){0,4}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=5).contains(&words.len()), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(
            v in super::collection::vec(0u32..10, 0..5),
            x in 0.25f64..0.75,
            flip in any::<bool>(),
            word in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assume!(flip); // rejected cases are regenerated
            prop_assert!(word == "a" || word == "b");
        }

        #[test]
        fn sets_are_deduped(s in super::collection::btree_set(0u32..4, 0..8)) {
            prop_assert!(s.len() <= 4);
        }
    }
}
