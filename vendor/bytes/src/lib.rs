//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes) 1.x.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the API the corpus codec uses: [`Bytes`],
//! [`BytesMut`], little-endian [`Buf`] reads over `&[u8]`, and [`BufMut`]
//! writes. Semantics match upstream for that subset (reads panic on
//! underflow; the codec guards with [`Buf::remaining`] first).

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics when fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte. Panics when empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`. Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`. Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(0x0102_0304_0506_0708);
        w.put_slice(b"tail");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.chunk(), b"tail");
        r.advance(4);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_exposes_slice_api() {
        let mut w = BytesMut::with_capacity(4);
        w.put_slice(b"abc");
        assert_eq!(w.len(), 3);
        let b = w.freeze();
        assert_eq!(b.to_vec(), b"abc");
        assert_eq!(&b[..2], b"ab");
    }
}
