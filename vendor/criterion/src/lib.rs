//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on a plain wall-clock harness: each
//! benchmark is warmed up, then timed for `sample_size` samples, and the
//! per-iteration mean, min, and max are printed in criterion's
//! `group/function/parameter` naming scheme. No statistics, plots, or
//! baselines — just honest comparable numbers with zero dependencies.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benches that need it.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id, for groups benchmarking one function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, reported as elements/sec when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to benchmark functions.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Runs `f` repeatedly: a short warm-up, then the timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~50ms or 3 iterations, whichever is later,
        // and size each sample so one sample is not sub-microsecond noise.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 1000)
        {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        self.iters_per_sample = if per_iter < Duration::from_micros(10) {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u32
        } else {
            1
        };
        let n_samples = self.samples.capacity();
        for _ in 0..n_samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(f());
            }
            self.samples.push(t0.elapsed() / self.iters_per_sample);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default 100 is
    /// far too slow for a plain harness; we default to 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored (accepted for criterion compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.label, |b| f(b));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, label: &str, f: F) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, label);
        if bencher.samples.is_empty() {
            println!("{full:<60} (no samples)");
            return;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = bencher.samples.iter().min().unwrap();
        let max = bencher.samples.iter().max().unwrap();
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{full:<60} time: [{} {} {}]{extra}",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Top-level single benchmark (criterion compatibility).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_owned());
        group.run("bench", |b| f(b));
        group.finish();
        self
    }

    /// Prints the closing summary (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        println!("# {} benchmarks completed", self.benchmarks_run);
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| ()));
        group.finish();
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }
}
