//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.9.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the API surface the workspace uses: [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! workload generators require (they promise determinism per seed, not
//! bit-compatibility with upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s plus the derived sampling methods.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly distributed value in `range`. Panics when the range is
    /// empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types with a canonical uniform distribution (the `StandardUniform` of
/// real `rand`).
pub trait FromRng {
    /// Samples one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Integer types that [`SampleRange`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (caller guarantees the value fits).
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from an empty range");
        if lo == 0 && hi == u64::MAX {
            // Full-width range: `hi - lo + 1` would overflow to 0.
            return T::from_u64(rng.next_u64());
        }
        let span = hi - lo + 1;
        T::from_u64(lo + rng.next_u64() % span)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — fast, high-quality, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u8 = rng.random_range(0..=26);
            assert!(w <= 26);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_is_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let _: u64 = rng.random_range(0..=u64::MAX);
            let _: u64 = rng.random_range(0..=u64::MAX - 1);
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sample(&mut rng) < 1.0);
    }
}
