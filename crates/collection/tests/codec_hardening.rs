//! Hardening tests for `silkmoth_collection::codec`: the binary corpus
//! format must round-trip exactly (golden-checked on the paper example)
//! and must survive hostile bytes — truncations, corrupted headers,
//! absurd declared lengths — with an `Err`, never a panic or a
//! pathological allocation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silkmoth_collection::codec::{decode, encode, CodecError};
use silkmoth_collection::{paper_example, Collection, Tokenization};

/// Golden round-trip on the paper's Table 2 example: the header bytes
/// are pinned (format stability), and decoding reproduces the exact
/// collection — sets, dictionary, and tokenization.
#[test]
fn golden_roundtrip_paper_example() {
    let (c, _) = paper_example::table2();
    let bytes = encode(&c);

    // Pinned header: magic, whitespace tag, q = 0, n_sets = 4.
    assert_eq!(&bytes[..4], b"SMC1");
    assert_eq!(bytes[4], 0, "whitespace tokenization tag");
    assert_eq!(&bytes[5..9], &[0, 0, 0, 0], "q is zero for whitespace");
    assert_eq!(&bytes[9..17], &4u64.to_le_bytes(), "Table 2 has 4 sets");

    let back = decode(&bytes).unwrap();
    assert_eq!(back.len(), c.len());
    assert_eq!(back.tokenization(), c.tokenization());
    assert_eq!(back.dict().len(), c.dict().len());
    for (a, b) in c.sets().iter().zip(back.sets()) {
        assert_eq!(a, b);
    }
    // Encoding the decoded collection is a byte-level fixpoint.
    assert_eq!(encode(&back), bytes);
}

/// Every truncation of a valid corpus is `Err(Truncated)` or
/// `Err(BadMagic)` — never a panic, never an `Ok`.
#[test]
fn every_truncation_is_an_error() {
    let (c, _) = paper_example::table2();
    let bytes = encode(&c);
    for cut in 0..bytes.len() {
        match decode(&bytes[..cut]) {
            Err(CodecError::Truncated) | Err(CodecError::BadMagic) => {}
            other => panic!("cut at {cut}: expected truncation error, got {other:?}"),
        }
    }
    assert!(decode(&bytes).is_ok(), "the untruncated corpus decodes");
}

/// A corrupted header declaring astronomically many sets (or elements,
/// or absurd string lengths) must fail fast via bounds checks — the
/// capacity hints are clamped by the buffer size, so this cannot
/// trigger a giant allocation before the `Truncated` error.
#[test]
fn absurd_declared_lengths_fail_without_allocating() {
    let (c, _) = paper_example::table2();
    let good = encode(&c);

    // n_sets = u64::MAX.
    let mut b = good.to_vec();
    b[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode(&b).unwrap_err(), CodecError::Truncated);

    // First set's n_elems = u32::MAX.
    let mut b = good.to_vec();
    b[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(decode(&b).unwrap_err(), CodecError::Truncated);

    // First element's byte length = u32::MAX.
    let mut b = good.to_vec();
    b[21..25].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(decode(&b).unwrap_err(), CodecError::Truncated);

    // A minimal hostile document: valid header, huge count, no payload.
    let mut tiny = Vec::new();
    tiny.extend_from_slice(b"SMC1");
    tiny.push(0);
    tiny.extend_from_slice(&0u32.to_le_bytes());
    tiny.extend_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode(&tiny).unwrap_err(), CodecError::Truncated);
}

/// A corrupted q — zero or absurdly large — must be rejected up front:
/// decoding replays the build, whose q-gram padding is `O(q)` per
/// element (a 4-billion q would demand gigabytes, and `q = 0` panics in
/// the tokenizer).
#[test]
fn hostile_q_values_rejected() {
    let c = Collection::build(&[vec!["abcd"]], Tokenization::QGram { q: 2 });
    let good = encode(&c).to_vec();
    for bad_q in [0u32, 65, u32::MAX] {
        let mut b = good.clone();
        b[5..9].copy_from_slice(&bad_q.to_le_bytes());
        assert_eq!(
            decode(&b).unwrap_err(),
            CodecError::BadQ(bad_q as usize),
            "q = {bad_q}"
        );
    }
    // The cap itself is fine.
    let c64 = Collection::build(&[vec!["abcd"]], Tokenization::QGram { q: 64 });
    assert!(decode(&encode(&c64)).is_ok());
}

#[test]
fn non_utf8_element_bytes_rejected() {
    let c = Collection::build(&[vec!["abc"]], Tokenization::Whitespace);
    let mut b = encode(&c).to_vec();
    let start = b.len() - 3; // the 3 bytes of "abc"
    b[start] = 0xff;
    assert_eq!(decode(&b).unwrap_err(), CodecError::BadUtf8);
}

/// Encoding skips tombstoned sets: the round-trip of a mutated
/// collection is its compacted form.
#[test]
fn encode_skips_tombstones_and_roundtrips_to_the_compacted_form() {
    let raw = vec![
        vec!["a b".to_string()],
        vec!["c d".to_string()],
        vec!["e f".to_string()],
    ];
    let mut c = Collection::build(&raw, Tokenization::Whitespace);
    c.append_sets(&[vec!["g h".to_string()]]);
    c.remove_sets(&[1]).unwrap();
    let bytes = encode(&c);

    let back = decode(&bytes).unwrap();
    assert_eq!(back.len(), 3, "live sets only");

    let mut compacted = c.clone();
    compacted.compact();
    assert_eq!(compacted.len(), back.len());
    for (a, b) in compacted.sets().iter().zip(back.sets()) {
        assert_eq!(a, b);
    }
    assert_eq!(
        encode(&compacted),
        bytes,
        "compacting first changes nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Random single-byte corruptions (and random tail garbage) of a
    // valid corpus never panic: they decode, or they fail with a named
    // error.
    #[test]
    fn random_corruptions_never_panic(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let n = rng.random_range(0..6usize);
        let raw: Vec<Vec<String>> = (0..n)
            .map(|_| {
                let elems = rng.random_range(0..3usize);
                (0..elems)
                    .map(|_| {
                        let len = rng.random_range(0..6usize);
                        (0..len)
                            .map(|_| char::from(b'a' + rng.random_range(0..6u8)))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let tokenization = if rng.random() {
            Tokenization::Whitespace
        } else {
            Tokenization::QGram { q: rng.random_range(1..4usize) }
        };
        let bytes = encode(&Collection::build(&raw, tokenization)).to_vec();

        for _ in 0..16 {
            let mut bad = bytes.clone();
            match rng.random_range(0..3u32) {
                0 if !bad.is_empty() => {
                    let i = rng.random_range(0..bad.len());
                    bad[i] = bad[i].wrapping_add(rng.random_range(1..=255u8));
                }
                1 => bad.truncate(rng.random_range(0..=bad.len())),
                _ => bad.extend((0..rng.random_range(1..8usize)).map(|_| rng.random_range(0..=255u8) as u8)),
            }
            let _ = decode(&bad); // must not panic; Ok or Err both fine
        }
    }

    // Arbitrary garbage buffers never panic either.
    #[test]
    fn garbage_buffers_never_panic(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let n = rng.random_range(0..64usize);
        let mut buf: Vec<u8> = (0..n).map(|_| rng.random_range(0..=255u8) as u8).collect();
        let _ = decode(&buf);
        // Same with a valid magic stapled on, to reach the deeper paths.
        if buf.len() >= 4 {
            buf[..4].copy_from_slice(b"SMC1");
            let _ = decode(&buf);
        }
    }
}
