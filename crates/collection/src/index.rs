//! The inverted index `I` (§3).

use crate::{Collection, ElemIdx, SetIdx};
use silkmoth_text::TokenId;

/// One entry of an inverted list: "this token occurs in element `elem` of
/// set `set`". Lists are sorted by `(set, elem)` and deduplicated (an
/// element lists a token once even if the token appears in it repeatedly —
/// footnote 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Containing set.
    pub set: SetIdx,
    /// Element within the set.
    pub elem: ElemIdx,
}

/// Inverted index over a [`Collection`]: for each token `t`, `I[t]` is the
/// sorted list of `(set, element)` postings containing `t`.
///
/// The index supports **append-only incremental maintenance**
/// ([`append_sets`](Self::append_sets)): new sets always carry ids past
/// every indexed set, so their postings extend each list's sorted tail
/// in place. Tombstoned sets keep their postings — the search layer
/// filters candidates by liveness — and a
/// [`Collection::compact`](crate::Collection::compact) is paired with a
/// full rebuild.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    lists: Vec<Vec<Posting>>,
    total_postings: usize,
}

impl InvertedIndex {
    /// Builds the index in one pass over the collection.
    ///
    /// Element token slices are already sorted and deduplicated, and sets
    /// are visited in id order, so each list comes out sorted without a
    /// final sort.
    pub fn build(collection: &Collection) -> Self {
        let mut index = Self {
            lists: vec![Vec::new(); collection.dict().len()],
            total_postings: 0,
        };
        index.append_sets(collection, 0);
        index
    }

    /// Appends the postings of sets `from..collection.len()` — the sets
    /// a [`Collection::append_sets`](crate::Collection::append_sets)
    /// just added. `from` must be the collection's slot count *before*
    /// that append (so every already-indexed posting has `set < from`),
    /// which keeps each list sorted without re-sorting.
    pub fn append_sets(&mut self, collection: &Collection, from: SetIdx) {
        // The appended sets may have grown the dictionary.
        self.lists.resize(collection.dict().len(), Vec::new());
        for (sid, set) in collection.sets().iter().enumerate().skip(from as usize) {
            for (eid, elem) in set.elements.iter().enumerate() {
                for &t in elem.tokens.iter() {
                    self.lists[t as usize].push(Posting {
                        set: sid as SetIdx,
                        elem: eid as ElemIdx,
                    });
                    self.total_postings += 1;
                }
            }
        }
    }

    /// The inverted list `I[t]`. Out-of-dictionary ids (external reference
    /// tokens) yield an empty list.
    #[inline]
    pub fn list(&self, t: TokenId) -> &[Posting] {
        self.lists.get(t as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `|I[t]|` — the signature-selection cost of token `t` (§4.3).
    #[inline]
    pub fn cost(&self, t: TokenId) -> usize {
        self.list(t).len()
    }

    /// The contiguous postings of set `s` inside `I[t]`, located by binary
    /// search (footnote 7). Used by `NNSearch` to enumerate the elements of
    /// one candidate set containing `t`.
    pub fn postings_in_set(&self, t: TokenId, s: SetIdx) -> &[Posting] {
        let list = self.list(t);
        let lo = list.partition_point(|p| p.set < s);
        let hi = list.partition_point(|p| p.set <= s);
        &list[lo..hi]
    }

    /// Number of token lists (= dictionary size at build time).
    pub fn num_tokens(&self) -> usize {
        self.lists.len()
    }

    /// Total postings across all lists.
    pub fn total_postings(&self) -> usize {
        self.total_postings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tokenization;

    fn index() -> (Collection, InvertedIndex) {
        let raw = vec![vec!["a b", "b c"], vec!["a", "c d"], vec!["b d"]];
        let c = Collection::build(&raw, Tokenization::Whitespace);
        let i = InvertedIndex::build(&c);
        (c, i)
    }

    #[test]
    fn lists_sorted_and_complete() {
        let (c, i) = index();
        // b appears in 3 elements: (0,0), (0,1), (2,0).
        let b = c.dict().id("b").unwrap();
        let list = i.list(b);
        assert_eq!(list.len(), 3);
        assert!(list.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(list[0], Posting { set: 0, elem: 0 });
        assert_eq!(list[2], Posting { set: 2, elem: 0 });
    }

    #[test]
    fn cost_matches_dict_frequency() {
        let (c, i) = index();
        for tok in ["a", "b", "c", "d"] {
            let id = c.dict().id(tok).unwrap();
            assert_eq!(i.cost(id), c.dict().frequency(id) as usize, "{tok}");
        }
    }

    #[test]
    fn postings_in_set_binary_search() {
        let (c, i) = index();
        let b = c.dict().id("b").unwrap();
        let in0 = i.postings_in_set(b, 0);
        assert_eq!(in0.len(), 2);
        assert!(in0.iter().all(|p| p.set == 0));
        let in1 = i.postings_in_set(b, 1);
        assert!(in1.is_empty());
        let in2 = i.postings_in_set(b, 2);
        assert_eq!(in2, &[Posting { set: 2, elem: 0 }]);
    }

    #[test]
    fn out_of_dictionary_token_is_empty() {
        let (_, i) = index();
        assert!(i.list(999).is_empty());
        assert_eq!(i.cost(999), 0);
        assert!(i.postings_in_set(999, 0).is_empty());
    }

    #[test]
    fn duplicate_tokens_in_element_posted_once() {
        let raw = vec![vec!["x x x"]];
        let c = Collection::build(&raw, Tokenization::Whitespace);
        let i = InvertedIndex::build(&c);
        assert_eq!(i.cost(c.dict().id("x").unwrap()), 1);
    }

    #[test]
    fn total_postings_counts_all() {
        let (_, i) = index();
        // Elements: {a,b},{b,c},{a},{c,d},{b,d} → 2+2+1+2+2 = 9.
        assert_eq!(i.total_postings(), 9);
    }

    #[test]
    fn incremental_append_equals_full_rebuild() {
        let raw = vec![vec!["a b", "b c"], vec!["a", "c d"]];
        let mut c = Collection::build(&raw, Tokenization::Whitespace);
        let mut i = InvertedIndex::build(&c);
        let from = c.len() as SetIdx;
        c.append_sets(&[vec!["b z"], vec!["z d"]]);
        i.append_sets(&c, from);

        let rebuilt = InvertedIndex::build(&c);
        assert_eq!(i.num_tokens(), rebuilt.num_tokens());
        assert_eq!(i.total_postings(), rebuilt.total_postings());
        for t in 0..i.num_tokens() as u32 {
            assert_eq!(i.list(t), rebuilt.list(t), "token {t}");
            assert!(i.list(t).windows(2).all(|w| w[0] < w[1]), "sorted {t}");
        }
        // The new token's list exists and points at the appended sets.
        let z = c.dict().id("z").unwrap();
        assert_eq!(i.cost(z), 2);
        assert!(i.list(z).iter().all(|p| p.set >= from));
    }

    #[test]
    fn qgram_index_postings() {
        let raw = vec![vec!["abc"], vec!["abc", "xbc"]];
        let c = Collection::build(&raw, Tokenization::QGram { q: 2 });
        let i = InvertedIndex::build(&c);
        // "bc" occurs in all three elements.
        let bc = c.dict().id("bc").unwrap();
        assert_eq!(i.cost(bc), 3);
    }
}
