//! Frequency-ordered token dictionary.

use silkmoth_text::TokenId;
use std::collections::HashMap;

/// Interns token strings to dense [`TokenId`]s assigned in **decreasing
/// global frequency** (ties broken by lexicographic order), so `id 0` is
/// the corpus's most frequent token — the paper's `t1`.
///
/// Frequency here means the number of `(set, element)` postings a token
/// would occupy in the inverted index, i.e. each element counts a token at
/// most once.
#[derive(Debug, Clone, Default)]
pub struct TokenDict {
    by_token: HashMap<Box<str>, TokenId>,
    tokens: Vec<Box<str>>,
    freq: Vec<u32>,
}

impl TokenDict {
    /// Builds the dictionary from `(token, posting_count)` pairs.
    pub fn from_counts<I>(counts: I) -> Self
    where
        I: IntoIterator<Item = (Box<str>, u32)>,
    {
        let mut pairs: Vec<(Box<str>, u32)> = counts.into_iter().collect();
        // Decreasing frequency, lexicographic tie-break (deterministic).
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut by_token = HashMap::with_capacity(pairs.len());
        let mut tokens = Vec::with_capacity(pairs.len());
        let mut freq = Vec::with_capacity(pairs.len());
        for (i, (tok, f)) in pairs.into_iter().enumerate() {
            by_token.insert(tok.clone(), i as TokenId);
            tokens.push(tok);
            freq.push(f);
        }
        Self {
            by_token,
            tokens,
            freq,
        }
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Looks up a token string.
    pub fn id(&self, token: &str) -> Option<TokenId> {
        self.by_token.get(token).copied()
    }

    /// The string for a token id (panics if out of range).
    pub fn token(&self, id: TokenId) -> &str {
        &self.tokens[id as usize]
    }

    /// Global posting count of a token id; 0 for out-of-dictionary ids
    /// (external reference tokens).
    pub fn frequency(&self, id: TokenId) -> u32 {
        self.freq.get(id as usize).copied().unwrap_or(0)
    }

    /// Interns `token` for an incremental append, counting one more
    /// posting: an existing token keeps its id (frequency bumped), a new
    /// token is appended with the next free id.
    ///
    /// Appended ids are **not** re-sorted into the decreasing-frequency
    /// order `from_counts` establishes — that order is a signature-cost
    /// heuristic, never a correctness requirement, and
    /// [`Collection::compact`](crate::Collection::compact) restores it.
    pub(crate) fn intern_posting(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.by_token.get(token) {
            self.freq[id as usize] += 1;
            return id;
        }
        let id = self.tokens.len() as TokenId;
        let boxed: Box<str> = token.into();
        self.by_token.insert(boxed.clone(), id);
        self.tokens.push(boxed);
        self.freq.push(1);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> TokenDict {
        TokenDict::from_counts(vec![
            ("rare".into(), 1u32),
            ("common".into(), 9),
            ("mid".into(), 4),
        ])
    }

    #[test]
    fn ids_follow_decreasing_frequency() {
        let d = dict();
        assert_eq!(d.id("common"), Some(0));
        assert_eq!(d.id("mid"), Some(1));
        assert_eq!(d.id("rare"), Some(2));
    }

    #[test]
    fn roundtrip() {
        let d = dict();
        for t in ["common", "mid", "rare"] {
            assert_eq!(d.token(d.id(t).unwrap()), t);
        }
        assert_eq!(d.id("missing"), None);
    }

    #[test]
    fn frequency_lookup() {
        let d = dict();
        assert_eq!(d.frequency(0), 9);
        assert_eq!(d.frequency(2), 1);
        assert_eq!(d.frequency(99), 0); // out-of-dictionary
    }

    #[test]
    fn lexicographic_tie_break() {
        let d = TokenDict::from_counts(vec![("b".into(), 5u32), ("a".into(), 5), ("c".into(), 5)]);
        assert_eq!(d.id("a"), Some(0));
        assert_eq!(d.id("b"), Some(1));
        assert_eq!(d.id("c"), Some(2));
    }

    #[test]
    fn empty_dict() {
        let d = TokenDict::from_counts(Vec::<(Box<str>, u32)>::new());
        assert!(d.is_empty());
        assert_eq!(d.id("x"), None);
    }
}
