//! The paper's running example (Table 2), used as a shared fixture.
//!
//! Reference set `R` (the *Location* column) and collection
//! `S = {S1, S2, S3, S4}`. Token `tᵢ` is rendered as the literal string
//! `"tᵢ"`; because the corpus frequencies of `t1..t12` are strictly
//! compatible with the paper's subscript order (9, 8, 7, 6, 6, 6, 5, 3, 3,
//! 1, 1, 1 with lexicographic tie-breaks), the dictionary assigns
//! `tᵢ ↦ id i−1`, so tests can reason in paper coordinates.

use crate::{Collection, SetRecord, Tokenization};
use silkmoth_text::TokenId;

/// Builds `(S, R)` exactly as in Table 2.
pub fn table2() -> (Collection, SetRecord) {
    let s: Vec<Vec<&str>> = vec![
        // S1
        vec!["t2 t3 t5 t6 t7", "t1 t2 t4 t5 t6", "t1 t2 t3 t4 t7"],
        // S2
        vec!["t1 t6 t8", "t1 t4 t5 t6 t7", "t1 t2 t3 t7 t9"],
        // S3
        vec!["t1 t2 t3 t4 t6 t8", "t2 t3 t11 t12", "t1 t2 t3 t5"],
        // S4
        vec!["t1 t2 t3 t8", "t4 t5 t7 t9 t10", "t1 t4 t5 t6 t9"],
    ];
    let collection = Collection::build(&s, Tokenization::Whitespace);
    let r = collection.encode_set(&["t1 t2 t3 t6 t8", "t4 t5 t7 t9 t10", "t1 t4 t5 t11 t12"]);
    (collection, r)
}

/// Paper token subscript (1-based) → dictionary id.
///
/// Valid because the Table 2 frequencies sort `t1..t12` into exactly the
/// subscript order (verified by a test below).
pub fn tid(subscript: usize) -> TokenId {
    assert!((1..=12).contains(&subscript));
    (subscript - 1) as TokenId
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InvertedIndex;

    #[test]
    fn dictionary_matches_paper_subscripts() {
        let (c, _) = table2();
        for i in 1..=12 {
            assert_eq!(
                c.dict().id(&format!("t{i}")),
                Some(tid(i)),
                "t{i} should have id {}",
                i - 1
            );
        }
    }

    #[test]
    fn inverted_list_costs_match_example7() {
        // Example 7: costs for t1..t12 are 9, 8, 7, 6, 6, 6, 5, 3, 3, 1, 1, 1.
        let (c, _) = table2();
        let idx = InvertedIndex::build(&c);
        let want = [9, 8, 7, 6, 6, 6, 5, 3, 3, 1, 1, 1];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(idx.cost(tid(i + 1)), w, "cost of t{}", i + 1);
        }
    }

    #[test]
    fn r_has_three_elements_of_five_tokens() {
        let (_, r) = table2();
        assert_eq!(r.len(), 3);
        for e in r.elements.iter() {
            assert_eq!(e.tokens.len(), 5);
        }
    }

    #[test]
    fn rt_is_t1_through_t12() {
        // Example 4: R^T = {t1, …, t12}.
        let (_, r) = table2();
        let all = r.all_tokens();
        assert_eq!(all, (0u32..12).collect::<Vec<_>>());
    }

    #[test]
    fn t8_appears_in_s21_s31_s41() {
        // §3's worked example: t8 appears in s²₁, s³₁, s⁴₁.
        let (c, _) = table2();
        let idx = InvertedIndex::build(&c);
        let list = idx.list(tid(8));
        let got: Vec<(u32, u32)> = list.iter().map(|p| (p.set, p.elem)).collect();
        assert_eq!(got, vec![(1, 0), (2, 0), (3, 0)]);
    }
}
