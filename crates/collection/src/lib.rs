//! # silkmoth-collection
//!
//! Set collections, the frequency-ordered token dictionary, and the
//! inverted index for the SilkMoth related-set discovery system (§3 of the
//! paper).
//!
//! A [`Collection`] is built from raw data — each *set* is a list of
//! *element* strings — under a chosen [`Tokenization`]:
//!
//! * [`Tokenization::Whitespace`] for Jaccard similarity (each word is a
//!   token);
//! * [`Tokenization::QGram`] for edit similarity (each q-gram is a token;
//!   elements additionally record their q-chunk token positions, used for
//!   signature generation in §7.1).
//!
//! Token ids are assigned in **decreasing order of global frequency**
//! (ties broken lexicographically), matching the paper's Table 2
//! convention where `t1` is the most frequent token.
//!
//! The [`InvertedIndex`] maps each token to the deduplicated, sorted list
//! of `(set, element)` pairs containing it (§3, footnote 4); per-set
//! sublists are located by binary search (footnote 7), which is what the
//! nearest-neighbor filter's `NNSearch` relies on.

mod builder;
pub mod codec;
mod dict;
mod element;
mod index;
pub mod paper_example;
mod stats;

pub use builder::Tokenization;
pub use dict::TokenDict;
pub use element::{Element, SetRecord};
pub use index::{InvertedIndex, Posting};
pub use stats::CollectionStats;

use silkmoth_text::TokenId;

/// Index of a set inside a [`Collection`].
pub type SetIdx = u32;
/// Index of an element inside a set.
pub type ElemIdx = u32;

/// A corpus of sets sharing one token dictionary.
#[derive(Debug, Clone)]
pub struct Collection {
    sets: Vec<SetRecord>,
    dict: TokenDict,
    tokenization: Tokenization,
}

impl Collection {
    /// Builds a collection from raw sets of element strings.
    ///
    /// Two passes: the first counts global token frequencies (one count per
    /// *element occurrence*, i.e. per future posting), the second assigns
    /// ids in decreasing frequency order and encodes every element as a
    /// sorted, deduplicated token-id slice.
    pub fn build<S: AsRef<str>>(raw: &[Vec<S>], tokenization: Tokenization) -> Self {
        builder::build_collection(raw, tokenization)
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the collection holds no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The sets, in insertion order.
    pub fn sets(&self) -> &[SetRecord] {
        &self.sets
    }

    /// One set by index.
    pub fn set(&self, id: SetIdx) -> &SetRecord {
        &self.sets[id as usize]
    }

    /// The shared token dictionary.
    pub fn dict(&self) -> &TokenDict {
        &self.dict
    }

    /// The tokenization this collection was built with.
    pub fn tokenization(&self) -> Tokenization {
        self.tokenization
    }

    /// Encodes an external reference set against this collection's
    /// dictionary (search mode, Problem 2).
    ///
    /// Tokens absent from the dictionary receive fresh ids starting at
    /// `dict.len()`; such tokens have empty inverted lists, which the
    /// signature generator exploits (a signature token with an empty list
    /// costs nothing and admits no candidates).
    pub fn encode_set<S: AsRef<str>>(&self, elements: &[S]) -> SetRecord {
        builder::encode_external_set(self, elements)
    }

    /// Summary statistics (Table 3 columns).
    pub fn stats(&self) -> CollectionStats {
        stats::compute(self)
    }

    pub(crate) fn from_parts(
        sets: Vec<SetRecord>,
        dict: TokenDict,
        tokenization: Tokenization,
    ) -> Self {
        Self {
            sets,
            dict,
            tokenization,
        }
    }
}

/// Convenience re-export of the token id type.
pub type Token = TokenId;
