//! # silkmoth-collection
//!
//! Set collections, the frequency-ordered token dictionary, and the
//! inverted index for the SilkMoth related-set discovery system (§3 of the
//! paper).
//!
//! A [`Collection`] is built from raw data — each *set* is a list of
//! *element* strings — under a chosen [`Tokenization`]:
//!
//! * [`Tokenization::Whitespace`] for Jaccard similarity (each word is a
//!   token);
//! * [`Tokenization::QGram`] for edit similarity (each q-gram is a token;
//!   elements additionally record their q-chunk token positions, used for
//!   signature generation in §7.1).
//!
//! Token ids are assigned in **decreasing order of global frequency**
//! (ties broken lexicographically), matching the paper's Table 2
//! convention where `t1` is the most frequent token.
//!
//! The [`InvertedIndex`] maps each token to the deduplicated, sorted list
//! of `(set, element)` pairs containing it (§3, footnote 4); per-set
//! sublists are located by binary search (footnote 7), which is what the
//! nearest-neighbor filter's `NNSearch` relies on.

mod builder;
pub mod codec;
mod dict;
mod element;
mod index;
pub mod paper_example;
mod stats;

pub use builder::Tokenization;
pub use dict::TokenDict;
pub use element::{Element, SetRecord};
pub use index::{InvertedIndex, Posting};
pub use stats::CollectionStats;

use silkmoth_text::TokenId;

/// Index of a set inside a [`Collection`].
pub type SetIdx = u32;
/// Index of an element inside a set.
pub type ElemIdx = u32;

/// Errors from the incremental-update API ([`Collection::remove_sets`]
/// and the engine layers built on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// The referenced set id was never assigned (or was dropped by a
    /// compaction) — nothing was mutated.
    NoSuchSet(SetIdx),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSuchSet(id) => write!(f, "no such set: {id}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// A corpus of sets sharing one token dictionary.
///
/// ## Incremental updates
///
/// A collection is mutable after the initial build:
/// [`append_sets`](Self::append_sets) encodes new sets against the
/// existing dictionary (growing it in place — new tokens get fresh ids
/// past the end, so established ids never move), and
/// [`remove_sets`](Self::remove_sets) **tombstones** sets in place: the
/// slot and its id survive, but the set is no longer
/// [`is_live`](Self::is_live) and every search layer skips it at
/// candidate admission. [`len`](Self::len) counts slots (live + dead);
/// [`live_len`](Self::live_len) counts live sets.
///
/// Tombstoning and dictionary growth trade index freshness for O(1)
/// removal and append-only index maintenance: dead sets keep their
/// postings and the dictionary keeps its (now possibly stale)
/// frequency order. Neither affects *correctness* — frequencies and
/// posting-list costs only steer signature selection, and candidates
/// are liveness-filtered — but a heavily-mutated collection prunes
/// less effectively until [`compact`](Self::compact) rewrites it.
#[derive(Debug, Clone)]
pub struct Collection {
    sets: Vec<SetRecord>,
    dict: TokenDict,
    tokenization: Tokenization,
    /// Liveness per slot; `false` marks a tombstoned set.
    live: Vec<bool>,
    /// Number of `true` entries in `live`.
    live_count: usize,
}

impl Collection {
    /// Builds a collection from raw sets of element strings.
    ///
    /// Two passes: the first counts global token frequencies (one count per
    /// *element occurrence*, i.e. per future posting), the second assigns
    /// ids in decreasing frequency order and encodes every element as a
    /// sorted, deduplicated token-id slice.
    pub fn build<S: AsRef<str>>(raw: &[Vec<S>], tokenization: Tokenization) -> Self {
        builder::build_collection(raw, tokenization)
    }

    /// Number of set *slots* (live and tombstoned). Slot ids are stable:
    /// removal never shifts them, so this is also the exclusive upper
    /// bound on valid [`SetIdx`] values.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the collection holds no set slots.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Number of live (non-tombstoned) sets.
    pub fn live_len(&self) -> usize {
        self.live_count
    }

    /// True when the slot exists and has not been tombstoned.
    /// Out-of-range ids are simply not live.
    #[inline]
    pub fn is_live(&self, id: SetIdx) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// The ids of all live sets, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = SetIdx> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l)
            .map(|(i, _)| i as SetIdx)
    }

    /// Appends new sets, encoding them against the existing dictionary:
    /// known tokens keep their ids, unknown tokens are interned with
    /// fresh ids past the current end (never reshuffling established
    /// ids), and per-token posting counts grow accordingly. Returns the
    /// ids assigned to the new sets, in input order.
    ///
    /// The dictionary's decreasing-frequency id order — a signature-cost
    /// heuristic, not a correctness requirement — degrades as appends
    /// accumulate; [`compact`](Self::compact) restores it.
    pub fn append_sets<S: AsRef<str>>(&mut self, raw: &[Vec<S>]) -> std::ops::Range<SetIdx> {
        builder::append_sets(self, raw)
    }

    /// Tombstones the given set ids. Already-tombstoned ids are no-ops
    /// (removal is idempotent); an id that was never assigned is an
    /// [`UpdateError::NoSuchSet`] and **nothing** is mutated. Returns how
    /// many sets were newly tombstoned.
    pub fn remove_sets(&mut self, ids: &[SetIdx]) -> Result<usize, UpdateError> {
        if let Some(&bad) = ids.iter().find(|&&id| (id as usize) >= self.sets.len()) {
            return Err(UpdateError::NoSuchSet(bad));
        }
        let mut removed = 0;
        for &id in ids {
            if std::mem::replace(&mut self.live[id as usize], false) {
                removed += 1;
            }
        }
        self.live_count -= removed;
        Ok(removed)
    }

    /// Rewrites the collection from its live sets only: tombstoned slots
    /// are dropped, remaining sets are renumbered densely (preserving
    /// relative order), and the dictionary is rebuilt in fresh
    /// decreasing-frequency order. Returns the slot remapping, `old id →
    /// new id` (`None` for dropped slots).
    ///
    /// Equivalent to `Collection::build` over the live raw texts — the
    /// compacted collection is byte-for-byte what a from-scratch build
    /// would produce.
    pub fn compact(&mut self) -> Vec<Option<SetIdx>> {
        let mut remap = Vec::with_capacity(self.sets.len());
        let mut next = 0 as SetIdx;
        let mut raw: Vec<Vec<&str>> = Vec::with_capacity(self.live_count);
        for (i, set) in self.sets.iter().enumerate() {
            if self.live[i] {
                remap.push(Some(next));
                next += 1;
                raw.push(set.elements.iter().map(|e| e.text.as_ref()).collect());
            } else {
                remap.push(None);
            }
        }
        *self = builder::build_collection(&raw, self.tokenization);
        remap
    }

    /// The sets, in insertion order.
    pub fn sets(&self) -> &[SetRecord] {
        &self.sets
    }

    /// One set by index.
    pub fn set(&self, id: SetIdx) -> &SetRecord {
        &self.sets[id as usize]
    }

    /// The shared token dictionary.
    pub fn dict(&self) -> &TokenDict {
        &self.dict
    }

    /// The tokenization this collection was built with.
    pub fn tokenization(&self) -> Tokenization {
        self.tokenization
    }

    /// Encodes an external reference set against this collection's
    /// dictionary (search mode, Problem 2).
    ///
    /// Tokens absent from the dictionary receive fresh ids starting at
    /// `dict.len()`; such tokens have empty inverted lists, which the
    /// signature generator exploits (a signature token with an empty list
    /// costs nothing and admits no candidates).
    pub fn encode_set<S: AsRef<str>>(&self, elements: &[S]) -> SetRecord {
        builder::encode_external_set(self, elements)
    }

    /// Summary statistics (Table 3 columns).
    pub fn stats(&self) -> CollectionStats {
        stats::compute(self)
    }

    pub(crate) fn from_parts(
        sets: Vec<SetRecord>,
        dict: TokenDict,
        tokenization: Tokenization,
    ) -> Self {
        let live_count = sets.len();
        Self {
            live: vec![true; live_count],
            live_count,
            sets,
            dict,
            tokenization,
        }
    }
}

/// Convenience re-export of the token id type.
pub type Token = TokenId;
