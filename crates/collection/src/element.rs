//! Elements and set records.

use silkmoth_text::TokenId;

/// One element of a set: its raw text plus the interned token view used by
/// the index, signatures, and similarity evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Original element text (used by edit-similarity verification).
    pub text: Box<str>,
    /// Distinct token ids, sorted ascending. For whitespace tokenization
    /// these are the words; for q-gram tokenization, the q-grams of the
    /// padded text.
    pub tokens: Box<[TokenId]>,
    /// Q-chunk token ids in positional order (may contain repeats); empty
    /// under whitespace tokenization. Signatures for edit similarity select
    /// from these (§7.1).
    pub chunks: Box<[TokenId]>,
    /// Characters of `text`, materialized once for the Levenshtein kernel.
    /// Empty under whitespace tokenization.
    pub chars: Box<[char]>,
    /// Character length of `text` (the `|r|` of §7's formulas).
    pub char_len: u32,
}

impl Element {
    /// The element "size" `|r|` used in signature-scheme formulas:
    /// distinct-token count for Jaccard (§4.2), character length for edit
    /// similarity (§7.1).
    #[inline]
    pub fn size(&self, edit: bool) -> usize {
        if edit {
            self.char_len as usize
        } else {
            self.tokens.len()
        }
    }

    /// Number of signature-selectable units: distinct tokens for Jaccard,
    /// q-chunk occurrences for edit similarity.
    #[inline]
    pub fn signature_pool_len(&self, edit: bool) -> usize {
        if edit {
            self.chunks.len()
        } else {
            self.tokens.len()
        }
    }

    /// True if this element contains token `t` (binary search over the
    /// sorted distinct tokens).
    #[inline]
    pub fn contains_token(&self, t: TokenId) -> bool {
        self.tokens.binary_search(&t).is_ok()
    }
}

/// A set: an ordered list of elements. Order is preserved from input so
/// results can be reported against the original data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetRecord {
    /// The elements of the set.
    pub elements: Box<[Element]>,
}

impl SetRecord {
    /// Number of elements `|R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The distinct tokens of the whole set, `R^T = ∪ r` (Definition 3's
    /// universe), sorted ascending.
    pub fn all_tokens(&self) -> Vec<TokenId> {
        let mut v: Vec<TokenId> = self
            .elements
            .iter()
            .flat_map(|e| e.tokens.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(tokens: &[TokenId]) -> Element {
        Element {
            text: "".into(),
            tokens: tokens.into(),
            chunks: Box::new([]),
            chars: Box::new([]),
            char_len: 0,
        }
    }

    #[test]
    fn size_switches_on_tokenization() {
        let mut e = elem(&[1, 2, 3]);
        e.char_len = 10;
        assert_eq!(e.size(false), 3);
        assert_eq!(e.size(true), 10);
    }

    #[test]
    fn contains_token_binary_search() {
        let e = elem(&[2, 5, 9]);
        assert!(e.contains_token(5));
        assert!(!e.contains_token(4));
        assert!(!e.contains_token(10));
    }

    #[test]
    fn all_tokens_dedupes_across_elements() {
        let r = SetRecord {
            elements: vec![elem(&[1, 3]), elem(&[2, 3]), elem(&[1, 4])].into(),
        };
        assert_eq!(r.all_tokens(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_set() {
        let r = SetRecord {
            elements: Box::new([]),
        };
        assert!(r.is_empty());
        assert!(r.all_tokens().is_empty());
    }
}
