//! Two-pass collection construction and external-set encoding.

use crate::{Collection, Element, SetRecord, TokenDict};
use silkmoth_text::{qchunk_positions, qgrams, whitespace_tokens, TokenId};
use std::collections::HashMap;

/// How element strings are turned into tokens (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tokenization {
    /// Whitespace-delimited words — used with Jaccard similarity.
    Whitespace,
    /// Padded q-grams — used with edit similarity. Also records q-chunks.
    QGram {
        /// Gram length `q ≥ 1`.
        q: usize,
    },
}

impl Tokenization {
    /// True for q-gram tokenization.
    pub fn is_edit(&self) -> bool {
        matches!(self, Self::QGram { .. })
    }

    /// Raw token strings of one element under this tokenization.
    pub fn raw_tokens(&self, text: &str) -> Vec<String> {
        match self {
            Self::Whitespace => whitespace_tokens(text)
                .into_iter()
                .map(str::to_owned)
                .collect(),
            Self::QGram { q } => qgrams(text, *q),
        }
    }
}

pub(crate) fn build_collection<S: AsRef<str>>(
    raw: &[Vec<S>],
    tokenization: Tokenization,
) -> Collection {
    // Pass 1: posting counts (each element counts a token once).
    let mut counts: HashMap<Box<str>, u32> = HashMap::new();
    let mut scratch: Vec<String> = Vec::new();
    for set in raw {
        for elem in set {
            scratch.clear();
            scratch.extend(tokenization.raw_tokens(elem.as_ref()));
            scratch.sort_unstable();
            scratch.dedup();
            for t in &scratch {
                if let Some(c) = counts.get_mut(t.as_str()) {
                    *c += 1;
                } else {
                    counts.insert(t.clone().into_boxed_str(), 1);
                }
            }
        }
    }
    let dict = TokenDict::from_counts(counts);

    // Pass 2: encode every element against the dictionary.
    let sets: Vec<SetRecord> = raw
        .iter()
        .map(|set| SetRecord {
            elements: set
                .iter()
                .map(|e| {
                    encode_element(e.as_ref(), tokenization, |t| {
                        dict.id(t).expect("token seen in pass 1")
                    })
                })
                .collect(),
        })
        .collect();

    Collection::from_parts(sets, dict, tokenization)
}

/// Incremental append (see [`Collection::append_sets`]): interns each
/// new element's distinct tokens into the existing dictionary (bumping
/// posting counts, assigning fresh trailing ids to unseen tokens), then
/// encodes the element exactly as the two-pass build would.
pub(crate) fn append_sets<S: AsRef<str>>(
    collection: &mut Collection,
    raw: &[Vec<S>],
) -> std::ops::Range<crate::SetIdx> {
    let tokenization = collection.tokenization;
    let start = collection.sets.len() as crate::SetIdx;
    let mut distinct: Vec<String> = Vec::new();
    for set in raw {
        let mut elements = Vec::with_capacity(set.len());
        for elem in set {
            let text = elem.as_ref();
            distinct.clear();
            distinct.extend(tokenization.raw_tokens(text));
            distinct.sort_unstable();
            distinct.dedup();
            for t in &distinct {
                collection.dict.intern_posting(t);
            }
            let dict = &collection.dict;
            elements.push(encode_element(text, tokenization, |t| {
                dict.id(t).expect("token interned above")
            }));
        }
        collection.sets.push(SetRecord {
            elements: elements.into(),
        });
        collection.live.push(true);
    }
    collection.live_count += raw.len();
    start..collection.sets.len() as crate::SetIdx
}

/// Encodes one element, resolving token strings to ids via `resolve`.
fn encode_element(
    text: &str,
    tokenization: Tokenization,
    mut resolve: impl FnMut(&str) -> TokenId,
) -> Element {
    match tokenization {
        Tokenization::Whitespace => {
            let mut tokens: Vec<TokenId> = whitespace_tokens(text)
                .into_iter()
                .map(&mut resolve)
                .collect();
            tokens.sort_unstable();
            tokens.dedup();
            Element {
                text: text.into(),
                tokens: tokens.into(),
                chunks: Box::new([]),
                chars: Box::new([]),
                char_len: text.chars().count() as u32,
            }
        }
        Tokenization::QGram { q } => {
            let grams = qgrams(text, q);
            let ids: Vec<TokenId> = grams.iter().map(|g| resolve(g)).collect();
            let char_len = text.chars().count();
            let chunks: Vec<TokenId> = qchunk_positions(char_len, q)
                .into_iter()
                .map(|p| ids[p])
                .collect();
            let mut tokens = ids;
            tokens.sort_unstable();
            tokens.dedup();
            Element {
                text: text.into(),
                tokens: tokens.into(),
                chunks: chunks.into(),
                chars: text.chars().collect(),
                char_len: char_len as u32,
            }
        }
    }
}

pub(crate) fn encode_external_set<S: AsRef<str>>(
    collection: &Collection,
    elements: &[S],
) -> SetRecord {
    // Unknown tokens get fresh ids beyond the dictionary, consistent within
    // this one reference set so repeated unknown tokens still match each
    // other in Jaccard evaluation.
    let mut fresh: HashMap<String, TokenId> = HashMap::new();
    let base = collection.dict().len() as TokenId;
    let tokenization = collection.tokenization();
    let elems: Vec<Element> = elements
        .iter()
        .map(|e| {
            encode_element(e.as_ref(), tokenization, |t| {
                if let Some(id) = collection.dict().id(t) {
                    id
                } else {
                    let next = base + fresh.len() as TokenId;
                    *fresh.entry(t.to_owned()).or_insert(next)
                }
            })
        })
        .collect();
    SetRecord {
        elements: elems.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_build_frequency_order() {
        let raw = vec![vec!["a b", "a c"], vec!["a", "b d"]];
        let c = Collection::build(&raw, Tokenization::Whitespace);
        // Posting counts: a=3 elements, b=2, c=1, d=1.
        let d = c.dict();
        assert_eq!(d.id("a"), Some(0));
        assert_eq!(d.id("b"), Some(1));
        assert_eq!(d.id("c"), Some(2)); // tie with d, lexicographic
        assert_eq!(d.id("d"), Some(3));
    }

    #[test]
    fn element_tokens_sorted_dedup() {
        let raw = vec![vec!["x y x z y"]];
        let c = Collection::build(&raw, Tokenization::Whitespace);
        let e = &c.set(0).elements[0];
        assert_eq!(e.tokens.len(), 3);
        assert!(e.tokens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn qgram_build_has_chunks() {
        let raw = vec![vec!["abcdef", "abcd"]];
        let c = Collection::build(&raw, Tokenization::QGram { q: 3 });
        let e0 = &c.set(0).elements[0];
        assert_eq!(e0.char_len, 6);
        assert_eq!(e0.chunks.len(), 2); // ⌈6/3⌉
        let e1 = &c.set(0).elements[1];
        assert_eq!(e1.chunks.len(), 2); // ⌈4/3⌉
                                        // Chunk ids must be among the element's tokens.
        for &ch in e0.chunks.iter() {
            assert!(e0.tokens.binary_search(&ch).is_ok());
        }
        // chars materialized for edit similarity.
        assert_eq!(e0.chars.len(), 6);
    }

    #[test]
    fn external_encoding_known_tokens_match() {
        let raw = vec![vec!["alpha beta"], vec!["beta gamma"]];
        let c = Collection::build(&raw, Tokenization::Whitespace);
        let r = c.encode_set(&["beta alpha"]);
        let want: Vec<_> = {
            let mut v = vec![c.dict().id("alpha").unwrap(), c.dict().id("beta").unwrap()];
            v.sort_unstable();
            v
        };
        assert_eq!(r.elements[0].tokens.as_ref(), want.as_slice());
    }

    #[test]
    fn external_encoding_unknown_tokens_fresh_and_consistent() {
        let raw = vec![vec!["alpha"]];
        let c = Collection::build(&raw, Tokenization::Whitespace);
        let r = c.encode_set(&["zzz yyy", "zzz alpha"]);
        let base = c.dict().len() as u32;
        let e0 = &r.elements[0];
        let e1 = &r.elements[1];
        // Unknown ids are ≥ base.
        assert!(e0.tokens.iter().all(|&t| t >= base));
        // "zzz" maps to the same fresh id in both elements.
        let zzz0 = e0.tokens.iter().find(|&&t| e1.tokens.contains(&t));
        assert!(zzz0.is_some());
        // Known token resolves to the dictionary id.
        assert!(e1.tokens.contains(&c.dict().id("alpha").unwrap()));
    }

    #[test]
    fn append_grows_dictionary_without_moving_ids() {
        let raw = vec![vec!["a b", "a c"], vec!["a", "b d"]];
        let mut c = Collection::build(&raw, Tokenization::Whitespace);
        let before: Vec<(String, u32)> = ["a", "b", "c", "d"]
            .iter()
            .map(|t| (t.to_string(), c.dict().id(t).unwrap()))
            .collect();
        let ids = c.append_sets(&[vec!["a z"], vec!["z y"]]);
        assert_eq!(ids, 2..4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.live_len(), 4);
        // Established ids never move; new tokens get trailing ids.
        for (t, id) in &before {
            assert_eq!(c.dict().id(t), Some(*id), "{t}");
        }
        assert!(c.dict().id("z").unwrap() >= 4);
        assert!(c.dict().id("y").unwrap() >= 4);
        // Frequencies track postings: "a" gained one element, "z" two.
        assert_eq!(c.dict().frequency(c.dict().id("a").unwrap()), 4);
        assert_eq!(c.dict().frequency(c.dict().id("z").unwrap()), 2);
        // Appended elements encode exactly like a fresh build's would
        // (same token equality classes).
        let fresh = Collection::build(
            &[raw[0].clone(), raw[1].clone(), vec!["a z"], vec!["z y"]],
            Tokenization::Whitespace,
        );
        assert_eq!(
            c.set(2).elements[0].tokens.len(),
            fresh.set(2).elements[0].tokens.len()
        );
    }

    #[test]
    fn remove_tombstones_and_compact_rebuilds() {
        let raw = vec![vec!["a b"], vec!["c d"], vec!["e f"], vec!["a f"]];
        let mut c = Collection::build(&raw, Tokenization::Whitespace);
        assert_eq!(c.remove_sets(&[1, 3, 3]).unwrap(), 2, "idempotent per id");
        assert_eq!(c.live_len(), 2);
        assert!(c.is_live(0) && !c.is_live(1) && c.is_live(2) && !c.is_live(3));
        assert_eq!(c.live_ids().collect::<Vec<_>>(), vec![0, 2]);
        // Unknown ids are an error and mutate nothing.
        assert_eq!(
            c.remove_sets(&[0, 9]),
            Err(crate::UpdateError::NoSuchSet(9))
        );
        assert!(c.is_live(0));

        let remap = c.compact();
        assert_eq!(remap, vec![Some(0), None, Some(1), None]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.live_len(), 2);
        // Compaction is exactly a fresh build over the live raw texts.
        let fresh = Collection::build(&[vec!["a b"], vec!["e f"]], Tokenization::Whitespace);
        assert_eq!(c.dict().len(), fresh.dict().len());
        for (a, b) in c.sets().iter().zip(fresh.sets()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn qgram_append_records_chunks() {
        let mut c = Collection::build(&[vec!["abcdef"]], Tokenization::QGram { q: 3 });
        c.append_sets(&[vec!["abcd"]]);
        let e = &c.set(1).elements[0];
        assert_eq!(e.chunks.len(), 2); // ⌈4/3⌉
        for &ch in e.chunks.iter() {
            assert!(e.tokens.binary_search(&ch).is_ok());
        }
        assert_eq!(e.chars.len(), 4);
    }

    #[test]
    fn empty_collection() {
        let c = Collection::build(&Vec::<Vec<&str>>::new(), Tokenization::Whitespace);
        assert!(c.is_empty());
        assert_eq!(c.dict().len(), 0);
    }

    #[test]
    fn empty_element_string() {
        let raw = vec![vec![""]];
        let c = Collection::build(&raw, Tokenization::Whitespace);
        assert!(c.set(0).elements[0].tokens.is_empty());
        let cq = Collection::build(&raw, Tokenization::QGram { q: 2 });
        assert!(cq.set(0).elements[0].tokens.is_empty());
        assert!(cq.set(0).elements[0].chunks.is_empty());
    }
}
