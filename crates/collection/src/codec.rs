//! Compact binary serialization of corpora.
//!
//! Stores the raw element texts plus the tokenization; decoding replays
//! [`Collection::build`], which is deterministic, so a round-trip
//! reproduces the exact same token ids, element encodings, and inverted
//! index. Used by the benchmark harness to cache generated corpora
//! between runs.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   "SMC1"                      4 bytes
//! tok     0 = whitespace, 1 = q-gram  1 byte
//! q       u32 (0 when whitespace)     4 bytes
//! n_sets  u64                         8 bytes
//! per set:    n_elems u32, then per element: len u32 + UTF-8 bytes
//! ```

use crate::{Collection, Tokenization};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"SMC1";

/// Largest q-gram length a corpus may declare. Decoding replays the
/// collection build, whose q-gram padding allocates `O(q)` per element —
/// an unchecked corrupt header could demand gigabytes (or `q = 0`, which
/// the tokenizer rejects by panic), so the header is validated instead.
/// Real corpora use single-digit q (the paper's experiments use 2–4).
pub const MAX_Q: usize = 64;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the `SMC1` magic.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// An element's bytes are not valid UTF-8.
    BadUtf8,
    /// Unknown tokenization tag.
    BadTokenization(u8),
    /// Declared q-gram length outside `1..=MAX_Q`.
    BadQ(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a SilkMoth corpus (bad magic)"),
            Self::Truncated => write!(f, "corpus truncated"),
            Self::BadUtf8 => write!(f, "corpus contains invalid UTF-8"),
            Self::BadTokenization(t) => write!(f, "unknown tokenization tag {t}"),
            Self::BadQ(q) => write!(f, "q-gram length {q} outside 1..={MAX_Q}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes raw sets of element texts under a tokenization — the
/// byte format [`encode`] wraps a [`Collection`] into, exposed directly
/// so callers that already hold raw texts (the `silkmoth-storage`
/// snapshot writer) can reuse the format without building a throwaway
/// collection first.
pub fn encode_sets<S: AsRef<str>, V: AsRef<[S]>>(sets: &[V], tokenization: Tokenization) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + sets.len() * 32);
    buf.put_slice(MAGIC);
    match tokenization {
        Tokenization::Whitespace => {
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
        Tokenization::QGram { q } => {
            buf.put_u8(1);
            buf.put_u32_le(q as u32);
        }
    }
    buf.put_u64_le(sets.len() as u64);
    for set in sets {
        let set = set.as_ref();
        buf.put_u32_le(set.len() as u32);
        for text in set {
            let text = text.as_ref();
            buf.put_u32_le(text.len() as u32);
            buf.put_slice(text.as_bytes());
        }
    }
    buf.freeze()
}

/// Serializes a collection (its raw texts + tokenization).
///
/// Only **live** sets are written: tombstoned slots are skipped, so an
/// encode → decode round-trip of a mutated collection yields its
/// [`compact`](Collection::compact)ed form (ids renumbered densely).
pub fn encode(collection: &Collection) -> Bytes {
    let sets: Vec<Vec<&str>> = collection
        .live_ids()
        .map(|sid| {
            collection
                .set(sid)
                .elements
                .iter()
                .map(|e| e.text.as_ref())
                .collect()
        })
        .collect();
    encode_sets(&sets, collection.tokenization())
}

/// Deserializes the raw sets and tokenization written by
/// [`encode_sets`] / [`encode`], without building the collection —
/// the counterpart for callers that partition or post-process the raw
/// texts themselves.
pub fn decode_sets(mut buf: &[u8]) -> Result<(Vec<Vec<String>>, Tokenization), CodecError> {
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    buf.advance(4);
    if buf.remaining() < 5 {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    let q = buf.get_u32_le() as usize;
    let tokenization = match tag {
        0 => Tokenization::Whitespace,
        1 if (1..=MAX_Q).contains(&q) => Tokenization::QGram { q },
        1 => return Err(CodecError::BadQ(q)),
        t => return Err(CodecError::BadTokenization(t)),
    };
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let n_sets = buf.get_u64_le() as usize;
    // Capacity hints are clamped by what the buffer could possibly hold
    // (every set needs ≥ 4 bytes), so a corrupted header declaring 2⁶⁴
    // sets cannot trigger a huge up-front allocation — it just runs into
    // `Truncated` on the first missing byte.
    let mut raw: Vec<Vec<String>> = Vec::with_capacity(n_sets.min(buf.remaining() / 4));
    for _ in 0..n_sets {
        if buf.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let n_elems = buf.get_u32_le() as usize;
        let mut set = Vec::with_capacity(n_elems.min(buf.remaining() / 4));
        for _ in 0..n_elems {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            let text = std::str::from_utf8(&buf[..len])
                .map_err(|_| CodecError::BadUtf8)?
                .to_owned();
            buf.advance(len);
            set.push(text);
        }
        raw.push(set);
    }
    Ok((raw, tokenization))
}

/// Deserializes a collection by replaying the deterministic build.
pub fn decode(buf: &[u8]) -> Result<Collection, CodecError> {
    let (raw, tokenization) = decode_sets(buf)?;
    Ok(Collection::build(&raw, tokenization))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::table2;
    use crate::InvertedIndex;

    #[test]
    fn roundtrip_whitespace() {
        let (c, _) = table2();
        let bytes = encode(&c);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.dict().len(), c.dict().len());
        for (a, b) in c.sets().iter().zip(back.sets()) {
            assert_eq!(a, b);
        }
        // Derived structures match too.
        let ia = InvertedIndex::build(&c);
        let ib = InvertedIndex::build(&back);
        assert_eq!(ia.total_postings(), ib.total_postings());
    }

    #[test]
    fn roundtrip_qgram() {
        let raw = vec![vec!["abcdef", "héllo wörld"], vec!["xyz"]];
        let c = Collection::build(&raw, Tokenization::QGram { q: 3 });
        let back = decode(&encode(&c)).unwrap();
        assert_eq!(back.tokenization(), Tokenization::QGram { q: 3 });
        for (a, b) in c.sets().iter().zip(back.sets()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_empty() {
        let c = Collection::build(&Vec::<Vec<&str>>::new(), Tokenization::Whitespace);
        let back = decode(&encode(&c)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE").unwrap_err(), CodecError::BadMagic);
        assert_eq!(decode(b"").unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let (c, _) = table2();
        let bytes = encode(&c);
        for cut in [5, 9, 17, bytes.len() - 1] {
            let got = decode(&bytes[..cut]);
            assert!(got.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn raw_roundtrip_preserves_empty_sets() {
        // `decode` replays the build, but `decode_sets` must hand back
        // the raw texts verbatim — including zero-element sets, which
        // the storage layer uses as tombstoned-slot placeholders.
        let raw: Vec<Vec<String>> = vec![vec!["a b".into(), "c".into()], vec![], vec!["".into()]];
        let bytes = encode_sets(&raw, Tokenization::Whitespace);
        let (back, tok) = decode_sets(&bytes).unwrap();
        assert_eq!(back, raw);
        assert_eq!(tok, Tokenization::Whitespace);
    }

    #[test]
    fn encode_matches_encode_sets_on_live_texts() {
        let (c, _) = table2();
        let raw: Vec<Vec<&str>> = c
            .live_ids()
            .map(|sid| {
                c.set(sid)
                    .elements
                    .iter()
                    .map(|e| e.text.as_ref())
                    .collect()
            })
            .collect();
        assert_eq!(
            encode(&c).as_ref() as &[u8],
            encode_sets(&raw, c.tokenization()).as_ref() as &[u8]
        );
    }

    #[test]
    fn bad_tokenization_tag() {
        let mut b = encode(&table2().0).to_vec();
        b[4] = 9;
        assert_eq!(decode(&b).unwrap_err(), CodecError::BadTokenization(9));
    }
}
