//! Corpus summary statistics (the columns of the paper's Table 3).

use crate::Collection;

/// Aggregate shape of a collection, as reported in Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of sets.
    pub num_sets: usize,
    /// Total number of elements across all sets.
    pub num_elements: usize,
    /// Mean elements per set ("Elems/Set").
    pub avg_elems_per_set: f64,
    /// Mean distinct tokens per element ("Tokens/Elem").
    pub avg_tokens_per_elem: f64,
    /// Distinct tokens in the dictionary.
    pub distinct_tokens: usize,
    /// Total `(set, element)` postings the inverted index will hold.
    pub total_postings: usize,
}

impl std::fmt::Display for CollectionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sets, {:.1} elems/set, {:.1} tokens/elem, {} distinct tokens, {} postings",
            self.num_sets,
            self.avg_elems_per_set,
            self.avg_tokens_per_elem,
            self.distinct_tokens,
            self.total_postings
        )
    }
}

pub(crate) fn compute(c: &Collection) -> CollectionStats {
    // Tombstoned sets are excluded: stats describe the live corpus.
    // (`distinct_tokens` is the dictionary size, which until a compact
    // may retain tokens appearing only in removed sets.)
    let num_sets = c.live_len();
    let mut num_elements = 0usize;
    let mut total_postings = 0usize;
    for sid in c.live_ids() {
        let set = c.set(sid);
        num_elements += set.len();
        for e in set.elements.iter() {
            total_postings += e.tokens.len();
        }
    }
    CollectionStats {
        num_sets,
        num_elements,
        avg_elems_per_set: ratio(num_elements, num_sets),
        avg_tokens_per_elem: ratio(total_postings, num_elements),
        distinct_tokens: c.dict().len(),
        total_postings,
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tokenization;

    #[test]
    fn stats_small_corpus() {
        let raw = vec![vec!["a b", "c"], vec!["a b c d"]];
        let s = Collection::build(&raw, Tokenization::Whitespace).stats();
        assert_eq!(s.num_sets, 2);
        assert_eq!(s.num_elements, 3);
        assert!((s.avg_elems_per_set - 1.5).abs() < 1e-12);
        assert_eq!(s.total_postings, 7);
        assert!((s.avg_tokens_per_elem - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.distinct_tokens, 4);
    }

    #[test]
    fn stats_empty() {
        let s = Collection::build(&Vec::<Vec<&str>>::new(), Tokenization::Whitespace).stats();
        assert_eq!(s.num_sets, 0);
        assert_eq!(s.avg_elems_per_set, 0.0);
    }

    #[test]
    fn display_is_humane() {
        let raw = vec![vec!["a"]];
        let s = Collection::build(&raw, Tokenization::Whitespace).stats();
        let text = s.to_string();
        assert!(text.contains("1 sets"));
    }
}
