//! # silkmoth-storage
//!
//! Durable persistence for SilkMoth engines: **snapshots + a
//! write-ahead log** over the existing
//! [`Update`]`::{Append, Remove, Compact}`
//! mutation API, built entirely on `std` (files, `fsync`, atomic
//! rename) like the rest of the workspace.
//!
//! ## On-disk layout
//!
//! A store directory holds exactly one *generation* at a time (plus,
//! transiently, the generation being written):
//!
//! ```text
//! <data-dir>/
//!   snapshot-<seq>.smc    checkpoint: header + the live sets in the
//!                         silkmoth-collection codec format + CRC-32
//!   wal-<seq>-<n>.log     segment <n> of the updates committed after
//!                         snapshot <seq>: header (with the global
//!                         sequence the segment starts at), then
//!                         length-prefixed, CRC-checked records (one
//!                         encoded Update each)
//!   wal-<seq>.log         the same log in the legacy (version 1)
//!                         single-file form — still recovered, no
//!                         longer written
//! ```
//!
//! Every acknowledged update is **WAL-logged and fsync'd before the
//! in-memory engine mutates** (the commit point) — and the commit
//! point batches: [`Store::commit_batch`] makes any number of
//! concurrently submitted updates durable with one buffered write and
//! one fsync (group commit), then [`Store::apply_committed`] mutates
//! the engine in WAL order. The active segment is sealed at a
//! policy-set size and its successor opened; a [`Store::snapshot`]
//! first creates the next generation's fresh segment 0, then writes
//! the checkpoint to a tempfile, `fsync`s, atomically renames it into
//! place (the instant recovery starts preferring it — its WAL already
//! exists), and only then retires stale files (old snapshots at once;
//! old WAL segments only when no replication cursor still needs them —
//! [`Store::set_retention_hook`]). Crash anywhere ⇒ recovery
//! ([`Store::open`]) loads the newest valid snapshot and replays its
//! segments — decoded and CRC-checked **in parallel**, applied in
//! sequence order, so recovery time is bounded by segment size rather
//! than history; a torn tail (an unacknowledged record interrupted
//! mid-write) is detected by the record CRC and discarded, and is only
//! tolerated in the final, active segment.
//!
//! ## Recovery is differential
//!
//! The recovered engine is **byte-identical** — same ids, same tie
//! order, bit-for-bit equal scores — to an in-memory engine that
//! applied the same committed updates (and hence, by the PR 3
//! equivalence theorem, to a fresh build over the surviving sets).
//! Snapshots record tombstoned slot ids alongside the live sets, so
//! idempotent re-removal and compaction renumbering replay exactly;
//! compaction WAL records carry the id remap the live engine produced,
//! and replay *verifies* it ([`StorageError::ReplayDivergence`]).
//! `tests/` in this crate and `recovery_equivalence.rs` in
//! `silkmoth-server` enforce this differentially, crash included.
//!
//! ## Format versioning
//!
//! Both file headers carry a format version (snapshot: 2, WAL: 2 —
//! version 1 single-file logs are still read). The rule: any change to
//! the byte layout bumps the version, and readers reject versions they
//! don't know ([`StorageError::Corrupt`]) rather than guessing — an
//! old binary never misreads a new store.
//!
//! ## Replication hooks
//!
//! Snapshot version 2 gives every committed update a global, monotonic
//! sequence number ([`StoreStatus::update_seq`], snapshot base +
//! position in the WAL) and records a failover
//! [`epoch`](StoreStatus::epoch). `silkmoth-replica` ships the WAL to
//! followers through three narrow extensions here: a commit-point
//! observer ([`Store::set_commit_hook`]), a raw committed-record
//! reader ([`read_wal_payloads`]), and snapshot parsing from bytes
//! ([`parse_snapshot`]) for follower bootstrap.
//!
//! The store is generic over [`StoreEngine`] — implemented here for the
//! unsharded [`Engine`] and in
//! `silkmoth-server` for its `ShardedEngine`, whose stable global ids
//! snapshot/restore without renumbering.

mod crc32;
mod snapshot;
mod store;
mod wal;

pub use crc32::crc32;
pub use snapshot::{load_snapshot, parse_snapshot, snapshot_bytes, SnapshotMeta};
pub use store::{
    ApplyReceipt, CommitHook, CommittedBatch, MaintenanceReport, RecoveryReport, RetentionHook,
    Store, StoreConfig, StoreEvent, StoreStatus, TelemetryHook, WalDiscard,
};
pub use wal::{
    list_wal_segments, read_wal, read_wal_payloads, wal_file_path, wal_segment_path, WalSegmentInfo,
};

use std::sync::Arc;

use silkmoth_collection::{codec::CodecError, Collection, SetIdx, Tokenization, UpdateError};
use silkmoth_core::{ConfigError, Engine, EngineConfig, Update, UpdateOutcome};

/// Errors from the persistence layer. Everything that can go wrong on
/// disk — corruption, torn files, replay mismatches — is a named
/// variant; the storage layer never panics on untrusted bytes.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing (path included).
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file failed structural validation (magic, version, CRC,
    /// declared lengths).
    Corrupt {
        /// The offending file.
        file: String,
        /// What was wrong.
        detail: String,
    },
    /// The directory has snapshot files but none of them validates.
    NoValidSnapshot {
        /// The store directory.
        dir: String,
    },
    /// The directory holds no snapshot at all — it was never
    /// initialized with [`Store::create`].
    NotInitialized {
        /// The store directory.
        dir: String,
    },
    /// [`Store::create`] refused to clobber an existing store.
    AlreadyInitialized {
        /// The store directory.
        dir: String,
    },
    /// The snapshot payload failed to decode.
    Codec(CodecError),
    /// The engine rejected the recovered state (e.g. the store's
    /// tokenization does not match the serving configuration).
    Config(ConfigError),
    /// An update was rejected by the engine *before* being logged
    /// (e.g. removing a set id that was never assigned). The store is
    /// unchanged.
    Update(UpdateError),
    /// WAL replay produced a different outcome than the live engine
    /// recorded — the store refuses to serve a silently divergent
    /// engine.
    ReplayDivergence {
        /// Zero-based record index in the WAL.
        record: u64,
        /// What diverged.
        detail: String,
    },
    /// The snapshot's id bookkeeping is internally inconsistent.
    BadState(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "{context}: {source}"),
            Self::Corrupt { file, detail } => write!(f, "{file} is corrupt: {detail}"),
            Self::NoValidSnapshot { dir } => {
                write!(f, "no snapshot in {dir} passes validation")
            }
            Self::NotInitialized { dir } => {
                write!(f, "{dir} holds no snapshot (store never created)")
            }
            Self::AlreadyInitialized { dir } => {
                write!(f, "{dir} already holds a store")
            }
            Self::Codec(e) => write!(f, "snapshot payload: {e}"),
            Self::Config(e) => write!(f, "recovered state rejected: {e}"),
            Self::Update(e) => write!(f, "update rejected: {e}"),
            Self::ReplayDivergence { record, detail } => {
                write!(f, "WAL record {record} replayed divergently: {detail}")
            }
            Self::BadState(detail) => write!(f, "inconsistent snapshot state: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Codec(e) => Some(e),
            Self::Config(e) => Some(e),
            Self::Update(e) => Some(e),
            _ => None,
        }
    }
}

impl StorageError {
    pub(crate) fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> Self {
        let context = context.into();
        move |source| Self::Io { context, source }
    }
}

/// A serializable description of an engine's collection state: the live
/// sets with their ids, the ids of tombstoned (not yet compacted)
/// slots, and the next id to assign. What a snapshot stores and what
/// [`StoreEngine::restore`] rebuilds from.
///
/// Dead ids matter for replay fidelity: removal is idempotent and
/// compaction renumbering depends on the liveness pattern, so a
/// restored engine must know *which* slots were tombstoned even though
/// their contents are gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineState {
    /// `(id, element texts)` for every live set, ascending by id.
    pub live: Vec<(SetIdx, Vec<String>)>,
    /// Ids of tombstoned slots, ascending.
    pub dead: Vec<SetIdx>,
    /// The next id the engine would assign to an appended set.
    pub next_id: SetIdx,
    /// The tokenization the engine's collection was built with.
    pub tokenization: Tokenization,
}

impl EngineState {
    /// Structural validation: both id lists strictly ascending,
    /// mutually disjoint, and below `next_id`.
    pub fn validate(&self) -> Result<(), StorageError> {
        let bad = |detail: String| Err(StorageError::BadState(detail));
        if let Some(w) = self.live.windows(2).find(|w| w[0].0 >= w[1].0) {
            return bad(format!("live id {} out of order", w[1].0));
        }
        if let Some(w) = self.dead.windows(2).find(|w| w[0] >= w[1]) {
            return bad(format!("dead id {} out of order", w[1]));
        }
        let mut dead = self.dead.iter().peekable();
        for &(id, _) in &self.live {
            while dead.next_if(|&&d| d < id).is_some() {}
            if dead.peek() == Some(&&id) {
                return bad(format!("id {id} is both live and dead"));
            }
        }
        if let Some(&id) = self
            .live
            .iter()
            .map(|(id, _)| id)
            .chain(&self.dead)
            .find(|&&id| id >= self.next_id)
        {
            return bad(format!("id {id} is not below next id {}", self.next_id));
        }
        Ok(())
    }
}

/// An engine a [`Store`] can persist: it can describe its collection as
/// an [`EngineState`], be rebuilt from one, and pre-validate updates so
/// nothing unreplayable is ever logged.
///
/// The contract the recovery harnesses enforce: for any update sequence
/// `u1…un`, `restore(spec, capture(e))` followed by replaying `uk…un`
/// yields an engine whose search/discover output is byte-identical to
/// `e` after applying `u1…un` directly (where the capture happened
/// after `u1…u(k-1)`).
pub trait StoreEngine: Sized + Send {
    /// Everything needed to rebuild the engine besides the data itself
    /// (configuration, shard count, …) — supplied by the caller at
    /// [`Store::open`], not stored on disk.
    type Spec;

    /// Rebuilds the engine from a recovered state.
    fn restore(spec: &Self::Spec, state: EngineState) -> Result<Self, StorageError>;

    /// Captures the current collection state for a snapshot.
    fn capture(&self) -> EngineState;

    /// Verifies `update` would be accepted, without mutating anything.
    /// [`Store::apply`] calls this *before* writing the WAL record so a
    /// rejected update (unknown id) is never logged — WAL records must
    /// always replay.
    fn check_update(&self, update: &Update) -> Result<(), UpdateError>;

    /// Applies one update (the engine's own `apply`).
    fn apply_update(&mut self, update: Update) -> Result<UpdateOutcome, UpdateError>;

    /// The id remap the next [`Update::Compact`] will produce, `None`
    /// for engines whose ids are stable across compaction. Logged with
    /// the WAL record and verified on replay.
    fn planned_remap(&self) -> Option<Vec<Option<SetIdx>>>;

    /// Live (non-tombstoned) sets.
    fn live_len(&self) -> usize;

    /// Total set slots (live + tombstoned) — with
    /// [`live_len`](Self::live_len), the input to
    /// [`CompactionPolicy`](silkmoth_core::CompactionPolicy).
    fn slot_len(&self) -> usize;
}

/// The unsharded engine persists directly: ids are its collection slot
/// ids (renumbered by compaction exactly as the recorded remap says).
impl StoreEngine for Engine {
    type Spec = EngineConfig;

    fn restore(spec: &Self::Spec, state: EngineState) -> Result<Self, StorageError> {
        state.validate()?;
        if state.live.len() + state.dead.len() != state.next_id as usize {
            return Err(StorageError::BadState(format!(
                "{} live + {} dead sets do not fill {} slots",
                state.live.len(),
                state.dead.len(),
                state.next_id
            )));
        }
        // Rebuild all slots in id order; tombstoned slots (whose
        // contents are gone for good) become empty placeholder sets —
        // they contribute no tokens and no postings, and are re-removed
        // below, so they can never match a query. Search output is
        // unaffected by the missing dead-set tokens: scores depend only
        // on token-equality classes (the PR 3 equivalence argument).
        let mut raw: Vec<Vec<String>> = vec![Vec::new(); state.next_id as usize];
        for (id, set) in state.live {
            raw[id as usize] = set;
        }
        let mut collection = Collection::build(&raw, state.tokenization);
        collection
            .remove_sets(&state.dead)
            .expect("validated dead ids are in range");
        Engine::new(collection, *spec).map_err(StorageError::Config)
    }

    fn capture(&self) -> EngineState {
        let collection = self.collection();
        let mut live = Vec::with_capacity(collection.live_len());
        let mut dead = Vec::new();
        for id in 0..collection.len() as SetIdx {
            if collection.is_live(id) {
                let texts = collection
                    .set(id)
                    .elements
                    .iter()
                    .map(|e| e.text.to_string())
                    .collect();
                live.push((id, texts));
            } else {
                dead.push(id);
            }
        }
        EngineState {
            live,
            dead,
            next_id: collection.len() as SetIdx,
            tokenization: collection.tokenization(),
        }
    }

    fn check_update(&self, update: &Update) -> Result<(), UpdateError> {
        if let Update::Remove(ids) = update {
            let slots = self.collection().len() as SetIdx;
            if let Some(&bad) = ids.iter().find(|&&id| id >= slots) {
                return Err(UpdateError::NoSuchSet(bad));
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, update: Update) -> Result<UpdateOutcome, UpdateError> {
        self.apply(update)
    }

    fn planned_remap(&self) -> Option<Vec<Option<SetIdx>>> {
        let collection = self.collection();
        let mut next = 0 as SetIdx;
        Some(
            (0..collection.len() as SetIdx)
                .map(|id| {
                    collection.is_live(id).then(|| {
                        let new = next;
                        next += 1;
                        new
                    })
                })
                .collect(),
        )
    }

    fn live_len(&self) -> usize {
        self.collection().live_len()
    }

    fn slot_len(&self) -> usize {
        self.collection().len()
    }
}

#[allow(dead_code)]
fn _engine_store_is_send(s: Store<Engine>) -> Arc<dyn Send> {
    Arc::new(s)
}
