//! The write-ahead log: one file per snapshot generation, holding the
//! updates committed since that snapshot.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    "SMWL"                          4 bytes
//! version  u32 (currently 1)               4 bytes
//! seq      u64 — the base snapshot's seq   8 bytes
//! records…
//!
//! record := payload_len u32 | crc32(payload) u32 | payload
//! payload: one encoded Update (silkmoth_core::wire), with the
//!          compaction remap piggybacked for Compact records
//! ```
//!
//! A record is **committed** once its bytes are on disk (the store
//! `fsync`s before acknowledging), so recovery treats a structurally
//! invalid *suffix* — short prefix, length past end-of-file, CRC
//! mismatch — as a torn, unacknowledged tail: replay stops there, the
//! discard is reported, and the file is truncated back to the valid
//! prefix before new records are appended. The writer maintains the
//! same invariant on its side: a failed append (partial write, fsync
//! error) rolls the file back to the last committed offset, so torn
//! bytes can never sit *between* committed records.
//!
//! Damage that cannot be a torn tail is a hard error, never a silent
//! discard: an unknown format version, a corrupt magic/seq on a file
//! that **holds records** (the header is written and fsync'd before
//! any record is ever acknowledged, so no crash produces that shape),
//! or a CRC-valid record that fails to decode. Only a header-only file
//! with a bad header — the torn-creation window — is discarded whole.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use silkmoth_core::wire::{decode_update, DecodedUpdate};

use crate::crc32::crc32;
use crate::store::WalDiscard;
use crate::StorageError;

pub(crate) const WAL_MAGIC: &[u8; 4] = b"SMWL";
pub(crate) const WAL_VERSION: u32 = 1;
pub(crate) const WAL_HEADER_LEN: u64 = 16;

/// How long one committed [`WalWriter::append`] spent in the buffered
/// write vs. the fsync (`sync` is zero when fsync-less).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AppendTiming {
    pub write: Duration,
    pub sync: Duration,
}

/// The WAL file of generation `seq` inside a store directory — the
/// path contract replication readers share with the store itself.
pub fn wal_file_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.log"))
}

/// What reading a WAL produced: the committed records, how far the
/// valid prefix reaches, and why reading stopped early (if it did).
#[derive(Debug)]
pub struct WalReplay {
    /// Every committed record, in append order.
    pub entries: Vec<DecodedUpdate>,
    /// Byte length of the valid prefix (header + committed records).
    pub valid_len: u64,
    /// The discarded torn tail, when the file did not end cleanly.
    pub discarded: Option<WalDiscard>,
}

/// Reads and validates a WAL file against its expected base snapshot
/// `seq`. See the module docs for the tail-handling policy: a short or
/// corrupt header on a file with **no** records is the torn-creation
/// crash window and is discarded whole (empty replay, `valid_len ==
/// 0`); a corrupt header on a file that holds record bytes is a hard
/// [`StorageError::Corrupt`], because discarding it would silently
/// drop committed records.
pub fn read_wal(path: &Path, seq: u64) -> Result<WalReplay, StorageError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StorageError::io(format!("reading {}", path.display())))?;

    let has_records = bytes.len() > WAL_HEADER_LEN as usize;
    let discard_all = |reason: String| WalReplay {
        entries: Vec::new(),
        valid_len: 0,
        discarded: Some(WalDiscard {
            offset: 0,
            bytes: bytes.len() as u64,
            reason,
        }),
    };
    let corrupt_header = |detail: String| StorageError::Corrupt {
        file: path.display().to_string(),
        detail: format!("{detail} on a WAL holding records"),
    };
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Ok(discard_all("short header".into()));
    }
    if &bytes[..4] != WAL_MAGIC {
        if has_records {
            return Err(corrupt_header("bad magic".into()));
        }
        return Ok(discard_all("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        // Unknown versions are a hard error, not a discard: silently
        // dropping a future format's committed records would lose data.
        return Err(StorageError::Corrupt {
            file: path.display().to_string(),
            detail: format!("unknown WAL format version {version}"),
        });
    }
    let file_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if file_seq != seq {
        let detail = format!("header seq {file_seq} does not match snapshot seq {seq}");
        if has_records {
            return Err(corrupt_header(detail));
        }
        return Ok(discard_all(detail));
    }

    let mut entries = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut discarded = None;
    while pos < bytes.len() {
        let tail = |reason: String| WalDiscard {
            offset: pos as u64,
            bytes: (bytes.len() - pos) as u64,
            reason,
        };
        if bytes.len() - pos < 8 {
            discarded = Some(tail("torn record frame".into()));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > bytes.len() - pos - 8 {
            discarded = Some(tail(format!("record length {len} past end of file")));
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != want_crc {
            discarded = Some(tail("record CRC mismatch".into()));
            break;
        }
        let entry = decode_update(payload).map_err(|e| StorageError::Corrupt {
            file: path.display().to_string(),
            detail: format!("CRC-valid record {} undecodable: {e}", entries.len()),
        })?;
        entries.push(entry);
        pos += 8 + len;
    }
    Ok(WalReplay {
        entries,
        valid_len: pos as u64,
        discarded,
    })
}

/// Reads raw committed record payloads from a WAL for replication
/// shipping: skips the first `skip` records, then returns up to
/// `limit` payloads (each one encoded `Update`, exactly the bytes the
/// store framed), validating the header and every record CRC on the
/// way.
///
/// The reader stops silently at a torn tail — the caller bounds
/// `limit` by the store's *committed* record count, so a torn suffix
/// is always beyond everything requested; hitting it early (fewer than
/// `limit` intact records after `skip`) therefore means real
/// corruption and is reported by the caller, not here. Reading races
/// appends safely: records are appended with a single `write_all`
/// before the store's committed counter advances, and committed bytes
/// are never truncated, so every record the caller may request is
/// fully present in the file.
pub fn read_wal_payloads(
    path: &Path,
    seq: u64,
    skip: u64,
    limit: usize,
) -> Result<Vec<Vec<u8>>, StorageError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StorageError::io(format!("reading {}", path.display())))?;
    let corrupt = |detail: String| StorageError::Corrupt {
        file: path.display().to_string(),
        detail,
    };
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..4] != WAL_MAGIC {
        return Err(corrupt("bad or short WAL header".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(corrupt(format!("unknown WAL format version {version}")));
    }
    let file_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if file_seq != seq {
        return Err(corrupt(format!(
            "header seq {file_seq} does not match generation {seq}"
        )));
    }
    let mut out = Vec::new();
    let mut index = 0u64;
    let mut pos = WAL_HEADER_LEN as usize;
    while out.len() < limit && pos < bytes.len() {
        if bytes.len() - pos < 8 {
            break; // torn frame prefix — beyond the committed range
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > bytes.len() - pos - 8 {
            break; // torn record body
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != want_crc {
            break; // torn record payload
        }
        if index >= skip {
            out.push(payload.to_vec());
        }
        index += 1;
        pos += 8 + len;
    }
    Ok(out)
}

/// An open WAL being appended to. The file is held in **append mode**,
/// so every write — including the first one after a rollback
/// truncation — lands exactly at end-of-file.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    /// Bytes of the file known to hold only the header plus complete,
    /// successfully appended records — the rollback point for a failed
    /// append.
    committed_len: u64,
    /// Set when a failed append could not be rolled back: the file may
    /// hold torn bytes that later records would land *behind*, so the
    /// writer refuses everything until the store is reopened (recovery
    /// truncates the tail).
    poisoned: Option<String>,
}

impl WalWriter {
    /// Creates a fresh WAL containing only the header, synced to disk.
    pub(crate) fn create(path: &Path, seq: u64) -> Result<Self, StorageError> {
        let err = || StorageError::io(format!("creating {}", path.display()));
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
                .map_err(err())?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            header.extend_from_slice(WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&seq.to_le_bytes());
            file.write_all(&header).map_err(err())?;
            file.sync_all().map_err(err())?;
        }
        let file = OpenOptions::new().append(true).open(path).map_err(err())?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            committed_len: WAL_HEADER_LEN,
            poisoned: None,
        })
    }

    /// Reopens an existing WAL for appending, first truncating it to
    /// `valid_len` (or recreating the header when the whole file was
    /// discarded) so a torn tail can never precede new records.
    pub(crate) fn reopen(path: &Path, seq: u64, valid_len: u64) -> Result<Self, StorageError> {
        if valid_len < WAL_HEADER_LEN {
            return Self::create(path, seq);
        }
        let err = || StorageError::io(format!("reopening {}", path.display()));
        let file = OpenOptions::new().append(true).open(path).map_err(err())?;
        file.set_len(valid_len).map_err(err())?;
        file.sync_all().map_err(err())?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            committed_len: valid_len,
            poisoned: None,
        })
    }

    /// Appends one record (frame + payload in a single write) and, when
    /// `sync`, fsyncs it — the commit point the store acknowledges. On
    /// failure the file is rolled back to the last committed offset, so
    /// a partially written (or written-but-unsynced, hence
    /// unacknowledged) record can never precede a later acknowledged
    /// one; if even the rollback fails, the writer poisons itself.
    ///
    /// Returns how long the buffered write and the fsync each took
    /// (the fsync duration is zero when `sync` is off) for the store's
    /// telemetry hook.
    pub(crate) fn append(
        &mut self,
        payload: &[u8],
        sync: bool,
    ) -> Result<AppendTiming, StorageError> {
        if let Some(why) = &self.poisoned {
            return Err(StorageError::Io {
                context: format!("WAL {} is poisoned", self.path.display()),
                source: std::io::Error::other(why.clone()),
            });
        }
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        let context = format!("appending to {}", self.path.display());
        let started = Instant::now();
        let mut written_at = started;
        let result = self.file.write_all(&record).and_then(|()| {
            written_at = Instant::now();
            if sync {
                self.file.sync_data()
            } else {
                Ok(())
            }
        });
        match result {
            Ok(()) => {
                self.committed_len += record.len() as u64;
                Ok(AppendTiming {
                    write: written_at - started,
                    sync: written_at.elapsed(),
                })
            }
            Err(e) => {
                if let Err(rollback) = self.file.set_len(self.committed_len) {
                    self.poison(format!(
                        "append failed ({e}) and rollback truncation failed ({rollback})"
                    ));
                }
                Err(StorageError::Io { context, source: e })
            }
        }
    }

    /// Marks the writer unusable; every later [`append`](Self::append)
    /// fails until the store is reopened.
    pub(crate) fn poison(&mut self, why: String) {
        self.poisoned = Some(why);
    }
}
