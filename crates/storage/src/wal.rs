//! The write-ahead log: bounded **segments** per snapshot generation,
//! holding the updates committed since that snapshot.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    "SMWL"                          4 bytes
//! version  u32 (currently 2)               4 bytes
//! seq      u64 — the base snapshot's seq   8 bytes
//! segment  u32 — index within the          4 bytes
//!                generation, from 0
//! base     u64 — global update sequence    8 bytes
//!                before this segment's
//!                first record
//! records…
//!
//! record := payload_len u32 | crc32(payload) u32 | payload
//! payload: one encoded Update (silkmoth_core::wire), with the
//!          compaction remap piggybacked for Compact records
//! ```
//!
//! A generation's log is the concatenation of its segments
//! `wal-<seq>-0.log, wal-<seq>-1.log, …` in index order; the store
//! seals the active segment at a policy-set byte threshold and opens
//! the next. Record `i` (zero-based) of a segment has global sequence
//! `base + i + 1`, so each segment is independently addressable — the
//! basis for parallel recovery and for retaining sealed segments past
//! snapshot rotation while a replication cursor still needs them.
//!
//! Version 1 (the pre-segment format, one `wal-<seq>.log` per
//! generation with a 16-byte header and no `segment`/`base` fields) is
//! still read for recovery and replication; writers only produce
//! version 2. Unknown versions are rejected by name, never guessed at.
//!
//! A record is **committed** once its bytes are on disk (the store
//! `fsync`s before acknowledging), so recovery treats a structurally
//! invalid *suffix* — short prefix, length past end-of-file, CRC
//! mismatch — as a torn, unacknowledged tail: replay stops there, the
//! discard is reported, and the file is truncated back to the valid
//! prefix before new records are appended. The writer maintains the
//! same invariant on its side: a failed append (partial write, fsync
//! error) rolls the file back to the last committed offset, so torn
//! bytes can never sit *between* committed records. Only the **final**
//! segment of a generation can legitimately end torn — new segments
//! are created only after a fully committed append — so the store
//! treats a torn tail in a sealed (non-final) segment as hard
//! corruption.
//!
//! Damage that cannot be a torn tail is a hard error, never a silent
//! discard: an unknown format version, a corrupt magic/seq on a file
//! that **holds records** (the header is written and fsync'd before
//! any record is ever acknowledged, so no crash produces that shape),
//! or a CRC-valid record that fails to decode. Only a header-only file
//! with a bad header — the torn-creation window — is discarded whole.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use silkmoth_core::wire::{decode_update, DecodedUpdate};

use crate::crc32::crc32;
use crate::store::WalDiscard;
use crate::StorageError;

pub(crate) const WAL_MAGIC: &[u8; 4] = b"SMWL";
pub(crate) const WAL_VERSION: u32 = 2;
/// Header length of the legacy (version 1) single-file format.
pub(crate) const WAL_HEADER_V1_LEN: u64 = 16;
/// Header length of the segmented (version 2) format.
pub(crate) const WAL_HEADER_LEN: u64 = 28;

/// How long one committed [`WalWriter::append_many`] spent in the
/// buffered write vs. the fsync (`sync` is zero when fsync-less).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AppendTiming {
    pub write: Duration,
    pub sync: Duration,
}

/// The legacy (version 1) WAL file of generation `seq` inside a store
/// directory — kept for reading stores written before segmentation.
pub fn wal_file_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.log"))
}

/// Segment `segment` of generation `seq`'s WAL — the path contract
/// replication readers share with the store itself.
pub fn wal_segment_path(dir: &Path, seq: u64, segment: u32) -> PathBuf {
    dir.join(format!("wal-{seq}-{segment}.log"))
}

/// One WAL segment file found in a store directory: its name-derived
/// identity plus the base sequence read from its header (`None` when
/// the header is unreadable or disagrees with the file name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSegmentInfo {
    /// The segment file.
    pub path: PathBuf,
    /// The snapshot generation the segment belongs to.
    pub generation: u64,
    /// Index within the generation, from 0.
    pub segment: u32,
    /// Global update sequence before the segment's first record, from
    /// the header; record `i` has sequence `base_seq + i + 1`.
    pub base_seq: Option<u64>,
}

/// Every version-2 WAL segment present in `dir`, sorted by
/// `(generation, segment)` — which is also ascending base-sequence
/// order for intact headers. Legacy version-1 files are not listed
/// (they carry no base sequence and are never retained past rotation).
pub fn list_wal_segments(dir: &Path) -> Result<Vec<WalSegmentInfo>, StorageError> {
    let mut segments = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(StorageError::io(format!("listing {}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(StorageError::io(format!("listing {}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(body) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        else {
            continue;
        };
        let Some((gen, seg)) = body.split_once('-') else {
            continue; // legacy single-file name
        };
        let (Ok(generation), Ok(segment)) = (gen.parse::<u64>(), seg.parse::<u32>()) else {
            continue;
        };
        let path = entry.path();
        let base_seq = read_segment_base(&path, generation, segment);
        segments.push(WalSegmentInfo {
            path,
            generation,
            segment,
            base_seq,
        });
    }
    segments.sort_unstable_by_key(|s| (s.generation, s.segment));
    Ok(segments)
}

/// Reads just the header of a segment file and returns its base
/// sequence when the header is intact and matches the name-derived
/// generation and index.
fn read_segment_base(path: &Path, generation: u64, segment: u32) -> Option<u64> {
    let mut header = [0u8; WAL_HEADER_LEN as usize];
    let mut f = File::open(path).ok()?;
    f.read_exact(&mut header).ok()?;
    let parsed = parse_header(&header).ok()?;
    (parsed.generation == generation && parsed.segment == segment)
        .then_some(parsed.base_seq)
        .flatten()
}

/// A structurally valid WAL header, either version.
struct ParsedHeader {
    generation: u64,
    segment: u32,
    /// `None` for version 1 (the legacy format has no base field).
    base_seq: Option<u64>,
    header_len: u64,
}

enum HeaderIssue {
    /// Too short to hold its version's header — the torn-creation
    /// window when the file holds nothing else.
    Short,
    /// Wrong magic bytes.
    BadMagic,
    /// A version this build does not know — always a hard error.
    UnknownVersion(u32),
}

fn parse_header(bytes: &[u8]) -> Result<ParsedHeader, HeaderIssue> {
    if bytes.len() < WAL_HEADER_V1_LEN as usize {
        return Err(HeaderIssue::Short);
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(HeaderIssue::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let generation = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    match version {
        1 => Ok(ParsedHeader {
            generation,
            segment: 0,
            base_seq: None,
            header_len: WAL_HEADER_V1_LEN,
        }),
        2 => {
            if bytes.len() < WAL_HEADER_LEN as usize {
                return Err(HeaderIssue::Short);
            }
            Ok(ParsedHeader {
                generation,
                segment: u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")),
                base_seq: Some(u64::from_le_bytes(
                    bytes[20..28].try_into().expect("8 bytes"),
                )),
                header_len: WAL_HEADER_LEN,
            })
        }
        v => Err(HeaderIssue::UnknownVersion(v)),
    }
}

fn encode_header(seq: u64, segment: u32, base_seq: u64) -> Vec<u8> {
    let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
    header.extend_from_slice(WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    header.extend_from_slice(&seq.to_le_bytes());
    header.extend_from_slice(&segment.to_le_bytes());
    header.extend_from_slice(&base_seq.to_le_bytes());
    header
}

/// What reading a WAL file produced: the committed records, how far
/// the valid prefix reaches, and why reading stopped early (if it
/// did).
#[derive(Debug)]
pub struct WalReplay {
    /// Every committed record, in append order.
    pub entries: Vec<DecodedUpdate>,
    /// Byte length of the valid prefix (header + committed records).
    pub valid_len: u64,
    /// The discarded torn tail, when the file did not end cleanly.
    pub discarded: Option<WalDiscard>,
    /// The header's base sequence (`None` for a legacy version-1 file).
    pub base_seq: Option<u64>,
    /// The header's segment index (`None` for a legacy version-1 file).
    pub segment: Option<u32>,
}

/// Reads and validates one WAL file (either format version) against
/// its expected generation `seq`. See the module docs for the
/// tail-handling policy: a short or corrupt header on a file with
/// **no** records is the torn-creation crash window and is discarded
/// whole (empty replay, `valid_len == 0`); a corrupt header on a file
/// that holds record bytes is a hard [`StorageError::Corrupt`],
/// because discarding it would silently drop committed records.
pub fn read_wal(path: &Path, seq: u64) -> Result<WalReplay, StorageError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StorageError::io(format!("reading {}", path.display())))?;

    let discard_all = |reason: String| WalReplay {
        entries: Vec::new(),
        valid_len: 0,
        discarded: Some(WalDiscard {
            offset: 0,
            bytes: bytes.len() as u64,
            reason,
        }),
        base_seq: None,
        segment: None,
    };
    let corrupt_header = |detail: String| StorageError::Corrupt {
        file: path.display().to_string(),
        detail: format!("{detail} on a WAL holding records"),
    };
    let header = match parse_header(&bytes) {
        Ok(header) => header,
        // A file too short for its header cannot hold records: the
        // torn-creation window, discarded whole. (A version-2 header
        // torn between 16 and 28 bytes lands here too — records are
        // only ever appended after the full header is fsync'd.)
        Err(HeaderIssue::Short) => return Ok(discard_all("short header".into())),
        Err(HeaderIssue::BadMagic) => {
            // Anything longer than the larger header must hold records
            // (or the tail of some other format's records) — never a
            // torn creation of either version.
            if bytes.len() > WAL_HEADER_LEN as usize {
                return Err(corrupt_header("bad magic".into()));
            }
            return Ok(discard_all("bad magic".into()));
        }
        Err(HeaderIssue::UnknownVersion(v)) => {
            // Unknown versions are a hard error, not a discard: silently
            // dropping a future format's committed records would lose
            // data.
            return Err(StorageError::Corrupt {
                file: path.display().to_string(),
                detail: format!("unknown WAL format version {v}"),
            });
        }
    };
    let has_records = bytes.len() > header.header_len as usize;
    if header.generation != seq {
        let detail = format!(
            "header seq {} does not match snapshot seq {seq}",
            header.generation
        );
        if has_records {
            return Err(corrupt_header(detail));
        }
        return Ok(discard_all(detail));
    }

    let mut entries = Vec::new();
    let mut pos = header.header_len as usize;
    let mut discarded = None;
    while pos < bytes.len() {
        let tail = |reason: String| WalDiscard {
            offset: pos as u64,
            bytes: (bytes.len() - pos) as u64,
            reason,
        };
        if bytes.len() - pos < 8 {
            discarded = Some(tail("torn record frame".into()));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > bytes.len() - pos - 8 {
            discarded = Some(tail(format!("record length {len} past end of file")));
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != want_crc {
            discarded = Some(tail("record CRC mismatch".into()));
            break;
        }
        let entry = decode_update(payload).map_err(|e| StorageError::Corrupt {
            file: path.display().to_string(),
            detail: format!("CRC-valid record {} undecodable: {e}", entries.len()),
        })?;
        entries.push(entry);
        pos += 8 + len;
    }
    Ok(WalReplay {
        entries,
        valid_len: pos as u64,
        discarded,
        base_seq: header.base_seq,
        segment: (header.header_len == WAL_HEADER_LEN).then_some(header.segment),
    })
}

/// Reads raw committed record payloads from one WAL file (either
/// format version) for replication shipping: skips the first `skip`
/// records, then returns up to `limit` payloads (each one encoded
/// `Update`, exactly the bytes the store framed), validating the
/// header and every record CRC on the way.
///
/// The reader stops silently at a torn tail — the caller bounds
/// `limit` by the store's *committed* record count, so a torn suffix
/// is always beyond everything requested; hitting it early (fewer than
/// `limit` intact records after `skip`) therefore means real
/// corruption and is reported by the caller, not here. Reading races
/// appends safely: records are appended with a single `write_all`
/// before the store's committed counter advances, and committed bytes
/// are never truncated, so every record the caller may request is
/// fully present in the file.
pub fn read_wal_payloads(
    path: &Path,
    seq: u64,
    skip: u64,
    limit: usize,
) -> Result<Vec<Vec<u8>>, StorageError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StorageError::io(format!("reading {}", path.display())))?;
    let corrupt = |detail: String| StorageError::Corrupt {
        file: path.display().to_string(),
        detail,
    };
    let header = match parse_header(&bytes) {
        Ok(header) => header,
        Err(HeaderIssue::Short | HeaderIssue::BadMagic) => {
            return Err(corrupt("bad or short WAL header".into()))
        }
        Err(HeaderIssue::UnknownVersion(v)) => {
            return Err(corrupt(format!("unknown WAL format version {v}")))
        }
    };
    if header.generation != seq {
        return Err(corrupt(format!(
            "header seq {} does not match generation {seq}",
            header.generation
        )));
    }
    let mut out = Vec::new();
    let mut index = 0u64;
    let mut pos = header.header_len as usize;
    while out.len() < limit && pos < bytes.len() {
        if bytes.len() - pos < 8 {
            break; // torn frame prefix — beyond the committed range
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > bytes.len() - pos - 8 {
            break; // torn record body
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != want_crc {
            break; // torn record payload
        }
        if index >= skip {
            out.push(payload.to_vec());
        }
        index += 1;
        pos += 8 + len;
    }
    Ok(out)
}

/// An open WAL segment being appended to. The file is held in **append
/// mode**, so every write — including the first one after a rollback
/// truncation — lands exactly at end-of-file.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    /// Bytes of the file known to hold only the header plus complete,
    /// successfully appended records — the rollback point for a failed
    /// append.
    committed_len: u64,
    /// Set when a failed append could not be rolled back: the file may
    /// hold torn bytes that later records would land *behind*, so the
    /// writer refuses everything until the store is reopened (recovery
    /// truncates the tail).
    poisoned: Option<String>,
}

impl WalWriter {
    /// Creates a fresh version-2 WAL segment containing only the
    /// header, synced to disk.
    pub(crate) fn create(
        path: &Path,
        seq: u64,
        segment: u32,
        base_seq: u64,
    ) -> Result<Self, StorageError> {
        let err = || StorageError::io(format!("creating {}", path.display()));
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
                .map_err(err())?;
            file.write_all(&encode_header(seq, segment, base_seq))
                .map_err(err())?;
            file.sync_all().map_err(err())?;
        }
        let file = OpenOptions::new().append(true).open(path).map_err(err())?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            committed_len: WAL_HEADER_LEN,
            poisoned: None,
        })
    }

    /// Reopens an existing version-2 segment for appending, first
    /// truncating it to `valid_len` (or recreating the header when the
    /// whole file was discarded) so a torn tail can never precede new
    /// records.
    pub(crate) fn reopen(
        path: &Path,
        seq: u64,
        segment: u32,
        base_seq: u64,
        valid_len: u64,
    ) -> Result<Self, StorageError> {
        if valid_len < WAL_HEADER_LEN {
            return Self::create(path, seq, segment, base_seq);
        }
        let err = || StorageError::io(format!("reopening {}", path.display()));
        let file = OpenOptions::new().append(true).open(path).map_err(err())?;
        file.set_len(valid_len).map_err(err())?;
        file.sync_all().map_err(err())?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            committed_len: valid_len,
            poisoned: None,
        })
    }

    /// Bytes known committed (header + records) — what the store's
    /// seal policy compares against its segment-size threshold.
    pub(crate) fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Appends a batch of records (every frame + payload buffered into
    /// a **single** write) and, when `sync`, fsyncs once — the
    /// amortized group-commit point the store acknowledges. All or
    /// nothing: on failure the file is rolled back to the last
    /// committed offset, so a partially written (or
    /// written-but-unsynced, hence unacknowledged) batch can never
    /// precede a later acknowledged one; if even the rollback fails,
    /// the writer poisons itself.
    ///
    /// Returns how long the buffered write and the fsync each took
    /// (the fsync duration is **exactly zero** when `sync` is off) for
    /// the store's telemetry hook.
    pub(crate) fn append_many(
        &mut self,
        payloads: &[Vec<u8>],
        sync: bool,
    ) -> Result<AppendTiming, StorageError> {
        if let Some(why) = &self.poisoned {
            return Err(StorageError::Io {
                context: format!("WAL {} is poisoned", self.path.display()),
                source: std::io::Error::other(why.clone()),
            });
        }
        let total: usize = payloads.iter().map(|p| 8 + p.len()).sum();
        let mut batch = Vec::with_capacity(total);
        for payload in payloads {
            batch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            batch.extend_from_slice(&crc32(payload).to_le_bytes());
            batch.extend_from_slice(payload);
        }
        let context = format!("appending to {}", self.path.display());
        let started = Instant::now();
        let mut written_at = started;
        let result = self.file.write_all(&batch).and_then(|()| {
            written_at = Instant::now();
            if sync {
                self.file.sync_data()
            } else {
                Ok(())
            }
        });
        match result {
            Ok(()) => {
                self.committed_len += batch.len() as u64;
                Ok(AppendTiming {
                    write: written_at - started,
                    sync: if sync {
                        written_at.elapsed()
                    } else {
                        // The contract the fsync histogram depends on:
                        // fsync-less appends report exactly zero, not
                        // the (tiny, nonzero) time since the write.
                        Duration::ZERO
                    },
                })
            }
            Err(e) => {
                if let Err(rollback) = self.file.set_len(self.committed_len) {
                    self.poison(format!(
                        "append failed ({e}) and rollback truncation failed ({rollback})"
                    ));
                }
                Err(StorageError::Io { context, source: e })
            }
        }
    }

    /// Marks the writer unusable; every later
    /// [`append_many`](Self::append_many) fails until the store is
    /// reopened.
    pub(crate) fn poison(&mut self, why: String) {
        self.poisoned = Some(why);
    }
}
