//! The durable store: an engine plus its snapshot/WAL generation on
//! disk, with crash recovery and policy-driven auto-compaction and
//! auto-snapshots. See the crate docs for the layout and guarantees.

use std::fmt;
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use silkmoth_core::wire::encode_update;
use silkmoth_core::{CompactionPolicy, Update, UpdateOutcome};

use crate::snapshot::{load_snapshot, snapshot_bytes, SnapshotMeta};
use crate::wal::{read_wal, wal_file_path, WalWriter};
use crate::{StorageError, StoreEngine};

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Fsync every WAL record before acknowledging it (the durability
    /// guarantee). Disable only for tests or bulk loads that accept
    /// losing the tail on a crash.
    pub sync: bool,
    /// When to auto-compact (tombstone ratio) and auto-snapshot (WAL
    /// length). [`CompactionPolicy::DISABLED`] turns both off.
    pub policy: CompactionPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            sync: true,
            policy: CompactionPolicy::DISABLED,
        }
    }
}

/// A torn or corrupt WAL suffix discarded during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDiscard {
    /// Byte offset where the valid prefix ends.
    pub offset: u64,
    /// How many bytes were discarded.
    pub bytes: u64,
    /// Why reading stopped.
    pub reason: String,
}

/// What [`Store::open`] recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation that was loaded.
    pub snapshot_seq: u64,
    /// Committed WAL records replayed on top of the snapshot.
    pub wal_replayed: u64,
    /// Discarded torn/corrupt WAL suffix, if any.
    pub wal_discarded: Option<WalDiscard>,
    /// Newer snapshot generations that failed validation and were
    /// skipped (0 in healthy operation).
    pub snapshots_skipped: u64,
}

/// What one [`Store::apply`] did beyond the update itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReceipt {
    /// The engine's outcome for the caller's update.
    pub outcome: UpdateOutcome,
    /// The policy triggered an automatic [`Update::Compact`] afterwards.
    pub auto_compacted: bool,
    /// The policy triggered an automatic snapshot; the new generation.
    pub auto_snapshot: Option<u64>,
}

/// An observer of the store's commit point, installed with
/// [`Store::set_commit_hook`]: called with the new total committed
/// update count immediately after every durable WAL append (caller
/// updates and policy-driven auto-actions alike). Replication uses it
/// to wake streamers without polling. The hook runs on the committing
/// thread while the store is borrowed, so it must not call back into
/// the store or block.
#[derive(Clone)]
pub struct CommitHook(Arc<dyn Fn(u64) + Send + Sync>);

impl CommitHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(u64) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }
}

impl fmt::Debug for CommitHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CommitHook(..)")
    }
}

/// One observable store event, delivered to the [`TelemetryHook`].
///
/// The variants carry everything a metrics layer needs so the store
/// itself depends on no telemetry crate — the hook owner translates
/// events into whatever counters and histograms it keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreEvent {
    /// One WAL record was durably appended: how long the buffered
    /// write and the fsync each took (`sync` is zero when the store
    /// runs fsync-less).
    WalAppend { write: Duration, sync: Duration },
    /// A snapshot generation was written (explicit or automatic).
    Snapshot,
    /// The policy triggered an automatic compaction.
    AutoCompaction,
    /// The policy triggered an automatic snapshot.
    AutoSnapshot,
}

/// An observer of store I/O for metrics, installed with
/// [`Store::set_telemetry_hook`] — the telemetry twin of
/// [`CommitHook`]. Called on the committing thread while the store is
/// borrowed, so it must not call back into the store or block; it is
/// never on the durability path (events fire only after the store has
/// already committed or completed the action they describe).
#[derive(Clone)]
pub struct TelemetryHook(Arc<dyn Fn(StoreEvent) + Send + Sync>);

impl TelemetryHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(StoreEvent) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// Invokes the callback with one event.
    pub fn fire(&self, event: StoreEvent) {
        (self.0)(event);
    }
}

impl fmt::Debug for TelemetryHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TelemetryHook(..)")
    }
}

/// Live observability counters for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStatus {
    /// Current snapshot generation.
    pub snapshot_seq: u64,
    /// Records in the current WAL.
    pub wal_records: u64,
    /// Total committed updates across all generations — the global,
    /// monotonic sequence number of the most recent WAL record (0 when
    /// none were ever committed). Record `i` (zero-based) of the
    /// current WAL has sequence `update_seq - wal_records + i + 1`.
    pub update_seq: u64,
    /// Failover epoch this store's history belongs to (see
    /// [`Store::bump_epoch`]).
    pub epoch: u64,
    /// Whether the most recent WAL fsync (or fsync-less append)
    /// succeeded — `false` means the last update was **not** durably
    /// acknowledged.
    pub last_fsync_ok: bool,
    /// Automatic compactions since open.
    pub auto_compactions: u64,
    /// Automatic snapshots since open.
    pub auto_snapshots: u64,
}

/// A durable engine: every acknowledged update is WAL-logged (fsync'd)
/// *before* the in-memory engine mutates, and
/// [`snapshot`](Store::snapshot) checkpoints + rotates generations
/// atomically. Generic over [`StoreEngine`].
#[derive(Debug)]
pub struct Store<E: StoreEngine> {
    dir: PathBuf,
    cfg: StoreConfig,
    engine: E,
    wal: WalWriter,
    seq: u64,
    wal_records: u64,
    update_seq: u64,
    epoch: u64,
    last_fsync_ok: bool,
    auto_compactions: u64,
    auto_snapshots: u64,
    commit_hook: Option<CommitHook>,
    telemetry_hook: Option<TelemetryHook>,
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq}.smc"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    wal_file_path(dir, seq)
}

/// All snapshot generation numbers present in `dir`, descending.
fn list_generations(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let mut seqs = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(StorageError::io(format!("listing {}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(StorageError::io(format!("listing {}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".smc"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// Fsyncs the directory itself so renames and creations inside it are
/// durable (no-op on platforms where directories cannot be opened).
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    #[cfg(unix)]
    {
        let f = File::open(dir).map_err(StorageError::io(format!("opening {}", dir.display())))?;
        f.sync_all()
            .map_err(StorageError::io(format!("fsyncing {}", dir.display())))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

impl<E: StoreEngine> Store<E> {
    /// Initializes a fresh store in `dir` (created if missing) from an
    /// already-built engine: writes generation 0 (snapshot + empty WAL)
    /// and returns the running store. Refuses to clobber a directory
    /// that already holds a store.
    pub fn create(
        dir: impl Into<PathBuf>,
        engine: E,
        cfg: StoreConfig,
    ) -> Result<Self, StorageError> {
        Self::create_continuing(dir, engine, cfg, 0, 0)
    }

    /// Like [`create`](Self::create), but the update-sequence counter
    /// and failover epoch continue from an existing replicated history
    /// instead of zero — what a follower does when it installs a
    /// primary's bootstrap snapshot. The engine passed in must already
    /// reflect the first `update_seq` committed updates of epoch
    /// `epoch`.
    pub fn create_continuing(
        dir: impl Into<PathBuf>,
        engine: E,
        cfg: StoreConfig,
        update_seq: u64,
        epoch: u64,
    ) -> Result<Self, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(StorageError::io(format!("creating {}", dir.display())))?;
        if !list_generations(&dir)?.is_empty() {
            return Err(StorageError::AlreadyInitialized {
                dir: dir.display().to_string(),
            });
        }
        let meta = SnapshotMeta {
            seq: 0,
            update_seq,
            epoch,
        };
        let wal = write_generation(&dir, meta, &engine)?;
        sync_dir(&dir)?;
        Ok(Self {
            dir,
            cfg,
            engine,
            wal,
            seq: 0,
            wal_records: 0,
            update_seq,
            epoch,
            last_fsync_ok: true,
            auto_compactions: 0,
            auto_snapshots: 0,
            commit_hook: None,
            telemetry_hook: None,
        })
    }

    /// Recovers a store from `dir`: loads the newest snapshot that
    /// validates, replays its WAL's committed records, truncates any
    /// torn tail, and retires stale generations. `spec` supplies what
    /// the snapshot doesn't store (engine configuration, shard count).
    ///
    /// Structural damage falls back (older generation, shorter WAL
    /// prefix) and is reported; *semantic* damage — a record that
    /// replays divergently, a configuration that rejects the data — is
    /// a hard error, because serving anyway would silently diverge.
    pub fn open(
        dir: impl Into<PathBuf>,
        spec: &E::Spec,
        cfg: StoreConfig,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        let dir = dir.into();
        let generations = if dir.is_dir() {
            list_generations(&dir)?
        } else {
            Vec::new()
        };
        if generations.is_empty() {
            return Err(StorageError::NotInitialized {
                dir: dir.display().to_string(),
            });
        }
        let mut skipped = 0u64;
        for &seq in &generations {
            let path = snapshot_path(&dir, seq);
            let (meta, state) = match load_snapshot(&path) {
                Ok((meta, state)) if meta.seq == seq => (meta, state),
                // A snapshot whose header seq disagrees with its file
                // name is as untrustworthy as a bad CRC: skip it.
                Ok(_)
                | Err(StorageError::Corrupt { .. })
                | Err(StorageError::Codec(_))
                | Err(StorageError::BadState(_)) => {
                    skipped += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut engine = E::restore(spec, state)?;

            let wpath = wal_path(&dir, seq);
            let replay = if wpath.exists() {
                read_wal(&wpath, seq)?
            } else {
                // The WAL is created (and fsync'd) before its snapshot
                // is renamed into place, so a missing WAL can only
                // mean an externally pruned file — with zero committed
                // records to lose, treat it as empty and recreate it.
                crate::wal::WalReplay {
                    entries: Vec::new(),
                    valid_len: 0,
                    discarded: None,
                }
            };
            let replayed = replay.entries.len() as u64;
            for (i, entry) in replay.entries.into_iter().enumerate() {
                let recorded_remap = entry.remap;
                let outcome = engine.apply_update(entry.update).map_err(|e| {
                    StorageError::ReplayDivergence {
                        record: i as u64,
                        detail: format!("engine rejected committed update: {e}"),
                    }
                })?;
                if recorded_remap.is_some() && outcome.remap != recorded_remap {
                    return Err(StorageError::ReplayDivergence {
                        record: i as u64,
                        detail: "compaction remap differs from the recorded one".into(),
                    });
                }
            }
            let wal = WalWriter::reopen(&wpath, seq, replay.valid_len)?;

            let store = Self {
                engine,
                wal,
                seq,
                wal_records: replayed,
                update_seq: meta.update_seq + replayed,
                epoch: meta.epoch,
                last_fsync_ok: true,
                auto_compactions: 0,
                auto_snapshots: 0,
                commit_hook: None,
                telemetry_hook: None,
                cfg,
                dir,
            };
            store.retire_generations_before(seq);
            return Ok((
                store,
                RecoveryReport {
                    snapshot_seq: seq,
                    wal_replayed: replayed,
                    wal_discarded: replay.discarded,
                    snapshots_skipped: skipped,
                },
            ));
        }
        Err(StorageError::NoValidSnapshot {
            dir: dir.display().to_string(),
        })
    }

    /// The recovered/served engine (all mutation goes through
    /// [`apply`](Self::apply) so it is WAL-logged — hence no `&mut`
    /// accessor).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current generation + WAL counters.
    pub fn status(&self) -> StoreStatus {
        StoreStatus {
            snapshot_seq: self.seq,
            wal_records: self.wal_records,
            update_seq: self.update_seq,
            epoch: self.epoch,
            last_fsync_ok: self.last_fsync_ok,
            auto_compactions: self.auto_compactions,
            auto_snapshots: self.auto_snapshots,
        }
    }

    /// Installs (or replaces) the commit-point observer; see
    /// [`CommitHook`].
    pub fn set_commit_hook(&mut self, hook: CommitHook) {
        self.commit_hook = Some(hook);
    }

    /// Installs (or replaces) the store-event observer; see
    /// [`TelemetryHook`].
    pub fn set_telemetry_hook(&mut self, hook: TelemetryHook) {
        self.telemetry_hook = Some(hook);
    }

    fn emit(&self, event: StoreEvent) {
        if let Some(hook) = &self.telemetry_hook {
            hook.fire(event);
        }
    }

    /// Applies one update durably: pre-validates it, appends the WAL
    /// record, fsyncs (the commit point — an error here means the
    /// update is **not** acknowledged), then mutates the engine.
    /// Afterwards the configured policy may trigger an automatic
    /// compaction and/or snapshot, reported in the receipt.
    pub fn apply(&mut self, update: Update) -> Result<ApplyReceipt, StorageError> {
        let outcome = self.log_and_apply(update)?;
        let mut receipt = ApplyReceipt {
            outcome,
            auto_compacted: false,
            auto_snapshot: None,
        };
        if self
            .cfg
            .policy
            .should_compact(self.engine.live_len(), self.engine.slot_len())
        {
            self.log_and_apply(Update::Compact)?;
            self.auto_compactions += 1;
            self.emit(StoreEvent::AutoCompaction);
            receipt.auto_compacted = true;
        }
        if self.cfg.policy.should_snapshot(self.wal_records) {
            let seq = self.snapshot()?;
            self.auto_snapshots += 1;
            self.emit(StoreEvent::AutoSnapshot);
            receipt.auto_snapshot = Some(seq);
        }
        Ok(receipt)
    }

    /// The WAL-then-mutate core of [`apply`](Self::apply).
    fn log_and_apply(&mut self, update: Update) -> Result<UpdateOutcome, StorageError> {
        self.engine
            .check_update(&update)
            .map_err(StorageError::Update)?;
        let planned_remap = match update {
            Update::Compact => self.engine.planned_remap(),
            _ => None,
        };
        let mut payload = Vec::new();
        encode_update(&update, planned_remap.as_deref(), &mut payload);
        let timing = match self.wal.append(&payload, self.cfg.sync) {
            Ok(timing) => timing,
            Err(e) => {
                self.last_fsync_ok = false;
                return Err(e);
            }
        };
        self.emit(StoreEvent::WalAppend {
            write: timing.write,
            sync: timing.sync,
        });
        self.last_fsync_ok = true;
        self.wal_records += 1;
        self.update_seq += 1;
        if let Some(hook) = &self.commit_hook {
            (hook.0)(self.update_seq);
        }
        let outcome = self
            .engine
            .apply_update(update)
            .expect("update passed check_update");
        if planned_remap.is_some() && outcome.remap != planned_remap {
            // The engine renumbered differently than it predicted — a
            // bug, and the WAL now holds the prediction. Refuse to
            // continue on a state recovery cannot reproduce.
            return Err(StorageError::ReplayDivergence {
                record: self.wal_records - 1,
                detail: "compaction remap differs from the logged prediction".into(),
            });
        }
        Ok(outcome)
    }

    /// Writes a new snapshot generation and rotates the WAL: fresh WAL
    /// first, then the snapshot via tempfile + fsync + atomic rename
    /// (the commit point — recovery prefers the new generation from
    /// that instant, and its WAL already exists), directory fsync, and
    /// finally the old generation is retired. Returns the new
    /// generation number.
    ///
    /// On an error *before* the rename, the store keeps running on the
    /// old generation untouched. A directory-fsync failure *after* the
    /// rename is ambiguous — a crash could recover either generation —
    /// so the store switches to the new generation but **poisons its
    /// WAL**: no further update can be acknowledged into a generation
    /// that might not survive, and the old one is left on disk.
    pub fn snapshot(&mut self) -> Result<u64, StorageError> {
        let new_seq = self.seq + 1;
        let meta = SnapshotMeta {
            seq: new_seq,
            update_seq: self.update_seq,
            epoch: self.epoch,
        };
        let mut new_wal = write_generation(&self.dir, meta, &self.engine)?;
        self.seq = new_seq;
        self.wal_records = 0;
        let committed = sync_dir(&self.dir);
        if let Err(e) = &committed {
            new_wal.poison(format!(
                "generation {new_seq} rename not durably synced: {e}"
            ));
            self.wal = new_wal;
            self.last_fsync_ok = false;
        } else {
            self.wal = new_wal;
            self.retire_generations_before(new_seq);
        }
        self.emit(StoreEvent::Snapshot);
        committed.map(|()| new_seq)
    }

    /// Advances the failover epoch and durably records it with an
    /// immediate snapshot rotation — called when a follower is
    /// promoted, so a replication cursor minted against the old history
    /// can never silently resume against the new one. Returns the new
    /// epoch. On error the in-memory epoch is rolled back: either the
    /// rotation never committed (the store keeps serving the old epoch,
    /// consistently) or the ambiguous post-rename failure poisoned the
    /// WAL (no further write is acknowledged until reopen) — in neither
    /// case is an update committed under an unrecorded epoch.
    pub fn bump_epoch(&mut self) -> Result<u64, StorageError> {
        self.epoch += 1;
        match self.snapshot() {
            Ok(_) => Ok(self.epoch),
            Err(e) => {
                self.epoch -= 1;
                Err(e)
            }
        }
    }

    /// Best-effort removal of every generation older than `keep` (plus
    /// stray tempfiles). Failures are ignored: stale files are retried
    /// on the next rotation and are harmless to recovery, which always
    /// prefers the newest valid generation.
    fn retire_generations_before(&self, keep: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_snapshot = name
                .strip_prefix("snapshot-")
                .and_then(|s| s.strip_suffix(".smc"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|seq| seq < keep);
            let stale_wal = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|seq| seq < keep);
            if stale_snapshot || stale_wal || name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Prepares and commits generation `seq` for `engine` into `dir`:
///
/// 1. a fresh WAL (header written + fsync'd) — created **before** the
///    snapshot so there is no instant where recovery prefers a
///    generation whose log does not exist while acknowledged records
///    still flow into the previous one;
/// 2. the snapshot, via tempfile + fsync + atomic rename into place —
///    the commit point.
///
/// The caller fsyncs the directory afterwards to make the rename
/// durable ([`Store::create`] and [`Store::snapshot`] each own that
/// step's failure policy). Any error *here* leaves the previous
/// generation authoritative: an orphan WAL without its snapshot is
/// inert (recovery keys off snapshot files) and is truncated by the
/// next attempt, and a leftover tempfile is swept by retirement.
fn write_generation<E: StoreEngine>(
    dir: &Path,
    meta: SnapshotMeta,
    engine: &E,
) -> Result<WalWriter, StorageError> {
    let seq = meta.seq;
    let wal = WalWriter::create(&wal_path(dir, seq), seq)?;
    sync_dir(dir)?;
    let state = engine.capture();
    let bytes = snapshot_bytes(meta, &state);
    let final_path = snapshot_path(dir, seq);
    let tmp_path = dir.join(format!("snapshot-{seq}.smc.tmp"));
    let err = |what: &str, p: &Path| StorageError::io(format!("{what} {}", p.display()));
    fs::write(&tmp_path, &bytes).map_err(err("writing", &tmp_path))?;
    let f = File::open(&tmp_path).map_err(err("opening", &tmp_path))?;
    f.sync_all().map_err(err("fsyncing", &tmp_path))?;
    drop(f);
    fs::rename(&tmp_path, &final_path).map_err(err("renaming into", &final_path))?;
    Ok(wal)
}
