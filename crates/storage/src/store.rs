//! The durable store: an engine plus its snapshot/WAL generation on
//! disk, with crash recovery and policy-driven auto-compaction and
//! auto-snapshots. See the crate docs for the layout and guarantees.
//!
//! The commit path is split in two so callers can group-commit:
//! [`Store::commit_batch`] (shared `&self`; serializes on an internal
//! mutex) makes a batch of updates durable with one buffered write and
//! one fsync, and [`Store::apply_committed`] (exclusive `&mut self`)
//! mutates the engine in WAL order. [`Store::apply`] composes the two
//! for the single-writer case and runs policy maintenance afterwards —
//! whose failures are *reported in the receipt*, never surfaced as an
//! error for an update that already committed (an error after the
//! commit point would make the caller retry a durable update).

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use silkmoth_collection::SetIdx;
use silkmoth_core::wire::encode_update;
use silkmoth_core::{CompactionPolicy, Update, UpdateOutcome};

use crate::snapshot::{load_snapshot, snapshot_bytes, SnapshotMeta};
use crate::wal::{
    list_wal_segments, read_wal, wal_file_path, wal_segment_path, WalReplay, WalWriter,
    WAL_HEADER_V1_LEN,
};
use crate::{StorageError, StoreEngine};

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Fsync every commit batch before acknowledging it (the durability
    /// guarantee). Disable only for tests or bulk loads that accept
    /// losing the tail on a crash.
    pub sync: bool,
    /// When to auto-compact (tombstone ratio), auto-snapshot (WAL
    /// length), and seal WAL segments (segment size).
    /// [`CompactionPolicy::DISABLED`] turns all three off.
    pub policy: CompactionPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            sync: true,
            policy: CompactionPolicy::DISABLED,
        }
    }
}

/// A torn or corrupt WAL suffix discarded during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDiscard {
    /// Byte offset where the valid prefix ends.
    pub offset: u64,
    /// How many bytes were discarded.
    pub bytes: u64,
    /// Why reading stopped.
    pub reason: String,
}

/// What [`Store::open`] recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation that was loaded.
    pub snapshot_seq: u64,
    /// Committed WAL records replayed on top of the snapshot.
    pub wal_replayed: u64,
    /// Discarded torn/corrupt WAL suffix, if any.
    pub wal_discarded: Option<WalDiscard>,
    /// Newer snapshot generations that failed validation, were skipped,
    /// and were quarantined (renamed `*.corrupt`) — 0 in healthy
    /// operation, and 0 again on the next open because of the
    /// quarantine.
    pub snapshots_skipped: u64,
}

/// What one [`Store::apply`] did beyond the update itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReceipt {
    /// The engine's outcome for the caller's update.
    pub outcome: UpdateOutcome,
    /// The policy triggered an automatic [`Update::Compact`] afterwards.
    pub auto_compacted: bool,
    /// The policy triggered an automatic snapshot; the new generation.
    pub auto_snapshot: Option<u64>,
    /// Post-commit maintenance (auto-compaction or auto-snapshot)
    /// failed. The caller's update **is durably committed and applied**
    /// — callers must acknowledge it as a success (at most flagged
    /// degraded) and must not retry, or a non-idempotent update would
    /// be applied twice.
    pub maintenance_error: Option<String>,
}

/// What [`Store::maintain`] did. Maintenance runs after the caller's
/// update is already durable, so failures are reported here instead of
/// as an `Err` — see [`ApplyReceipt::maintenance_error`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MaintenanceReport {
    /// The policy triggered an automatic [`Update::Compact`].
    pub auto_compacted: bool,
    /// The policy triggered an automatic snapshot; the new generation.
    pub auto_snapshot: Option<u64>,
    /// The first maintenance step that failed, if any.
    pub error: Option<String>,
}

/// A batch of updates made durable by [`Store::commit_batch`] but not
/// yet applied to the engine. Every batch must be passed to
/// [`Store::apply_committed`], in commit order — a committed batch that
/// is never applied (or applied out of order) leaves the engine behind
/// the WAL, which recovery would then "repair" into a different state
/// than the one that served reads.
#[must_use = "a committed batch must be applied to the engine with apply_committed"]
#[derive(Debug)]
pub struct CommittedBatch {
    entries: Vec<CommittedEntry>,
    first_seq: u64,
}

#[derive(Debug)]
struct CommittedEntry {
    update: Update,
    planned_remap: Option<Vec<Option<SetIdx>>>,
}

impl CommittedBatch {
    /// Records in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false — empty batches are rejected at commit.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Global sequence number of the batch's last record.
    pub fn last_seq(&self) -> u64 {
        self.first_seq + self.entries.len() as u64 - 1
    }
}

/// An observer of the store's commit point, installed with
/// [`Store::set_commit_hook`]: called with the new total committed
/// update count immediately after every durable commit batch (caller
/// updates and policy-driven auto-actions alike). Replication uses it
/// to wake streamers without polling. The hook runs on the committing
/// thread while the store's commit lock is held, so it must not call
/// back into the store or block.
#[derive(Clone)]
pub struct CommitHook(Arc<dyn Fn(u64) + Send + Sync>);

impl CommitHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(u64) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }
}

impl fmt::Debug for CommitHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CommitHook(..)")
    }
}

/// Tells the store the oldest update sequence any replication cursor
/// still needs, installed with [`Store::set_retention_hook`]: sealed
/// WAL segments already covered by the current snapshot are retired
/// only once their records fall at or below the returned floor. Return
/// `u64::MAX` when no cursor is outstanding (everything covered by the
/// snapshot may go). Called during rotation/retirement with the commit
/// lock possibly held, so it must not call back into the store or
/// block.
#[derive(Clone)]
pub struct RetentionHook(Arc<dyn Fn() -> u64 + Send + Sync>);

impl RetentionHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }
}

impl fmt::Debug for RetentionHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RetentionHook(..)")
    }
}

/// One observable store event, delivered to the [`TelemetryHook`].
///
/// The variants carry everything a metrics layer needs so the store
/// itself depends on no telemetry crate — the hook owner translates
/// events into whatever counters and histograms it keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreEvent {
    /// One batch of records was durably committed: how many records it
    /// held, and how long the single buffered write and the single
    /// fsync took (`sync` is **exactly zero** when the store runs
    /// fsync-less).
    CommitBatch {
        records: u64,
        write: Duration,
        sync: Duration,
    },
    /// A snapshot generation was written (explicit or automatic).
    Snapshot,
    /// The policy triggered an automatic compaction.
    AutoCompaction,
    /// The policy triggered an automatic snapshot.
    AutoSnapshot,
}

/// An observer of store I/O for metrics, installed with
/// [`Store::set_telemetry_hook`] — the telemetry twin of
/// [`CommitHook`]. Called on the committing thread while the store is
/// borrowed, so it must not call back into the store or block; it is
/// never on the durability path (events fire only after the store has
/// already committed or completed the action they describe).
#[derive(Clone)]
pub struct TelemetryHook(Arc<dyn Fn(StoreEvent) + Send + Sync>);

impl TelemetryHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(StoreEvent) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// Invokes the callback with one event.
    pub fn fire(&self, event: StoreEvent) {
        (self.0)(event);
    }
}

impl fmt::Debug for TelemetryHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TelemetryHook(..)")
    }
}

/// Live observability counters for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStatus {
    /// Current snapshot generation.
    pub snapshot_seq: u64,
    /// Records in the current generation's WAL (across all its
    /// segments).
    pub wal_records: u64,
    /// Total committed updates across all generations — the global,
    /// monotonic sequence number of the most recent WAL record (0 when
    /// none were ever committed). Record `i` (zero-based) of the
    /// current generation's WAL has sequence
    /// `update_seq - wal_records + i + 1`.
    pub update_seq: u64,
    /// Failover epoch this store's history belongs to (see
    /// [`Store::bump_epoch`]).
    pub epoch: u64,
    /// Whether the most recent WAL fsync (or fsync-less append)
    /// succeeded — `false` means the last update was **not** durably
    /// acknowledged.
    pub last_fsync_ok: bool,
    /// Automatic compactions since open.
    pub auto_compactions: u64,
    /// Automatic snapshots since open.
    pub auto_snapshots: u64,
    /// Segments in the current generation's WAL (the active one plus
    /// any sealed earlier ones).
    pub wal_segments: u32,
}

/// The mutable commit-path state, behind a mutex so
/// [`Store::commit_batch`] can run with `&self` — concurrent
/// committers serialize here (and nowhere else), which is what lets
/// the server fsync outside its engine write lock.
#[derive(Debug)]
struct CommitState {
    wal: WalWriter,
    /// Current snapshot generation.
    seq: u64,
    /// Index of the active WAL segment within the generation.
    segment_index: u32,
    /// Records committed in the current generation (all segments).
    wal_records: u64,
    /// Global committed-update sequence.
    update_seq: u64,
    last_fsync_ok: bool,
}

/// A durable engine: every acknowledged update is WAL-logged (fsync'd)
/// *before* the in-memory engine mutates, and
/// [`snapshot`](Store::snapshot) checkpoints + rotates generations
/// atomically. Generic over [`StoreEngine`].
#[derive(Debug)]
pub struct Store<E: StoreEngine> {
    dir: PathBuf,
    cfg: StoreConfig,
    engine: E,
    commit: Mutex<CommitState>,
    epoch: u64,
    auto_compactions: u64,
    auto_snapshots: u64,
    commit_hook: Option<CommitHook>,
    telemetry_hook: Option<TelemetryHook>,
    retention_hook: Option<RetentionHook>,
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq}.smc"))
}

/// All snapshot generation numbers present in `dir`, descending.
fn list_generations(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let mut seqs = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(StorageError::io(format!("listing {}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(StorageError::io(format!("listing {}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".smc"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// The snapshot generation a store file belongs to, parsed from its
/// name (`snapshot-<g>.smc`, legacy `wal-<g>.log`, `wal-<g>-<n>.log`).
fn file_generation(name: &str) -> Option<u64> {
    if let Some(body) = name
        .strip_prefix("snapshot-")
        .and_then(|s| s.strip_suffix(".smc"))
    {
        return body.parse().ok();
    }
    if let Some(body) = name
        .strip_prefix("wal-")
        .and_then(|s| s.strip_suffix(".log"))
    {
        let gen = body.split_once('-').map(|(g, _)| g).unwrap_or(body);
        return gen.parse().ok();
    }
    None
}

/// Fsyncs the directory itself so renames and creations inside it are
/// durable (no-op on platforms where directories cannot be opened).
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    #[cfg(unix)]
    {
        let f = File::open(dir).map_err(StorageError::io(format!("opening {}", dir.display())))?;
        f.sync_all()
            .map_err(StorageError::io(format!("fsyncing {}", dir.display())))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Truncates a file to `len` and fsyncs it.
fn truncate_file(path: &Path, len: u64) -> Result<(), StorageError> {
    let err = || StorageError::io(format!("truncating {}", path.display()));
    let f = OpenOptions::new().write(true).open(path).map_err(err())?;
    f.set_len(len).map_err(err())?;
    f.sync_all().map_err(err())?;
    Ok(())
}

impl<E: StoreEngine> Store<E> {
    /// Initializes a fresh store in `dir` (created if missing) from an
    /// already-built engine: writes generation 0 (snapshot + empty WAL
    /// segment) and returns the running store. Refuses to clobber a
    /// directory that already holds a store.
    pub fn create(
        dir: impl Into<PathBuf>,
        engine: E,
        cfg: StoreConfig,
    ) -> Result<Self, StorageError> {
        Self::create_continuing(dir, engine, cfg, 0, 0)
    }

    /// Like [`create`](Self::create), but the update-sequence counter
    /// and failover epoch continue from an existing replicated history
    /// instead of zero — what a follower does when it installs a
    /// primary's bootstrap snapshot. The engine passed in must already
    /// reflect the first `update_seq` committed updates of epoch
    /// `epoch`.
    pub fn create_continuing(
        dir: impl Into<PathBuf>,
        engine: E,
        cfg: StoreConfig,
        update_seq: u64,
        epoch: u64,
    ) -> Result<Self, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(StorageError::io(format!("creating {}", dir.display())))?;
        if !list_generations(&dir)?.is_empty() {
            return Err(StorageError::AlreadyInitialized {
                dir: dir.display().to_string(),
            });
        }
        let meta = SnapshotMeta {
            seq: 0,
            update_seq,
            epoch,
        };
        let wal = write_generation(&dir, meta, &engine)?;
        sync_dir(&dir)?;
        Ok(Self {
            dir,
            cfg,
            engine,
            commit: Mutex::new(CommitState {
                wal,
                seq: 0,
                segment_index: 0,
                wal_records: 0,
                update_seq,
                last_fsync_ok: true,
            }),
            epoch,
            auto_compactions: 0,
            auto_snapshots: 0,
            commit_hook: None,
            telemetry_hook: None,
            retention_hook: None,
        })
    }

    /// Recovers a store from `dir`: loads the newest snapshot that
    /// validates, replays its WAL's committed records — decoding and
    /// CRC-checking every segment **in parallel**, then applying in
    /// sequence order — truncates any torn tail in the final segment,
    /// quarantines skipped newer generations, and retires stale
    /// generations. `spec` supplies what the snapshot doesn't store
    /// (engine configuration, shard count).
    ///
    /// Structural damage in the final (active) segment falls back
    /// (older generation, shorter WAL prefix) and is reported.
    /// *Semantic* damage — a record that replays divergently, a torn
    /// tail in a **sealed** segment, a segment whose base sequence
    /// doesn't continue the log (a missing or reordered file), a
    /// configuration that rejects the data — is a hard error, because
    /// serving anyway would silently diverge or drop committed records.
    ///
    /// Legacy single-file (version 1) generations recover transparently:
    /// the old log is replayed first, its torn tail truncated in place,
    /// and a fresh version-2 segment is opened after it for new records.
    pub fn open(
        dir: impl Into<PathBuf>,
        spec: &E::Spec,
        cfg: StoreConfig,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        let dir = dir.into();
        let generations = if dir.is_dir() {
            list_generations(&dir)?
        } else {
            Vec::new()
        };
        if generations.is_empty() {
            return Err(StorageError::NotInitialized {
                dir: dir.display().to_string(),
            });
        }
        let mut skipped_gens: Vec<u64> = Vec::new();
        for &seq in &generations {
            let path = snapshot_path(&dir, seq);
            let (meta, state) = match load_snapshot(&path) {
                Ok((meta, state)) if meta.seq == seq => (meta, state),
                // A snapshot whose header seq disagrees with its file
                // name is as untrustworthy as a bad CRC: skip it.
                Ok(_)
                | Err(StorageError::Corrupt { .. })
                | Err(StorageError::Codec(_))
                | Err(StorageError::BadState(_)) => {
                    skipped_gens.push(seq);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut engine = E::restore(spec, state)?;

            // The generation's log catalog, in replay order: the legacy
            // single-file log (if the store predates segmentation),
            // then every segment by index.
            let legacy = wal_file_path(&dir, seq);
            let mut catalog: Vec<(PathBuf, Option<u32>)> = Vec::new();
            if legacy.exists() {
                catalog.push((legacy, None));
            }
            for info in list_wal_segments(&dir)? {
                if info.generation == seq {
                    catalog.push((info.path, Some(info.segment)));
                }
            }

            // Decode and CRC-check every file in parallel; the chunks
            // keep result order aligned with catalog order.
            let mut replays: Vec<Option<Result<WalReplay, StorageError>>> =
                catalog.iter().map(|_| None).collect();
            if !catalog.is_empty() {
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(catalog.len());
                let chunk = catalog.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    for (files, out) in catalog.chunks(chunk).zip(replays.chunks_mut(chunk)) {
                        scope.spawn(move || {
                            for ((path, _), slot) in files.iter().zip(out.iter_mut()) {
                                *slot = Some(read_wal(path, seq));
                            }
                        });
                    }
                });
            }

            // Stitch the replays back together in order, checking that
            // each segment continues the log exactly where the previous
            // one left off.
            let mut entries = Vec::new();
            let mut expected = meta.update_seq;
            let mut discarded = None;
            let mut active: Option<(PathBuf, Option<u32>, u64, u64)> = None;
            let files = catalog.len();
            for (i, ((path, name_seg), slot)) in catalog.into_iter().zip(replays).enumerate() {
                let replay = slot.expect("every catalog file was decoded")?;
                let is_last = i + 1 == files;
                if let Some(d) = replay.discarded {
                    if !is_last {
                        // New segments are created only after a fully
                        // committed append, so a sealed segment can
                        // never legitimately end torn.
                        return Err(StorageError::Corrupt {
                            file: path.display().to_string(),
                            detail: format!("torn tail in a sealed WAL segment: {}", d.reason),
                        });
                    }
                    discarded = Some(d);
                }
                if let Some(want) = name_seg {
                    if let Some(got) = replay.segment {
                        if got != want {
                            return Err(StorageError::Corrupt {
                                file: path.display().to_string(),
                                detail: format!(
                                    "segment header index {got} disagrees with file name ({want})"
                                ),
                            });
                        }
                    }
                    if let Some(base) = replay.base_seq {
                        if base != expected {
                            return Err(StorageError::Corrupt {
                                file: path.display().to_string(),
                                detail: format!(
                                    "segment base {base} does not continue the log at {expected} \
                                     (missing or reordered segments)"
                                ),
                            });
                        }
                    }
                }
                let records = replay.entries.len() as u64;
                expected += records;
                entries.extend(replay.entries);
                if is_last {
                    active = Some((path, name_seg, replay.valid_len, records));
                }
            }

            // Apply in sequence order.
            let replayed = entries.len() as u64;
            for (i, entry) in entries.into_iter().enumerate() {
                let recorded_remap = entry.remap;
                let outcome = engine.apply_update(entry.update).map_err(|e| {
                    StorageError::ReplayDivergence {
                        record: i as u64,
                        detail: format!("engine rejected committed update: {e}"),
                    }
                })?;
                if recorded_remap.is_some() && outcome.remap != recorded_remap {
                    return Err(StorageError::ReplayDivergence {
                        record: i as u64,
                        detail: "compaction remap differs from the recorded one".into(),
                    });
                }
            }

            // Set up the active writer, converting a legacy log by
            // truncating its tail in place and opening segment 0 with
            // the right base after it.
            let update_seq = meta.update_seq + replayed;
            let (wal, segment_index) = match active {
                None => {
                    // The WAL is created (and fsync'd) before its
                    // snapshot is renamed into place, so a missing WAL
                    // can only mean an externally pruned file — with
                    // zero committed records to lose, recreate it empty.
                    let w = WalWriter::create(
                        &wal_segment_path(&dir, seq, 0),
                        seq,
                        0,
                        meta.update_seq,
                    )?;
                    sync_dir(&dir)?;
                    (w, 0)
                }
                Some((path, None, valid_len, _)) => {
                    if valid_len < WAL_HEADER_V1_LEN {
                        // The legacy log was discarded whole (torn
                        // creation): nothing committed in it to keep.
                        fs::remove_file(&path)
                            .map_err(StorageError::io(format!("removing {}", path.display())))?;
                    } else {
                        truncate_file(&path, valid_len)?;
                    }
                    let w = WalWriter::create(&wal_segment_path(&dir, seq, 0), seq, 0, update_seq)?;
                    sync_dir(&dir)?;
                    (w, 0)
                }
                Some((path, Some(idx), valid_len, records)) => {
                    let base = update_seq - records;
                    let w = WalWriter::reopen(&path, seq, idx, base, valid_len)?;
                    (w, idx)
                }
            };

            let store = Self {
                engine,
                commit: Mutex::new(CommitState {
                    wal,
                    seq,
                    segment_index,
                    wal_records: replayed,
                    update_seq,
                    last_fsync_ok: true,
                }),
                epoch: meta.epoch,
                auto_compactions: 0,
                auto_snapshots: 0,
                commit_hook: None,
                telemetry_hook: None,
                retention_hook: None,
                cfg,
                dir,
            };
            let skipped = skipped_gens.len() as u64;
            store.quarantine_generations(&skipped_gens);
            store.retire_stale_files(seq);
            return Ok((
                store,
                RecoveryReport {
                    snapshot_seq: seq,
                    wal_replayed: replayed,
                    wal_discarded: discarded,
                    snapshots_skipped: skipped,
                },
            ));
        }
        Err(StorageError::NoValidSnapshot {
            dir: dir.display().to_string(),
        })
    }

    /// The recovered/served engine (all mutation goes through
    /// [`apply`](Self::apply) / [`apply_committed`](Self::apply_committed)
    /// so it is WAL-logged — hence no `&mut` accessor).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn commit_state(&self) -> MutexGuard<'_, CommitState> {
        self.commit.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current generation + WAL counters.
    pub fn status(&self) -> StoreStatus {
        let state = self.commit_state();
        StoreStatus {
            snapshot_seq: state.seq,
            wal_records: state.wal_records,
            update_seq: state.update_seq,
            epoch: self.epoch,
            last_fsync_ok: state.last_fsync_ok,
            auto_compactions: self.auto_compactions,
            auto_snapshots: self.auto_snapshots,
            wal_segments: state.segment_index + 1,
        }
    }

    /// Installs (or replaces) the commit-point observer; see
    /// [`CommitHook`].
    pub fn set_commit_hook(&mut self, hook: CommitHook) {
        self.commit_hook = Some(hook);
    }

    /// Installs (or replaces) the store-event observer; see
    /// [`TelemetryHook`].
    pub fn set_telemetry_hook(&mut self, hook: TelemetryHook) {
        self.telemetry_hook = Some(hook);
    }

    /// Installs (or replaces) the segment-retention floor; see
    /// [`RetentionHook`].
    pub fn set_retention_hook(&mut self, hook: RetentionHook) {
        self.retention_hook = Some(hook);
    }

    fn emit(&self, event: StoreEvent) {
        if let Some(hook) = &self.telemetry_hook {
            hook.fire(event);
        }
    }

    fn retention_floor(&self) -> u64 {
        self.retention_hook
            .as_ref()
            .map(|hook| (hook.0)())
            .unwrap_or(u64::MAX)
    }

    /// Applies one update durably: pre-validates it, commits it (WAL
    /// append + fsync — an error here means the update is **not**
    /// acknowledged), mutates the engine, then runs policy maintenance.
    /// Maintenance failures do **not** fail the call — the update is
    /// already durable by then — they are reported in
    /// [`ApplyReceipt::maintenance_error`].
    pub fn apply(&mut self, update: Update) -> Result<ApplyReceipt, StorageError> {
        self.engine
            .check_update(&update)
            .map_err(StorageError::Update)?;
        let batch = self.commit_batch(vec![update])?;
        let mut outcomes = self.apply_committed(batch)?;
        let outcome = outcomes.pop().expect("one update was committed");
        let report = self.maintain();
        Ok(ApplyReceipt {
            outcome,
            auto_compacted: report.auto_compacted,
            auto_snapshot: report.auto_snapshot,
            maintenance_error: report.error,
        })
    }

    /// Makes a batch of updates durable with **one** buffered WAL write
    /// and **one** fsync — the amortized group-commit point — and
    /// returns the batch for [`apply_committed`](Self::apply_committed).
    /// Concurrent committers serialize on the store's internal commit
    /// lock only, so this runs with `&self` (the server calls it under
    /// its shared engine lock: the fsync never blocks searches).
    ///
    /// The caller's contract:
    /// * every update must already be validated against the engine
    ///   state it will apply to (via [`StoreEngine::check_update`] or a
    ///   batch-aware equivalent) — a committed record that the engine
    ///   then rejects is unrecoverable divergence;
    /// * the engine must not mutate between this call and the matching
    ///   `apply_committed`, and batches must be applied in commit
    ///   order;
    /// * [`Update::Compact`] must be committed **alone** (its remap is
    ///   planned against the current engine and recorded in the WAL, so
    ///   nothing may precede it in its own batch).
    pub fn commit_batch(&self, updates: Vec<Update>) -> Result<CommittedBatch, StorageError> {
        if updates.is_empty() {
            return Err(StorageError::BadState("empty commit batch".into()));
        }
        if updates.len() > 1 && updates.iter().any(|u| matches!(u, Update::Compact)) {
            return Err(StorageError::BadState(
                "Update::Compact must be committed in a batch of its own".into(),
            ));
        }
        let mut entries = Vec::with_capacity(updates.len());
        let mut payloads = Vec::with_capacity(updates.len());
        for update in updates {
            let planned_remap = match update {
                Update::Compact => self.engine.planned_remap(),
                _ => None,
            };
            let mut payload = Vec::new();
            encode_update(&update, planned_remap.as_deref(), &mut payload);
            payloads.push(payload);
            entries.push(CommittedEntry {
                update,
                planned_remap,
            });
        }
        let records = entries.len() as u64;
        let mut state = self.commit_state();
        let timing = match state.wal.append_many(&payloads, self.cfg.sync) {
            Ok(timing) => timing,
            Err(e) => {
                state.last_fsync_ok = false;
                return Err(e);
            }
        };
        state.last_fsync_ok = true;
        state.wal_records += records;
        state.update_seq += records;
        let last_seq = state.update_seq;
        self.emit(StoreEvent::CommitBatch {
            records,
            write: timing.write,
            sync: timing.sync,
        });
        if let Some(hook) = &self.commit_hook {
            (hook.0)(last_seq);
        }
        if self.cfg.policy.should_seal(state.wal.committed_len()) {
            self.seal_active_segment(&mut state);
        }
        drop(state);
        Ok(CommittedBatch {
            entries,
            first_seq: last_seq - records + 1,
        })
    }

    /// Seals the active segment by opening its successor; the old file
    /// is simply no longer written to. Sealing is advisory (the batch
    /// that triggered it is already committed), but a half-created
    /// successor would make the current segment look sealed to
    /// recovery — which then treats any torn tail in it as hard
    /// corruption — so a failed seal must not leave the new file
    /// behind.
    fn seal_active_segment(&self, state: &mut CommitState) {
        let next = state.segment_index + 1;
        let path = wal_segment_path(&self.dir, state.seq, next);
        let created = WalWriter::create(&path, state.seq, next, state.update_seq)
            .and_then(|w| sync_dir(&self.dir).map(|()| w));
        match created {
            Ok(w) => {
                state.wal = w;
                state.segment_index = next;
                self.retire_stale_files(state.seq);
            }
            Err(why) => {
                if fs::remove_file(&path).is_err() && path.exists() {
                    state
                        .wal
                        .poison(format!("segment seal left a partial successor: {why}"));
                    state.last_fsync_ok = false;
                }
            }
        }
    }

    /// Mutates the engine with a batch committed by
    /// [`commit_batch`](Self::commit_batch), in WAL order, returning
    /// one outcome per update. An engine rejection or remap divergence
    /// here is unrecoverable — the WAL already holds the record — so
    /// the store poisons its commit path (no further update can be
    /// acknowledged into a history recovery cannot reproduce) and
    /// returns a hard error.
    pub fn apply_committed(
        &mut self,
        batch: CommittedBatch,
    ) -> Result<Vec<UpdateOutcome>, StorageError> {
        let first_seq = batch.first_seq;
        let mut outcomes = Vec::with_capacity(batch.entries.len());
        for (i, entry) in batch.entries.into_iter().enumerate() {
            let record = first_seq + i as u64;
            let outcome = match self.engine.apply_update(entry.update) {
                Ok(outcome) => outcome,
                Err(e) => {
                    self.poison_commits(format!("committed record {record} rejected: {e}"));
                    return Err(StorageError::ReplayDivergence {
                        record,
                        detail: format!("engine rejected committed update: {e}"),
                    });
                }
            };
            if entry.planned_remap.is_some() && outcome.remap != entry.planned_remap {
                // The engine renumbered differently than it predicted —
                // a bug, and the WAL now holds the prediction.
                self.poison_commits(format!("record {record} remap diverged from prediction"));
                return Err(StorageError::ReplayDivergence {
                    record,
                    detail: "compaction remap differs from the logged prediction".into(),
                });
            }
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    fn poison_commits(&mut self, why: String) {
        let state = self
            .commit
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        state.wal.poison(why);
        state.last_fsync_ok = false;
    }

    /// Runs the configured policy's post-commit maintenance: an
    /// automatic [`Update::Compact`] when the tombstone ratio is over
    /// threshold, then an automatic snapshot when the WAL is long
    /// enough. Failures are captured in the report, never returned as
    /// an `Err` — maintenance runs after updates the caller already
    /// acknowledged, so its failure must not look like theirs.
    pub fn maintain(&mut self) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        if self
            .cfg
            .policy
            .should_compact(self.engine.live_len(), self.engine.slot_len())
        {
            let compacted = self
                .engine
                .check_update(&Update::Compact)
                .map_err(StorageError::Update)
                .and_then(|()| self.commit_batch(vec![Update::Compact]))
                .and_then(|batch| self.apply_committed(batch));
            match compacted {
                Ok(_) => {
                    self.auto_compactions += 1;
                    self.emit(StoreEvent::AutoCompaction);
                    report.auto_compacted = true;
                }
                Err(e) => {
                    report.error = Some(format!("auto-compaction failed: {e}"));
                    return report;
                }
            }
        }
        let wal_records = self
            .commit
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .wal_records;
        if self.cfg.policy.should_snapshot(wal_records) {
            match self.snapshot() {
                Ok(seq) => {
                    self.auto_snapshots += 1;
                    self.emit(StoreEvent::AutoSnapshot);
                    report.auto_snapshot = Some(seq);
                }
                Err(e) => {
                    report.error = Some(format!("auto-snapshot failed: {e}"));
                }
            }
        }
        report
    }

    /// Writes a new snapshot generation and rotates the WAL: fresh WAL
    /// (segment 0 of the new generation) first, then the snapshot via
    /// tempfile + fsync + atomic rename (the commit point — recovery
    /// prefers the new generation from that instant, and its WAL
    /// already exists), directory fsync, and finally stale files are
    /// retired (old snapshots unconditionally; old WAL segments only
    /// past the replication retention floor). Returns the new
    /// generation number.
    ///
    /// On an error *before* the rename, the store keeps running on the
    /// old generation untouched. A directory-fsync failure *after* the
    /// rename is ambiguous — a crash could recover either generation —
    /// so the store switches to the new generation but **poisons its
    /// WAL**: no further update can be acknowledged into a generation
    /// that might not survive, and the old one is left on disk.
    pub fn snapshot(&mut self) -> Result<u64, StorageError> {
        let state = self
            .commit
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        let new_seq = state.seq + 1;
        let meta = SnapshotMeta {
            seq: new_seq,
            update_seq: state.update_seq,
            epoch: self.epoch,
        };
        let mut new_wal = write_generation(&self.dir, meta, &self.engine)?;
        state.seq = new_seq;
        state.segment_index = 0;
        state.wal_records = 0;
        let committed = sync_dir(&self.dir);
        if let Err(e) = &committed {
            new_wal.poison(format!(
                "generation {new_seq} rename not durably synced: {e}"
            ));
            state.wal = new_wal;
            state.last_fsync_ok = false;
        } else {
            state.wal = new_wal;
        }
        if committed.is_ok() {
            self.retire_stale_files(new_seq);
        }
        self.emit(StoreEvent::Snapshot);
        committed.map(|()| new_seq)
    }

    /// Advances the failover epoch and durably records it with an
    /// immediate snapshot rotation — called when a follower is
    /// promoted, so a replication cursor minted against the old history
    /// can never silently resume against the new one. Returns the new
    /// epoch. On error the in-memory epoch is rolled back: either the
    /// rotation never committed (the store keeps serving the old epoch,
    /// consistently) or the ambiguous post-rename failure poisoned the
    /// WAL (no further write is acknowledged until reopen) — in neither
    /// case is an update committed under an unrecorded epoch.
    pub fn bump_epoch(&mut self) -> Result<u64, StorageError> {
        self.epoch += 1;
        match self.snapshot() {
            Ok(_) => Ok(self.epoch),
            Err(e) => {
                self.epoch -= 1;
                Err(e)
            }
        }
    }

    /// Best-effort renaming of every file belonging to a skipped
    /// (corrupt) generation to `<name>.corrupt`, so the damage is kept
    /// for inspection but never re-probed — without this, a corrupt
    /// newer generation would be silently re-skipped on every open
    /// until a rotation happened to pass its number.
    fn quarantine_generations(&self, gens: &[u64]) {
        if gens.is_empty() {
            return;
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if file_generation(name).is_some_and(|g| gens.contains(&g)) {
                let _ = fs::rename(entry.path(), self.dir.join(format!("{name}.corrupt")));
            }
        }
        let _ = sync_dir(&self.dir);
    }

    /// Best-effort removal of stale files: snapshots and legacy
    /// single-file WALs of generations older than `keep` (plus stray
    /// tempfiles) unconditionally, and older-generation WAL **segments**
    /// only once no replication cursor still needs their records (a
    /// segment's records end where the next one begins; see
    /// [`RetentionHook`]). Current-generation segments are never
    /// retired — recovery needs them. Failures are ignored: stale files
    /// are retried on the next rotation and are harmless to recovery,
    /// which always prefers the newest valid generation.
    fn retire_stale_files(&self, keep: u64) {
        let floor = self.retention_floor();
        if let Ok(segments) = list_wal_segments(&self.dir) {
            for (i, seg) in segments.iter().enumerate() {
                if seg.generation >= keep {
                    continue;
                }
                let needed = match seg.base_seq {
                    // An unreadable header serves no cursor.
                    None => false,
                    Some(_) => match segments.get(i + 1).and_then(|next| next.base_seq) {
                        Some(end) => end > floor,
                        // The segment's extent is unbounded from here:
                        // keep it while any cursor is outstanding.
                        None => floor != u64::MAX,
                    },
                };
                if !needed {
                    let _ = fs::remove_file(&seg.path);
                }
            }
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_snapshot = name
                .strip_prefix("snapshot-")
                .and_then(|s| s.strip_suffix(".smc"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|seq| seq < keep);
            // Only the legacy single-file form parses here — segment
            // names ("<gen>-<n>") fail the u64 parse and are handled
            // above with retention.
            let stale_legacy_wal = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|seq| seq < keep);
            if stale_snapshot || stale_legacy_wal || name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Prepares and commits generation `seq` for `engine` into `dir`:
///
/// 1. a fresh WAL segment 0 (header written + fsync'd, base = the
///    generation's starting update sequence) — created **before** the
///    snapshot so there is no instant where recovery prefers a
///    generation whose log does not exist while acknowledged records
///    still flow into the previous one;
/// 2. the snapshot, via tempfile + fsync + atomic rename into place —
///    the commit point.
///
/// The caller fsyncs the directory afterwards to make the rename
/// durable ([`Store::create`] and [`Store::snapshot`] each own that
/// step's failure policy). Any error *here* leaves the previous
/// generation authoritative: an orphan WAL without its snapshot is
/// inert (recovery keys off snapshot files) and is truncated by the
/// next attempt, and a leftover tempfile is swept by retirement.
fn write_generation<E: StoreEngine>(
    dir: &Path,
    meta: SnapshotMeta,
    engine: &E,
) -> Result<WalWriter, StorageError> {
    let seq = meta.seq;
    let wal = WalWriter::create(&wal_segment_path(dir, seq, 0), seq, 0, meta.update_seq)?;
    sync_dir(dir)?;
    let state = engine.capture();
    let bytes = snapshot_bytes(meta, &state);
    let final_path = snapshot_path(dir, seq);
    let tmp_path = dir.join(format!("snapshot-{seq}.smc.tmp"));
    let err = |what: &str, p: &Path| StorageError::io(format!("{what} {}", p.display()));
    fs::write(&tmp_path, &bytes).map_err(err("writing", &tmp_path))?;
    let f = File::open(&tmp_path).map_err(err("opening", &tmp_path))?;
    f.sync_all().map_err(err("fsyncing", &tmp_path))?;
    drop(f);
    fs::rename(&tmp_path, &final_path).map_err(err("renaming into", &final_path))?;
    Ok(wal)
}
