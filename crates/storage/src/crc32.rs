//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! The WAL and snapshot formats checksum every record and file so that
//! torn writes and bit rot surface as named errors instead of silently
//! wrong engines. The table is built in a `const` context — no
//! dependencies, no lazy statics.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (initial value all-ones, final xor all-ones — the
/// standard presentation that matches zlib's `crc32(0, data)`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let want = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), want, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
