//! Snapshot files: one self-validating checkpoint of an engine's
//! [`EngineState`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      "SMSS"                         4 bytes
//! version    u32 (currently 2)              4 bytes
//! seq        u64 — generation number        8 bytes
//! update_seq u64 — committed updates total  8 bytes
//! epoch      u64 — failover epoch           8 bytes
//! next_id  u32                          4 bytes
//! n_live   u32                          4 bytes
//! n_dead   u32                          4 bytes
//! live ids u32 × n_live (ascending)
//! dead ids u32 × n_dead (ascending)
//! payload_len u64
//! payload  silkmoth_collection::codec::encode_sets of the live sets'
//!          element texts, in live-id order (carries the tokenization)
//! crc32    u32 over every preceding byte
//! ```
//!
//! The payload reuses the collection codec wholesale, so a snapshot's
//! data section is exactly the `.smc` corpus format the CLI and bench
//! harness already read and write; the wrapper adds what durability
//! needs on top: the id bookkeeping (dead slots, next id) and an
//! end-to-end CRC.
//!
//! Version 2 added `update_seq` (the store's total committed-update
//! count at checkpoint time, the base every WAL record's global
//! sequence number counts from) and `epoch` (bumped on follower
//! promotion so a replication cursor from a diverged history is never
//! silently resumed). Version-1 files are rejected by name like any
//! other unknown version — the workspace has no deployed v1 stores to
//! migrate.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use silkmoth_collection::codec;
use silkmoth_collection::SetIdx;

use crate::crc32::crc32;
use crate::{EngineState, StorageError};

const SNAP_MAGIC: &[u8; 4] = b"SMSS";
const SNAP_VERSION: u32 = 2;
/// Fixed-size header: magic, version, seq, update_seq, epoch, next_id,
/// n_live, n_dead.
const SNAP_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 4;

/// The positional metadata a snapshot records alongside the engine
/// state: which generation it is, how many updates the store had
/// committed when it was taken (the base for WAL record sequence
/// numbers), and the failover epoch of the history it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotMeta {
    /// Generation number (matches the file name).
    pub seq: u64,
    /// Total committed updates at checkpoint time.
    pub update_seq: u64,
    /// Failover epoch; bumped by [`Store::bump_epoch`](crate::Store::bump_epoch).
    pub epoch: u64,
}

/// Serializes one snapshot generation to bytes.
pub fn snapshot_bytes(meta: SnapshotMeta, state: &EngineState) -> Vec<u8> {
    let sets: Vec<&Vec<String>> = state.live.iter().map(|(_, set)| set).collect();
    let payload = codec::encode_sets(&sets, state.tokenization);
    let mut out = Vec::with_capacity(
        SNAP_HEADER_LEN + 12 + 4 * (state.live.len() + state.dead.len()) + payload.len(),
    );
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&meta.seq.to_le_bytes());
    out.extend_from_slice(&meta.update_seq.to_le_bytes());
    out.extend_from_slice(&meta.epoch.to_le_bytes());
    out.extend_from_slice(&state.next_id.to_le_bytes());
    out.extend_from_slice(&(state.live.len() as u32).to_le_bytes());
    out.extend_from_slice(&(state.dead.len() as u32).to_le_bytes());
    for &(id, _) in &state.live {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for &id in &state.dead {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses and fully validates snapshot bytes: magic, version, CRC,
/// declared lengths, id ordering. Returns the snapshot metadata and the
/// recovered state.
pub fn parse_snapshot(
    bytes: &[u8],
    file: &str,
) -> Result<(SnapshotMeta, EngineState), StorageError> {
    let corrupt = |detail: String| StorageError::Corrupt {
        file: file.to_owned(),
        detail,
    };
    if bytes.len() < 4 || &bytes[..4] != SNAP_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    if bytes.len() < SNAP_HEADER_LEN + 8 + 4 {
        return Err(corrupt("truncated header".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != SNAP_VERSION {
        return Err(corrupt(format!(
            "unknown snapshot format version {version}"
        )));
    }
    let body = &bytes[..bytes.len() - 4];
    let want_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != want_crc {
        return Err(corrupt("CRC mismatch".into()));
    }
    let meta = SnapshotMeta {
        seq: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        update_seq: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
        epoch: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
    };
    let next_id = u32::from_le_bytes(bytes[32..36].try_into().expect("4 bytes"));
    let n_live = u32::from_le_bytes(bytes[36..40].try_into().expect("4 bytes")) as usize;
    let n_dead = u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes")) as usize;
    let ids_end = SNAP_HEADER_LEN
        .checked_add(4 * (n_live + n_dead))
        .ok_or_else(|| corrupt("id counts overflow".into()))?;
    if body.len() < ids_end + 8 {
        return Err(corrupt("declared id lists past end of file".into()));
    }
    let read_ids = |from: usize, n: usize| -> Vec<SetIdx> {
        (0..n)
            .map(|i| {
                u32::from_le_bytes(
                    body[from + 4 * i..from + 4 * i + 4]
                        .try_into()
                        .expect("4 bytes"),
                )
            })
            .collect()
    };
    let live_ids = read_ids(SNAP_HEADER_LEN, n_live);
    let dead = read_ids(SNAP_HEADER_LEN + 4 * n_live, n_dead);
    let payload_len =
        u64::from_le_bytes(body[ids_end..ids_end + 8].try_into().expect("8 bytes")) as usize;
    if body.len() != ids_end + 8 + payload_len {
        return Err(corrupt(format!(
            "payload length {payload_len} does not match file size"
        )));
    }
    let (sets, tokenization) =
        codec::decode_sets(&body[ids_end + 8..]).map_err(StorageError::Codec)?;
    if sets.len() != n_live {
        return Err(corrupt(format!(
            "payload holds {} sets but header declares {n_live}",
            sets.len()
        )));
    }
    let state = EngineState {
        live: live_ids.into_iter().zip(sets).collect(),
        dead,
        next_id,
        tokenization,
    };
    state.validate()?;
    Ok((meta, state))
}

/// Reads and validates one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<(SnapshotMeta, EngineState), StorageError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StorageError::io(format!("reading {}", path.display())))?;
    parse_snapshot(&bytes, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_collection::Tokenization;

    fn state() -> EngineState {
        EngineState {
            live: vec![
                (0, vec!["a b".into(), "c".into()]),
                (2, vec!["d e f".into()]),
                (5, vec![]),
            ],
            dead: vec![1, 3, 4],
            next_id: 6,
            tokenization: Tokenization::Whitespace,
        }
    }

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            seq: 7,
            update_seq: 41,
            epoch: 3,
        }
    }

    #[test]
    fn roundtrip() {
        let s = state();
        let bytes = snapshot_bytes(meta(), &s);
        let (back_meta, back) = parse_snapshot(&bytes, "test").unwrap();
        assert_eq!(back_meta, meta());
        assert_eq!(back, s);
    }

    #[test]
    fn every_truncation_is_an_error() {
        let bytes = snapshot_bytes(meta(), &state());
        for cut in 0..bytes.len() {
            assert!(
                parse_snapshot(&bytes[..cut], "test").is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_an_error() {
        // The trailing CRC covers every byte, so any single-byte
        // corruption must be rejected (a flip inside the CRC field
        // itself included).
        let bytes = snapshot_bytes(meta(), &state());
        let mut copy = bytes.clone();
        for i in 0..copy.len() {
            copy[i] ^= 0x40;
            assert!(parse_snapshot(&copy, "test").is_err(), "flip at {i}");
            copy[i] = bytes[i];
        }
    }

    #[test]
    fn unknown_version_rejected_by_name() {
        let mut bytes = snapshot_bytes(meta(), &state());
        bytes[4] = 9;
        let err = parse_snapshot(&bytes, "test").unwrap_err();
        // Version is checked before the CRC so the message names the
        // real problem, not a checksum mismatch.
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn inconsistent_id_lists_rejected() {
        let mut s = state();
        s.dead.push(0); // 0 is live
        s.dead.sort_unstable();
        let bytes = snapshot_bytes(meta(), &s);
        assert!(matches!(
            parse_snapshot(&bytes, "test"),
            Err(StorageError::BadState(_))
        ));
    }
}
