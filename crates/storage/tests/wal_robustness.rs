//! WAL robustness: recovery from a damaged log must yield a **named**
//! [`StorageError`] or a **consistent earlier state** (the engine after
//! some prefix of the committed updates) — never a panic and never a
//! silently wrong engine. Mirrors `codec_hardening.rs`: every-prefix
//! truncation plus seeded random byte-flip fuzz.
//!
//! The consistency oracle is exact: for a recovery that reports `k`
//! records replayed, the recovered engine's [`capture`]d state must
//! equal the in-memory engine that applied exactly the first `k`
//! updates. A corrupted-but-accepted record would change the captured
//! raw texts or id bookkeeping and fail the oracle — this is what the
//! per-record CRC is load-bearing for.
//!
//! [`capture`]: silkmoth_storage::StoreEngine::capture

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silkmoth_collection::Collection;
use silkmoth_core::{CompactionPolicy, Engine, EngineConfig, RelatednessMetric, Update};
use silkmoth_storage::{EngineState, StorageError, Store, StoreConfig, StoreEngine};
use silkmoth_text::SimilarityFunction;

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    )
}

fn base_sets() -> Vec<Vec<String>> {
    (0..6)
        .map(|i| vec![format!("w{} shared{}", i % 4, i % 2)])
        .collect()
}

fn updates() -> Vec<Update> {
    vec![
        Update::Append(vec![vec!["alpha beta".into()], vec!["gamma".into()]]),
        Update::Remove(vec![1, 4]),
        Update::Compact,
        Update::Append(vec![vec!["delta epsilon".into()]]),
        Update::Remove(vec![0]),
        Update::Append(vec![vec!["zeta".into()]]),
    ]
}

fn fresh_engine(raw: &[Vec<String>]) -> Engine {
    Engine::new(Collection::build(raw, cfg().tokenization()), cfg()).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("silkmoth-wal-robust-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The expected engine state after each update-count prefix:
/// `mirrors[k]` is the state having applied the first `k` updates.
fn prefix_mirrors(raw: &[Vec<String>], updates: &[Update]) -> Vec<EngineState> {
    let mut engine = fresh_engine(raw);
    let mut states = vec![engine.capture()];
    for u in updates {
        engine.apply(u.clone()).unwrap();
        states.push(engine.capture());
    }
    states
}

/// Records the scripted run once and hands back the WAL bytes (the
/// snapshot file is copied alongside for each damaged replica).
fn record_wal(dir: &Path) -> Vec<u8> {
    let mut store = Store::create(dir, fresh_engine(&base_sets()), StoreConfig::default()).unwrap();
    for u in updates() {
        store.apply(u).unwrap();
    }
    drop(store);
    std::fs::read(dir.join("wal-0-0.log")).unwrap()
}

/// Records the same scripted run with a tiny segment threshold, so the
/// records land spread over several sealed segments plus one active
/// tail. Returns every segment as `(file name, bytes)` in order.
fn record_segmented(dir: &Path, threshold: u64, min_segments: usize) -> Vec<(String, Vec<u8>)> {
    let store_cfg = StoreConfig {
        sync: true,
        policy: CompactionPolicy::default().segment_at_wal_bytes(threshold),
    };
    let mut store = Store::create(dir, fresh_engine(&base_sets()), store_cfg).unwrap();
    for u in updates() {
        store.apply(u).unwrap();
    }
    drop(store);
    let segs: Vec<(String, Vec<u8>)> = (0..)
        .map_while(|n| {
            let name = format!("wal-0-{n}.log");
            std::fs::read(dir.join(&name)).ok().map(|b| (name, b))
        })
        .collect();
    assert!(
        segs.len() >= min_segments,
        "the {threshold}-byte threshold should seal into >= {min_segments} segments, got {}",
        segs.len()
    );
    segs
}

/// Replaces the replica's WAL with `wal` and opens the store,
/// asserting the robustness contract. Returns how many records a
/// successful recovery replayed.
fn open_damaged(master: &Path, replica: &Path, wal: &[u8], what: &str) -> Option<u64> {
    let _ = std::fs::remove_dir_all(replica);
    std::fs::create_dir_all(replica).unwrap();
    std::fs::copy(
        master.join("snapshot-0.smc"),
        replica.join("snapshot-0.smc"),
    )
    .unwrap();
    std::fs::write(replica.join("wal-0-0.log"), wal).unwrap();
    match Store::<Engine>::open(replica, &cfg(), StoreConfig::default()) {
        Ok((store, report)) => {
            let mirrors = prefix_mirrors(&base_sets(), &updates());
            let k = report.wal_replayed as usize;
            assert!(k < mirrors.len(), "{what}: replayed more than written");
            assert_eq!(
                store.engine().capture(),
                mirrors[k],
                "{what}: recovered state is not the {k}-update prefix state"
            );
            Some(report.wal_replayed)
        }
        Err(e) => {
            // A named error is acceptable; what matters is that it IS
            // a StorageError (we got here without panicking) with a
            // readable message.
            let _: &StorageError = &e;
            assert!(!e.to_string().is_empty());
            None
        }
    }
}

#[test]
fn every_prefix_truncation_recovers_a_consistent_prefix_state() {
    let master = temp_dir("trunc-master");
    let wal = record_wal(&master);
    let replica = temp_dir("trunc-replica");
    let mut seen_full = false;
    let mut seen_partial = false;
    for cut in 0..=wal.len() {
        let replayed = open_damaged(&master, &replica, &wal[..cut], &format!("cut at {cut}"));
        // Truncation is pure structural damage: recovery must always
        // succeed (discarding the torn tail), never hard-error.
        let replayed = replayed.unwrap_or_else(|| panic!("cut at {cut} must recover"));
        seen_full |= replayed == updates().len() as u64;
        seen_partial |= replayed > 0 && replayed < updates().len() as u64;
    }
    assert!(seen_full, "the untruncated file replays fully");
    assert!(seen_partial, "mid-file cuts replay proper prefixes");
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn byte_flip_fuzz_never_panics_and_never_serves_a_wrong_state() {
    let master = temp_dir("flip-master");
    let wal = record_wal(&master);
    let replica = temp_dir("flip-replica");
    let rng = &mut StdRng::seed_from_u64(0x5111_6d07);
    let mut outcomes = [0usize; 2]; // [recovered, errored]
    for round in 0..200 {
        let mut damaged = wal.clone();
        let pos = rng.random_range(0..damaged.len());
        let bit = rng.random_range(0..8u32);
        damaged[pos] ^= 1 << bit;
        let what = format!("round {round}: flip bit {bit} of byte {pos}");
        match open_damaged(&master, &replica, &damaged, &what) {
            Some(_) => outcomes[0] += 1,
            None => outcomes[1] += 1,
        }
    }
    // Flips in record frames/payloads truncate to a prefix state;
    // flips in the header discard the whole WAL or (version field)
    // produce a named error. Recovery must happen for at least some
    // flips — every round already passed the no-panic + consistency
    // oracle above.
    assert!(outcomes[0] > 0, "some flips recover a prefix: {outcomes:?}");
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn a_flip_in_the_last_record_is_caught_by_the_crc() {
    // The sharpest form of the CRC claim: flip EVERY bit of the last
    // record's payload one at a time. Without the per-record CRC many
    // of these would decode as a *different, plausible* update (a
    // changed element string, a different removed id) and recovery
    // would serve a silently wrong engine. With the CRC, every one of
    // them must recover exactly the all-but-last prefix state.
    let master = temp_dir("lastrec-master");
    let wal = record_wal(&master);
    let replica = temp_dir("lastrec-replica");
    let n = updates().len() as u64;

    // Find the last record's frame by walking the records.
    let mut pos = 28; // version-2 segment header
    let mut last_start = pos;
    while pos < wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        last_start = pos;
        pos += 8 + len;
    }
    assert_eq!(pos, wal.len(), "walked cleanly to the end");

    for byte in last_start + 8..wal.len() {
        for bit in 0..8 {
            let mut damaged = wal.clone();
            damaged[byte] ^= 1 << bit;
            let what = format!("flip bit {bit} of payload byte {byte}");
            let replayed = open_damaged(&master, &replica, &damaged, &what)
                .unwrap_or_else(|| panic!("{what}: payload flips are structural, must recover"));
            assert_eq!(replayed, n - 1, "{what}: last record must be discarded");
        }
    }
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn corrupt_header_on_a_wal_with_records_is_a_hard_error_not_a_silent_discard() {
    // The header is written and fsync'd before any record is ever
    // acknowledged, so no crash produces a full WAL with a bad
    // magic/seq — that shape is always corruption. Discarding it as a
    // "torn tail" would silently drop every committed record, so it
    // must be a named error instead.
    let master = temp_dir("hdrcorrupt-master");
    let wal = record_wal(&master);
    let replica = temp_dir("hdrcorrupt-replica");
    for (pos, what) in [(0usize, "magic"), (8, "generation")] {
        let mut damaged = wal.clone();
        damaged[pos] ^= 0x01;
        let _ = std::fs::remove_dir_all(&replica);
        std::fs::create_dir_all(&replica).unwrap();
        std::fs::copy(
            master.join("snapshot-0.smc"),
            replica.join("snapshot-0.smc"),
        )
        .unwrap();
        std::fs::write(replica.join("wal-0-0.log"), &damaged).unwrap();
        let err = Store::<Engine>::open(&replica, &cfg(), StoreConfig::default()).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { .. }),
            "flipped {what}: {err}"
        );

        // The same damage on a header-ONLY file (no records to lose)
        // is the torn-creation crash window: recovery proceeds with an
        // empty log.
        let replayed = open_damaged(&master, &replica, &damaged[..28], &format!("bare {what}"))
            .expect("header-only damage must recover");
        assert_eq!(replayed, 0);
    }
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

/// Installs the given segment files in a fresh replica and opens it,
/// holding recovery to the same contract as [`open_damaged`].
fn open_segmented(
    master: &Path,
    replica: &Path,
    segs: &[(String, Vec<u8>)],
    what: &str,
) -> Option<u64> {
    let _ = std::fs::remove_dir_all(replica);
    std::fs::create_dir_all(replica).unwrap();
    std::fs::copy(
        master.join("snapshot-0.smc"),
        replica.join("snapshot-0.smc"),
    )
    .unwrap();
    for (name, bytes) in segs {
        std::fs::write(replica.join(name), bytes).unwrap();
    }
    match Store::<Engine>::open(replica, &cfg(), StoreConfig::default()) {
        Ok((store, report)) => {
            let mirrors = prefix_mirrors(&base_sets(), &updates());
            let k = report.wal_replayed as usize;
            assert!(k < mirrors.len(), "{what}: replayed more than written");
            assert_eq!(
                store.engine().capture(),
                mirrors[k],
                "{what}: recovered state is not the {k}-update prefix state"
            );
            Some(report.wal_replayed)
        }
        Err(e) => {
            let _: &StorageError = &e;
            assert!(!e.to_string().is_empty(), "{what}");
            None
        }
    }
}

#[test]
fn final_segment_truncation_recovers_but_sealed_truncation_is_corruption() {
    let master = temp_dir("seg-trunc-master");
    let segs = record_segmented(&master, 48, 3);
    let replica = temp_dir("seg-trunc-replica");
    let n = updates().len() as u64;

    assert_eq!(
        open_segmented(&master, &replica, &segs, "intact"),
        Some(n),
        "the undamaged multi-segment log replays fully"
    );

    // The seal creates the successor file only after the crossing
    // append committed, so a crash in that window leaves the full
    // just-sealed segment as the last file — and a crash mid-append
    // additionally tears its tail. Simulate both: drop the trailing
    // empty segment, then cut every prefix of the new final segment.
    // That is pure crash damage and must always recover a consistent
    // prefix.
    assert_eq!(segs.last().unwrap().1.len(), 28, "active segment is empty");
    let trimmed = &segs[..segs.len() - 1];
    let (last_name, last_bytes) = trimmed.last().unwrap().clone();
    let mut seen_partial = false;
    for cut in 0..=last_bytes.len() {
        let mut damaged = trimmed[..trimmed.len() - 1].to_vec();
        damaged.push((last_name.clone(), last_bytes[..cut].to_vec()));
        let what = format!("final-segment cut at {cut}");
        let replayed = open_segmented(&master, &replica, &damaged, &what)
            .unwrap_or_else(|| panic!("{what} must recover"));
        seen_partial |= replayed < n;
    }
    assert!(seen_partial, "mid-segment cuts replay proper prefixes");

    // A torn tail in a SEALED segment can never come from a crash —
    // its successor only exists because the segment was complete when
    // sealed — so it must be a hard error, not a silent prefix.
    for (i, (name, bytes)) in segs.iter().enumerate().take(segs.len() - 1) {
        let mut damaged = segs.to_vec();
        damaged[i] = (name.clone(), bytes[..bytes.len() - 1].to_vec());
        assert_eq!(
            open_segmented(&master, &replica, &damaged, &format!("{name} torn")),
            None,
            "torn tail in sealed segment {name} must be a hard error"
        );
    }
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn segment_byte_flip_fuzz_respects_the_seal() {
    let master = temp_dir("seg-flip-master");
    let segs = record_segmented(&master, 48, 3);
    let replica = temp_dir("seg-flip-replica");
    let rng = &mut StdRng::seed_from_u64(0x5e6_f1e5);
    let (mut recovered, mut errored) = (0usize, 0usize);
    for round in 0..150 {
        let si = rng.random_range(0..segs.len());
        let mut damaged = segs.to_vec();
        let pos = rng.random_range(0..damaged[si].1.len());
        damaged[si].1[pos] ^= 1 << rng.random_range(0..8u32);
        let what = format!("round {round}: flip byte {pos} of {}", segs[si].0);
        match open_segmented(&master, &replica, &damaged, &what) {
            // The oracle inside open_segmented already proved any Ok is
            // a consistent prefix; flips in a sealed segment must land
            // in the Err arm (the seal makes damage there unambiguous).
            Some(_) => {
                assert_eq!(si, segs.len() - 1, "{what}: sealed-segment flip recovered");
                recovered += 1;
            }
            None => errored += 1,
        }
    }
    assert!(
        recovered > 0 && errored > 0,
        "both outcomes exercised: {recovered} recovered, {errored} errored"
    );
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn sealed_segment_header_corruption_is_a_named_error() {
    let master = temp_dir("seg-hdr-master");
    let segs = record_segmented(&master, 48, 3);
    let replica = temp_dir("seg-hdr-replica");
    // One flipped byte in each field of a sealed segment's header:
    // magic, version, generation, segment index, base sequence. Every
    // one breaks an invariant recovery checks by name.
    for (pos, what) in [
        (0usize, "magic"),
        (4, "version"),
        (8, "generation"),
        (16, "segment index"),
        (20, "base sequence"),
    ] {
        let mut damaged = segs.to_vec();
        damaged[1].1[pos] ^= 0x01;
        assert_eq!(
            open_segmented(&master, &replica, &damaged, what),
            None,
            "flipped {what} byte of a sealed segment must be a hard error"
        );
    }
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn legacy_v1_single_file_wal_still_recovers() {
    // A store written before segmentation: one `wal-<gen>.log` with the
    // 16-byte version-1 header. Recovery must replay it fully, and new
    // records after the open must land in a version-2 segment that a
    // second recovery stitches onto the legacy log.
    let master = temp_dir("v1-master");
    let wal = record_wal(&master);
    let replica = temp_dir("v1-replica");
    std::fs::create_dir_all(&replica).unwrap();
    std::fs::copy(
        master.join("snapshot-0.smc"),
        replica.join("snapshot-0.smc"),
    )
    .unwrap();
    // Re-head the recorded records with a version-1 header.
    let mut v1 = Vec::new();
    v1.extend_from_slice(b"SMWL");
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(&0u64.to_le_bytes());
    v1.extend_from_slice(&wal[28..]);
    std::fs::write(replica.join("wal-0.log"), &v1).unwrap();

    let n = updates().len() as u64;
    let (mut store, report) =
        Store::<Engine>::open(&replica, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(report.wal_replayed, n, "every v1 record replays");
    let mirrors = prefix_mirrors(&base_sets(), &updates());
    assert_eq!(store.engine().capture(), mirrors[n as usize]);

    store
        .apply(Update::Append(vec![vec!["post-upgrade".into()]]))
        .unwrap();
    drop(store);
    let (store, report) = Store::<Engine>::open(&replica, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(
        report.wal_replayed,
        n + 1,
        "the v1 log and its v2 continuation stitch into one history"
    );
    let mut mirror = fresh_engine(&base_sets());
    for u in updates() {
        mirror.apply(u).unwrap();
    }
    mirror
        .apply(Update::Append(vec![vec!["post-upgrade".into()]]))
        .unwrap();
    assert_eq!(store.engine().capture(), mirror.capture());
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn corrupt_snapshot_is_a_named_error_not_a_panic() {
    let master = temp_dir("snapcorrupt");
    let _ = record_wal(&master);
    let snap_path = master.join("snapshot-0.smc");
    let snap = std::fs::read(&snap_path).unwrap();
    let rng = &mut StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let mut damaged = snap.clone();
        let pos = rng.random_range(0..damaged.len());
        damaged[pos] ^= 1 << rng.random_range(0..8u32);
        std::fs::write(&snap_path, &damaged).unwrap();
        let err = Store::<Engine>::open(&master, &cfg(), StoreConfig::default()).unwrap_err();
        assert!(
            matches!(err, StorageError::NoValidSnapshot { .. }),
            "single corrupt generation: {err}"
        );
    }
    std::fs::write(&snap_path, &snap).unwrap();
    assert!(Store::<Engine>::open(&master, &cfg(), StoreConfig::default()).is_ok());
    let _ = std::fs::remove_dir_all(&master);
}
