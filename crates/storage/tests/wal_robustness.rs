//! WAL robustness: recovery from a damaged log must yield a **named**
//! [`StorageError`] or a **consistent earlier state** (the engine after
//! some prefix of the committed updates) — never a panic and never a
//! silently wrong engine. Mirrors `codec_hardening.rs`: every-prefix
//! truncation plus seeded random byte-flip fuzz.
//!
//! The consistency oracle is exact: for a recovery that reports `k`
//! records replayed, the recovered engine's [`capture`]d state must
//! equal the in-memory engine that applied exactly the first `k`
//! updates. A corrupted-but-accepted record would change the captured
//! raw texts or id bookkeeping and fail the oracle — this is what the
//! per-record CRC is load-bearing for.
//!
//! [`capture`]: silkmoth_storage::StoreEngine::capture

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silkmoth_collection::Collection;
use silkmoth_core::{Engine, EngineConfig, RelatednessMetric, Update};
use silkmoth_storage::{EngineState, StorageError, Store, StoreConfig, StoreEngine};
use silkmoth_text::SimilarityFunction;

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    )
}

fn base_sets() -> Vec<Vec<String>> {
    (0..6)
        .map(|i| vec![format!("w{} shared{}", i % 4, i % 2)])
        .collect()
}

fn updates() -> Vec<Update> {
    vec![
        Update::Append(vec![vec!["alpha beta".into()], vec!["gamma".into()]]),
        Update::Remove(vec![1, 4]),
        Update::Compact,
        Update::Append(vec![vec!["delta epsilon".into()]]),
        Update::Remove(vec![0]),
        Update::Append(vec![vec!["zeta".into()]]),
    ]
}

fn fresh_engine(raw: &[Vec<String>]) -> Engine {
    Engine::new(Collection::build(raw, cfg().tokenization()), cfg()).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("silkmoth-wal-robust-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The expected engine state after each update-count prefix:
/// `mirrors[k]` is the state having applied the first `k` updates.
fn prefix_mirrors(raw: &[Vec<String>], updates: &[Update]) -> Vec<EngineState> {
    let mut engine = fresh_engine(raw);
    let mut states = vec![engine.capture()];
    for u in updates {
        engine.apply(u.clone()).unwrap();
        states.push(engine.capture());
    }
    states
}

/// Records the scripted run once and hands back the WAL bytes (the
/// snapshot file is copied alongside for each damaged replica).
fn record_wal(dir: &Path) -> Vec<u8> {
    let mut store = Store::create(dir, fresh_engine(&base_sets()), StoreConfig::default()).unwrap();
    for u in updates() {
        store.apply(u).unwrap();
    }
    drop(store);
    std::fs::read(dir.join("wal-0.log")).unwrap()
}

/// Replaces the replica's WAL with `wal` and opens the store,
/// asserting the robustness contract. Returns how many records a
/// successful recovery replayed.
fn open_damaged(master: &Path, replica: &Path, wal: &[u8], what: &str) -> Option<u64> {
    let _ = std::fs::remove_dir_all(replica);
    std::fs::create_dir_all(replica).unwrap();
    std::fs::copy(
        master.join("snapshot-0.smc"),
        replica.join("snapshot-0.smc"),
    )
    .unwrap();
    std::fs::write(replica.join("wal-0.log"), wal).unwrap();
    match Store::<Engine>::open(replica, &cfg(), StoreConfig::default()) {
        Ok((store, report)) => {
            let mirrors = prefix_mirrors(&base_sets(), &updates());
            let k = report.wal_replayed as usize;
            assert!(k < mirrors.len(), "{what}: replayed more than written");
            assert_eq!(
                store.engine().capture(),
                mirrors[k],
                "{what}: recovered state is not the {k}-update prefix state"
            );
            Some(report.wal_replayed)
        }
        Err(e) => {
            // A named error is acceptable; what matters is that it IS
            // a StorageError (we got here without panicking) with a
            // readable message.
            let _: &StorageError = &e;
            assert!(!e.to_string().is_empty());
            None
        }
    }
}

#[test]
fn every_prefix_truncation_recovers_a_consistent_prefix_state() {
    let master = temp_dir("trunc-master");
    let wal = record_wal(&master);
    let replica = temp_dir("trunc-replica");
    let mut seen_full = false;
    let mut seen_partial = false;
    for cut in 0..=wal.len() {
        let replayed = open_damaged(&master, &replica, &wal[..cut], &format!("cut at {cut}"));
        // Truncation is pure structural damage: recovery must always
        // succeed (discarding the torn tail), never hard-error.
        let replayed = replayed.unwrap_or_else(|| panic!("cut at {cut} must recover"));
        seen_full |= replayed == updates().len() as u64;
        seen_partial |= replayed > 0 && replayed < updates().len() as u64;
    }
    assert!(seen_full, "the untruncated file replays fully");
    assert!(seen_partial, "mid-file cuts replay proper prefixes");
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn byte_flip_fuzz_never_panics_and_never_serves_a_wrong_state() {
    let master = temp_dir("flip-master");
    let wal = record_wal(&master);
    let replica = temp_dir("flip-replica");
    let rng = &mut StdRng::seed_from_u64(0x5111_6d07);
    let mut outcomes = [0usize; 2]; // [recovered, errored]
    for round in 0..200 {
        let mut damaged = wal.clone();
        let pos = rng.random_range(0..damaged.len());
        let bit = rng.random_range(0..8u32);
        damaged[pos] ^= 1 << bit;
        let what = format!("round {round}: flip bit {bit} of byte {pos}");
        match open_damaged(&master, &replica, &damaged, &what) {
            Some(_) => outcomes[0] += 1,
            None => outcomes[1] += 1,
        }
    }
    // Flips in record frames/payloads truncate to a prefix state;
    // flips in the header discard the whole WAL or (version field)
    // produce a named error. Recovery must happen for at least some
    // flips — every round already passed the no-panic + consistency
    // oracle above.
    assert!(outcomes[0] > 0, "some flips recover a prefix: {outcomes:?}");
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn a_flip_in_the_last_record_is_caught_by_the_crc() {
    // The sharpest form of the CRC claim: flip EVERY bit of the last
    // record's payload one at a time. Without the per-record CRC many
    // of these would decode as a *different, plausible* update (a
    // changed element string, a different removed id) and recovery
    // would serve a silently wrong engine. With the CRC, every one of
    // them must recover exactly the all-but-last prefix state.
    let master = temp_dir("lastrec-master");
    let wal = record_wal(&master);
    let replica = temp_dir("lastrec-replica");
    let n = updates().len() as u64;

    // Find the last record's frame by walking the records.
    let mut pos = 16; // header
    let mut last_start = pos;
    while pos < wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        last_start = pos;
        pos += 8 + len;
    }
    assert_eq!(pos, wal.len(), "walked cleanly to the end");

    for byte in last_start + 8..wal.len() {
        for bit in 0..8 {
            let mut damaged = wal.clone();
            damaged[byte] ^= 1 << bit;
            let what = format!("flip bit {bit} of payload byte {byte}");
            let replayed = open_damaged(&master, &replica, &damaged, &what)
                .unwrap_or_else(|| panic!("{what}: payload flips are structural, must recover"));
            assert_eq!(replayed, n - 1, "{what}: last record must be discarded");
        }
    }
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn corrupt_header_on_a_wal_with_records_is_a_hard_error_not_a_silent_discard() {
    // The header is written and fsync'd before any record is ever
    // acknowledged, so no crash produces a full WAL with a bad
    // magic/seq — that shape is always corruption. Discarding it as a
    // "torn tail" would silently drop every committed record, so it
    // must be a named error instead.
    let master = temp_dir("hdrcorrupt-master");
    let wal = record_wal(&master);
    let replica = temp_dir("hdrcorrupt-replica");
    for (pos, what) in [(0usize, "magic"), (8, "seq")] {
        let mut damaged = wal.clone();
        damaged[pos] ^= 0x01;
        let _ = std::fs::remove_dir_all(&replica);
        std::fs::create_dir_all(&replica).unwrap();
        std::fs::copy(
            master.join("snapshot-0.smc"),
            replica.join("snapshot-0.smc"),
        )
        .unwrap();
        std::fs::write(replica.join("wal-0.log"), &damaged).unwrap();
        let err = Store::<Engine>::open(&replica, &cfg(), StoreConfig::default()).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { .. }),
            "flipped {what}: {err}"
        );

        // The same damage on a header-ONLY file (no records to lose)
        // is the torn-creation crash window: recovery proceeds with an
        // empty log.
        let replayed = open_damaged(&master, &replica, &damaged[..16], &format!("bare {what}"))
            .expect("header-only damage must recover");
        assert_eq!(replayed, 0);
    }
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&replica);
}

#[test]
fn corrupt_snapshot_is_a_named_error_not_a_panic() {
    let master = temp_dir("snapcorrupt");
    let _ = record_wal(&master);
    let snap_path = master.join("snapshot-0.smc");
    let snap = std::fs::read(&snap_path).unwrap();
    let rng = &mut StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let mut damaged = snap.clone();
        let pos = rng.random_range(0..damaged.len());
        damaged[pos] ^= 1 << rng.random_range(0..8u32);
        std::fs::write(&snap_path, &damaged).unwrap();
        let err = Store::<Engine>::open(&master, &cfg(), StoreConfig::default()).unwrap_err();
        assert!(
            matches!(err, StorageError::NoValidSnapshot { .. }),
            "single corrupt generation: {err}"
        );
    }
    std::fs::write(&snap_path, &snap).unwrap();
    assert!(Store::<Engine>::open(&master, &cfg(), StoreConfig::default()).is_ok());
    let _ = std::fs::remove_dir_all(&master);
}
