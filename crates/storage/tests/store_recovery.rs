//! Store lifecycle tests over the unsharded [`Engine`]: create → apply
//! → crash (drop) → open must recover an engine **byte-identical** to
//! the in-memory engine that executed the same committed updates, and
//! the generation rotation / auto-policy machinery must behave.
//!
//! (The full random-interleaving differential harness — including
//! shard counts {1, 2, 7} — lives in
//! `crates/server/tests/recovery_equivalence.rs`; this file pins the
//! storage semantics themselves.)

use std::path::PathBuf;

use silkmoth_collection::Collection;
use silkmoth_core::{
    CompactionPolicy, Engine, EngineConfig, RelatednessMetric, Update, UpdateError,
};
use silkmoth_storage::{load_snapshot, StorageError, Store, StoreConfig, StoreEngine};
use silkmoth_text::SimilarityFunction;

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    )
}

fn base_sets() -> Vec<Vec<String>> {
    (0..8)
        .map(|i| {
            (0..2)
                .map(|j| format!("w{} w{} shared{}", (i * 2 + j) % 5, (i + j) % 3, i % 4))
                .collect()
        })
        .collect()
}

fn fresh_engine(raw: &[Vec<String>]) -> Engine {
    Engine::new(Collection::build(raw, cfg().tokenization()), cfg()).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "silkmoth-store-recovery-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Search output as comparable (id, score bits) pairs.
fn search_bits(engine: &Engine, elems: &[&str]) -> Vec<(u32, u64)> {
    let r = engine.collection().encode_set(elems);
    engine
        .search(&r)
        .results
        .into_iter()
        .map(|(sid, score)| (sid, score.to_bits()))
        .collect()
}

/// Asserts two engines agree byte-for-byte on state and on a few
/// searches.
fn assert_engines_identical(got: &Engine, want: &Engine, what: &str) {
    assert_eq!(got.capture(), want.capture(), "{what}: collection state");
    for probe in [
        vec!["w0 w1 shared0", "w2 w0 shared2"],
        vec!["w4 w2 shared3"],
        vec!["nothing matches this"],
        vec!["fresh unique marker"],
    ] {
        assert_eq!(
            search_bits(got, &probe),
            search_bits(want, &probe),
            "{what}: search {probe:?}"
        );
    }
}

#[test]
fn crash_recovery_replays_the_wal() {
    let dir = temp_dir("replay");
    let raw = base_sets();
    let updates = vec![
        Update::Append(vec![
            vec!["fresh unique marker".into()],
            vec!["w0 w1".into()],
        ]),
        Update::Remove(vec![1, 3]),
        Update::Remove(vec![1]), // idempotent re-remove is committed too
        Update::Compact,
        Update::Append(vec![vec!["post compact set".into()]]),
        Update::Remove(vec![0]),
    ];

    let mut store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    let mut mirror = fresh_engine(&raw);
    for u in &updates {
        store.apply(u.clone()).unwrap();
        mirror.apply(u.clone()).unwrap();
    }
    assert_eq!(store.status().wal_records, updates.len() as u64);
    assert!(store.status().last_fsync_ok);
    drop(store); // crash: no snapshot was ever taken after creation

    let (store, report) = Store::<Engine>::open(&dir, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(report.snapshot_seq, 0);
    assert_eq!(report.wal_replayed, updates.len() as u64);
    assert_eq!(report.wal_discarded, None);
    assert_eq!(report.snapshots_skipped, 0);
    assert_engines_identical(store.engine(), &mirror, "recovered vs in-memory");

    // Skipping WAL replay (snapshot only) would NOT reproduce the
    // state — i.e. the replay step is load-bearing in this test.
    let (meta, snap_state) = load_snapshot(&dir.join("snapshot-0.smc")).unwrap();
    assert_eq!(meta.seq, 0);
    let snapshot_only = Engine::restore(&cfg(), snap_state).unwrap();
    assert_ne!(snapshot_only.capture(), mirror.capture());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_rotates_generations_atomically() {
    let dir = temp_dir("rotate");
    let raw = base_sets();
    let mut store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    let mut mirror = fresh_engine(&raw);
    for u in [
        Update::Append(vec![vec!["alpha beta".into()]]),
        Update::Remove(vec![2]),
    ] {
        store.apply(u.clone()).unwrap();
        mirror.apply(u).unwrap();
    }
    let seq = store.snapshot().unwrap();
    assert_eq!(seq, 1);
    assert_eq!(store.status().wal_records, 0, "WAL rotated");
    // The old generation is retired, the new one is on disk.
    assert!(!dir.join("snapshot-0.smc").exists());
    assert!(!dir.join("wal-0-0.log").exists());
    assert!(dir.join("snapshot-1.smc").exists());
    assert!(dir.join("wal-1-0.log").exists());

    // More updates on the new generation, then crash + recover.
    store
        .apply(Update::Append(vec![vec!["gamma delta".into()]]))
        .unwrap();
    mirror
        .apply(Update::Append(vec![vec!["gamma delta".into()]]))
        .unwrap();
    drop(store);
    let (store, report) = Store::<Engine>::open(&dir, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(report.snapshot_seq, 1);
    assert_eq!(report.wal_replayed, 1);
    assert_engines_identical(store.engine(), &mirror, "post-rotation recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn policy_drives_auto_compaction_and_auto_snapshot() {
    let dir = temp_dir("policy");
    let raw = base_sets();
    let store_cfg = StoreConfig {
        sync: true,
        policy: CompactionPolicy::default()
            .compact_at_dead_ratio(0.25)
            .snapshot_at_wal_records(4),
    };
    let mut store = Store::create(&dir, fresh_engine(&raw), store_cfg).unwrap();

    // One removal of 2/8 sets = ratio 0.25: exactly at the threshold,
    // so the policy compacts right away (and logs the compaction).
    let receipt = store.apply(Update::Remove(vec![0, 5])).unwrap();
    assert!(receipt.auto_compacted);
    assert_eq!(receipt.auto_snapshot, None, "2 records < threshold 4");
    assert_eq!(store.engine().slot_len(), 6, "compacted away the dead");
    assert_eq!(store.status().wal_records, 2, "remove + compact logged");

    // Two more updates reach the WAL threshold: auto-snapshot fires and
    // resets the WAL.
    store
        .apply(Update::Append(vec![vec!["one more".into()]]))
        .unwrap();
    let receipt = store
        .apply(Update::Append(vec![vec!["and another".into()]]))
        .unwrap();
    assert_eq!(receipt.auto_snapshot, Some(1));
    assert_eq!(store.status().wal_records, 0);
    assert_eq!(store.status().auto_compactions, 1);
    assert_eq!(store.status().auto_snapshots, 1);

    // The recovered store matches an in-memory engine that performed
    // the same (auto-included) updates.
    let mut mirror = fresh_engine(&raw);
    mirror.apply(Update::Remove(vec![0, 5])).unwrap();
    mirror.apply(Update::Compact).unwrap();
    mirror
        .apply(Update::Append(vec![vec!["one more".into()]]))
        .unwrap();
    mirror
        .apply(Update::Append(vec![vec!["and another".into()]]))
        .unwrap();
    drop(store);
    let (store, report) = Store::<Engine>::open(&dir, &cfg(), store_cfg).unwrap();
    assert_eq!(report.snapshot_seq, 1);
    assert_eq!(report.wal_replayed, 0, "snapshot already holds it all");
    assert_engines_identical(store.engine(), &mirror, "auto-policy recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejected_updates_are_never_logged() {
    let dir = temp_dir("rejected");
    let raw = base_sets();
    let mut store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    let err = store.apply(Update::Remove(vec![2, 99])).unwrap_err();
    assert!(
        matches!(err, StorageError::Update(UpdateError::NoSuchSet(99))),
        "{err}"
    );
    assert_eq!(store.status().wal_records, 0, "nothing was logged");
    assert!(
        store.engine().collection().is_live(2),
        "nothing was applied"
    );
    drop(store);
    // …so recovery has nothing to trip over.
    let (store, report) = Store::<Engine>::open(&dir, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(report.wal_replayed, 0);
    assert_eq!(store.engine().live_len(), 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn create_refuses_existing_store_and_open_refuses_empty_dir() {
    let dir = temp_dir("guards");
    let raw = base_sets();
    let store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    drop(store);
    let err = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap_err();
    assert!(
        matches!(err, StorageError::AlreadyInitialized { .. }),
        "{err}"
    );

    let empty = temp_dir("guards-empty");
    std::fs::create_dir_all(&empty).unwrap();
    let err = Store::<Engine>::open(&empty, &cfg(), StoreConfig::default()).unwrap_err();
    assert!(matches!(err, StorageError::NotInitialized { .. }), "{err}");
    // A directory that does not exist at all reads the same way.
    let missing = temp_dir("guards-missing");
    let err = Store::<Engine>::open(&missing, &cfg(), StoreConfig::default()).unwrap_err();
    assert!(matches!(err, StorageError::NotInitialized { .. }), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn mismatched_serving_config_is_a_named_error() {
    let dir = temp_dir("tokmismatch");
    let raw = base_sets();
    let store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    drop(store);
    // The store holds whitespace-tokenized data; opening it for edit
    // similarity (q-gram tokenization) must fail by name, not serve
    // garbage.
    let edit_cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Eds { q: 2 },
        0.5,
        0.0,
    );
    let err = Store::<Engine>::open(&dir, &edit_cfg, StoreConfig::default()).unwrap_err();
    assert!(matches!(err, StorageError::Config(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unsynced_stores_still_recover_what_reached_disk() {
    let dir = temp_dir("nosync");
    let raw = base_sets();
    let store_cfg = StoreConfig {
        sync: false,
        policy: CompactionPolicy::DISABLED,
    };
    let mut store = Store::create(&dir, fresh_engine(&raw), store_cfg).unwrap();
    let mut mirror = fresh_engine(&raw);
    for u in [
        Update::Append(vec![vec!["x y z".into()]]),
        Update::Remove(vec![0]),
    ] {
        store.apply(u.clone()).unwrap();
        mirror.apply(u).unwrap();
    }
    // A clean drop flushes the File buffers (there is no process
    // crash here), so recovery still sees both records — sync=false
    // only weakens the guarantee under a real kill/power-cut.
    drop(store);
    let (store, report) = Store::<Engine>::open(&dir, &cfg(), store_cfg).unwrap();
    assert_eq!(report.wal_replayed, 2);
    assert_engines_identical(store.engine(), &mirror, "unsynced recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn update_seq_and_epoch_survive_rotation_and_recovery() {
    let dir = temp_dir("seq-epoch");
    let raw = base_sets();
    let mut store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    assert_eq!(store.status().update_seq, 0);
    assert_eq!(store.status().epoch, 0);

    // The commit hook fires once per committed record with the new
    // global sequence number.
    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = seen.clone();
    store.set_commit_hook(silkmoth_storage::CommitHook::new(move |seq| {
        sink.lock().unwrap().push(seq)
    }));

    store
        .apply(Update::Append(vec![vec!["one".into()]]))
        .unwrap();
    store.apply(Update::Remove(vec![0])).unwrap();
    assert_eq!(store.status().update_seq, 2);
    store.snapshot().unwrap();
    // Rotation empties the WAL but the global counter keeps going.
    assert_eq!(store.status().wal_records, 0);
    assert_eq!(store.status().update_seq, 2);
    store.apply(Update::Compact).unwrap();
    assert_eq!(store.status().update_seq, 3);
    assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);

    assert_eq!(store.bump_epoch().unwrap(), 1);
    store
        .apply(Update::Append(vec![vec!["two".into()]]))
        .unwrap();

    drop(store); // crash
    let (store, report) = Store::<Engine>::open(&dir, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(report.wal_replayed, 1);
    assert_eq!(store.status().update_seq, 4, "snapshot base + replayed");
    assert_eq!(store.status().epoch, 1, "epoch recovered from snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The lost-ack regression: when an update has durably committed and
/// applied but the *post-commit* auto-snapshot fails, `apply` must
/// return `Ok` with the failure in `maintenance_error` — an `Err` here
/// historically made callers retry an update that already happened,
/// duplicating it.
#[test]
fn committed_update_acks_despite_failed_maintenance() {
    let dir = temp_dir("lost-ack");
    let raw = base_sets();
    let store_cfg = StoreConfig {
        sync: true,
        policy: CompactionPolicy::default().snapshot_at_wal_records(1),
    };
    let mut store = Store::create(&dir, fresh_engine(&raw), store_cfg).unwrap();
    // Sabotage the auto-snapshot: rotation starts by creating the new
    // generation's WAL segment, and a directory squatting on that path
    // makes it fail — after the caller's update is already durable.
    std::fs::create_dir_all(dir.join("wal-1-0.log")).unwrap();
    let receipt = store
        .apply(Update::Append(vec![vec![
            "survives the failed snapshot".into()
        ]]))
        .unwrap();
    assert_eq!(
        receipt.outcome.appended,
        vec![8],
        "the update itself succeeded"
    );
    assert_eq!(receipt.auto_snapshot, None);
    let why = receipt
        .maintenance_error
        .expect("auto-snapshot must have failed");
    assert!(why.contains("auto-snapshot failed"), "{why}");
    // The ack was honest: the update is on disk. Nothing was
    // double-applied by the failed maintenance, and because the caller
    // got an Ok there is no reason for it to retry.
    assert_eq!(store.status().update_seq, 1);
    assert_eq!(store.engine().live_len(), 9);
    drop(store); // crash
    std::fs::remove_dir_all(dir.join("wal-1-0.log")).unwrap();
    let (store, report) = Store::<Engine>::open(&dir, &cfg(), store_cfg).unwrap();
    assert_eq!(report.wal_replayed, 1);
    assert_eq!(store.engine().live_len(), 9, "exactly one copy recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt newer generations are skipped once, quarantined (renamed
/// `*.corrupt`), and therefore invisible to the next open — which
/// reports `snapshots_skipped: 0` again instead of re-parsing garbage
/// forever.
#[test]
fn corrupt_newer_generation_is_quarantined_once() {
    let dir = temp_dir("quarantine");
    let raw = base_sets();
    let mut store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    store
        .apply(Update::Append(vec![vec!["kept".into()]]))
        .unwrap();
    drop(store);
    // A half-written future generation: garbage snapshot, torn WAL.
    std::fs::write(dir.join("snapshot-3.smc"), b"not a snapshot at all").unwrap();
    std::fs::write(dir.join("wal-3-0.log"), b"torn").unwrap();

    let (store, report) = Store::<Engine>::open(&dir, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(report.snapshot_seq, 0, "fell back to the good generation");
    assert_eq!(report.snapshots_skipped, 1);
    assert_eq!(store.engine().live_len(), 9);
    assert!(!dir.join("snapshot-3.smc").exists(), "quarantined");
    assert!(dir.join("snapshot-3.smc.corrupt").exists());
    assert!(dir.join("wal-3-0.log.corrupt").exists());
    drop(store);

    let (_store, report) = Store::<Engine>::open(&dir, &cfg(), StoreConfig::default()).unwrap();
    assert_eq!(
        report.snapshots_skipped, 0,
        "the quarantine made the second open clean"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The telemetry contract for fsync-less stores: `CommitBatch.sync`
/// is **exactly** `Duration::ZERO` when sync is off, so the fsync
/// histogram never records phantom time.
#[test]
fn no_sync_commit_reports_zero_sync_duration() {
    let dir = temp_dir("zero-sync");
    let raw = base_sets();
    let store_cfg = StoreConfig {
        sync: false,
        policy: CompactionPolicy::DISABLED,
    };
    let mut store = Store::create(&dir, fresh_engine(&raw), store_cfg).unwrap();
    let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = events.clone();
    store.set_telemetry_hook(silkmoth_storage::TelemetryHook::new(move |event| {
        sink.lock().unwrap().push(event)
    }));
    store
        .apply(Update::Append(vec![vec!["unsynced".into()]]))
        .unwrap();
    let seen = events.lock().unwrap();
    match seen.as_slice() {
        [silkmoth_storage::StoreEvent::CommitBatch {
            records,
            write,
            sync,
        }] => {
            assert_eq!(*records, 1);
            assert!(*write > std::time::Duration::ZERO);
            assert_eq!(
                *sync,
                std::time::Duration::ZERO,
                "no fsync ran, so no fsync time may be reported"
            );
        }
        other => panic!("expected exactly one CommitBatch event, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Segmented WAL end to end: a byte threshold seals segments as the
/// log grows, status reports the segment count, and recovery replays
/// across all of them into the same state as an in-memory mirror.
#[test]
fn sealed_segments_recover_identically() {
    let dir = temp_dir("segments");
    let raw = base_sets();
    let store_cfg = StoreConfig {
        sync: true,
        // Tiny threshold: every append seals the active segment.
        policy: CompactionPolicy::default().segment_at_wal_bytes(64),
    };
    let mut store = Store::create(&dir, fresh_engine(&raw), store_cfg).unwrap();
    let mut mirror = fresh_engine(&raw);
    let updates = vec![
        Update::Append(vec![vec!["segment one lives here".into()]]),
        Update::Append(vec![vec!["segment two lives here".into()]]),
        Update::Remove(vec![1, 8]),
        Update::Append(vec![vec!["segment three lives here".into()]]),
        Update::Remove(vec![8]), // idempotent re-remove crosses a seal
    ];
    for u in &updates {
        store.apply(u.clone()).unwrap();
        mirror.apply(u.clone()).unwrap();
    }
    let status = store.status();
    assert!(
        status.wal_segments > 1,
        "the 64-byte threshold must have sealed at least once (got {})",
        status.wal_segments
    );
    assert_eq!(status.wal_records, updates.len() as u64);
    assert!(dir.join("wal-0-0.log").exists());
    assert!(dir.join("wal-0-1.log").exists());
    drop(store); // crash with records spread over several segments

    let (store, report) = Store::<Engine>::open(&dir, &cfg(), store_cfg).unwrap();
    assert_eq!(report.wal_replayed, updates.len() as u64);
    assert_eq!(report.wal_discarded, None);
    assert_engines_identical(store.engine(), &mirror, "multi-segment recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_payloads_read_back_raw_and_bounded() {
    let dir = temp_dir("payloads");
    let raw = base_sets();
    let mut store = Store::create(&dir, fresh_engine(&raw), StoreConfig::default()).unwrap();
    for i in 0..5u32 {
        store
            .apply(Update::Append(vec![vec![format!("record {i}")]]))
            .unwrap();
    }
    let gen = store.status().snapshot_seq;
    let path = silkmoth_storage::wal_segment_path(&dir, gen, 0);
    let all = silkmoth_storage::read_wal_payloads(&path, gen, 0, 100).unwrap();
    assert_eq!(all.len(), 5);
    // Skip + limit slice the same stream, and payloads decode to the
    // exact updates that were committed.
    let tail = silkmoth_storage::read_wal_payloads(&path, gen, 3, 100).unwrap();
    assert_eq!(tail, all[3..].to_vec());
    let window = silkmoth_storage::read_wal_payloads(&path, gen, 1, 2).unwrap();
    assert_eq!(window, all[1..3].to_vec());
    for (i, payload) in all.iter().enumerate() {
        let decoded = silkmoth_core::wire::decode_update(payload).unwrap();
        match decoded.update {
            Update::Append(sets) => assert_eq!(sets, vec![vec![format!("record {i}")]]),
            other => panic!("unexpected update {other:?}"),
        }
    }
    // Wrong generation is a named error, not a guess.
    let err = silkmoth_storage::read_wal_payloads(&path, gen + 7, 0, 1).unwrap_err();
    assert!(
        err.to_string().contains("does not match generation"),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
