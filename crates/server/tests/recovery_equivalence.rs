//! Differential crash-recovery harness — the durable counterpart of
//! `tests/update_equivalence.rs`.
//!
//! For random interleavings of appends, removals, compactions, forced
//! snapshots, and **crashes** (drop the [`Store`] mid-sequence, reopen
//! from disk), the recovered engine must be **byte-identical** — same
//! ids, same tie order, bit-for-bit equal scores — to an in-memory
//! engine that applied the same committed updates, and hence to an
//! engine freshly built from the surviving sets. Checked
//! simultaneously for:
//!
//! * `Store<ShardedEngine>` at shard counts {1, 2, 7} (stable global
//!   ids), and
//! * `Store<Engine>` (the unsharded path, whose ids renumber across
//!   `Update::Compact` exactly as the WAL-recorded remap says).
//!
//! The WAL replay step is proven load-bearing at every crash: whenever
//! the WAL holds records, a snapshot-only restore (replay skipped) must
//! **differ** from the in-memory mirror — so deleting the replay logic
//! fails this harness, and `silkmoth-storage`'s `wal_robustness.rs`
//! pins the CRC check the same way.

use std::collections::HashMap;
use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silkmoth_collection::{Collection, SetIdx};
use silkmoth_core::{CompactionPolicy, Engine, EngineConfig, RelatednessMetric, Update};
use silkmoth_server::{ShardSpec, ShardedEngine};
use silkmoth_storage::{load_snapshot, Store, StoreConfig, StoreEngine};
use silkmoth_text::SimilarityFunction;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn cfg(rng: &mut StdRng) -> EngineConfig {
    let metric = if rng.random::<bool>() {
        RelatednessMetric::Similarity
    } else {
        RelatednessMetric::Containment
    };
    let delta = [0.4, 0.6, 0.8][rng.random_range(0..3usize)];
    EngineConfig::full(metric, SimilarityFunction::Jaccard, delta, 0.0)
}

fn gen_element(rng: &mut StdRng) -> String {
    let n = rng.random_range(1..=3usize);
    (0..n)
        .map(|_| {
            if rng.random::<bool>() {
                format!("w{}", rng.random_range(0..10u32))
            } else {
                format!("shared{}", rng.random_range(0..4u32))
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_set(rng: &mut StdRng) -> Vec<String> {
    let n = rng.random_range(1..=3usize);
    (0..n).map(|_| gen_element(rng)).collect()
}

fn temp_dir(seed: u64, flavor: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "silkmoth-recovery-eq-{}-{seed:x}-{flavor}",
        std::process::id()
    ))
}

/// One durable sharded flavor: the store on disk plus its in-memory
/// mirror that applies the same updates without ever touching disk.
struct ShardedFlavor {
    dir: PathBuf,
    spec: ShardSpec,
    store: Option<Store<ShardedEngine>>,
    mirror: ShardedEngine,
}

/// The durable unsharded flavor (ids renumber across compaction).
struct UnshardedFlavor {
    dir: PathBuf,
    cfg: EngineConfig,
    store: Option<Store<Engine>>,
    mirror: Engine,
}

struct Harness {
    cfg: EngineConfig,
    /// gid → live raw set (`None` = removed); gids are the sharded
    /// engines' stable global ids.
    slots: Vec<Option<Vec<String>>>,
    sharded: Vec<ShardedFlavor>,
    unsharded: UnshardedFlavor,
    /// gid → the unsharded engine's current id for that set.
    inc_ids: HashMap<SetIdx, SetIdx>,
}

/// Stores run with a disabled policy here: the harness forces explicit
/// compactions/snapshots so the in-memory mirrors stay in lockstep
/// (policy-triggered actions are pinned by the storage crate's tests).
/// Segment sealing stays ON with a tiny threshold — it is
/// state-neutral, so every crash/recovery in the harness also proves
/// multi-segment stitching and the parallel replay path byte-identical.
fn store_cfg() -> StoreConfig {
    StoreConfig {
        policy: CompactionPolicy::DISABLED.segment_at_wal_bytes(96),
        ..StoreConfig::default()
    }
}

impl Harness {
    fn new(rng: &mut StdRng, seed: u64) -> Self {
        let cfg = cfg(rng);
        let n = rng.random_range(6..=12usize);
        let base: Vec<Vec<String>> = (0..n).map(|_| gen_set(rng)).collect();
        let sharded = SHARD_COUNTS
            .iter()
            .map(|&shards| {
                let dir = temp_dir(seed, &format!("s{shards}"));
                let _ = std::fs::remove_dir_all(&dir);
                let engine = ShardedEngine::build(&base, cfg, shards).expect("valid config");
                let mirror = ShardedEngine::build(&base, cfg, shards).expect("valid config");
                let store = Store::create(&dir, engine, store_cfg()).expect("create store");
                ShardedFlavor {
                    dir,
                    spec: ShardSpec { cfg, shards },
                    store: Some(store),
                    mirror,
                }
            })
            .collect();
        let dir = temp_dir(seed, "unsharded");
        let _ = std::fs::remove_dir_all(&dir);
        let build = || Engine::new(Collection::build(&base, cfg.tokenization()), cfg).unwrap();
        let unsharded = UnshardedFlavor {
            dir: dir.clone(),
            cfg,
            store: Some(Store::create(&dir, build(), store_cfg()).expect("create store")),
            mirror: build(),
        };
        Self {
            cfg,
            inc_ids: (0..n as SetIdx).map(|i| (i, i)).collect(),
            slots: base.into_iter().map(Some).collect(),
            sharded,
            unsharded,
        }
    }

    fn cleanup(&self) {
        for flavor in &self.sharded {
            let _ = std::fs::remove_dir_all(&flavor.dir);
        }
        let _ = std::fs::remove_dir_all(&self.unsharded.dir);
    }

    fn live_gids(&self) -> Vec<SetIdx> {
        (0..self.slots.len() as SetIdx)
            .filter(|&g| self.slots[g as usize].is_some())
            .collect()
    }

    fn apply_everywhere(&mut self, update: &Update, inc_update: &Update) {
        for flavor in &mut self.sharded {
            let store = flavor.store.as_mut().expect("store is open");
            let got = store.apply(update.clone()).expect("durable apply").outcome;
            let want = flavor.mirror.apply(update.clone()).expect("mirror apply");
            assert_eq!(got, want, "store and mirror outcomes agree");
        }
        let store = self.unsharded.store.as_mut().expect("store is open");
        let got = store
            .apply(inc_update.clone())
            .expect("durable apply")
            .outcome;
        let want = self
            .unsharded
            .mirror
            .apply(inc_update.clone())
            .expect("mirror apply");
        assert_eq!(got, want, "unsharded store and mirror outcomes agree");
    }

    fn append(&mut self, sets: Vec<Vec<String>>) {
        let update = Update::Append(sets.clone());
        self.apply_everywhere(&update, &update);
        // Track the unsharded ids from the mirror's own numbering: the
        // appended sets took the trailing slots.
        let first_inc = self.unsharded.mirror.collection().len() - sets.len();
        for (i, _) in sets.iter().enumerate() {
            let gid = (self.slots.len() + i) as SetIdx;
            self.inc_ids.insert(gid, (first_inc + i) as SetIdx);
        }
        self.slots.extend(sets.into_iter().map(Some));
    }

    fn remove(&mut self, gids: Vec<SetIdx>) {
        let inc: Vec<SetIdx> = gids.iter().map(|g| self.inc_ids[g]).collect();
        self.apply_everywhere(&Update::Remove(gids.clone()), &Update::Remove(inc));
        for g in gids {
            self.slots[g as usize] = None;
        }
    }

    fn compact(&mut self) {
        // Capture the unsharded remap through the mirror outcome.
        for flavor in &mut self.sharded {
            let store = flavor.store.as_mut().expect("store is open");
            store.apply(Update::Compact).expect("durable compact");
            flavor
                .mirror
                .apply(Update::Compact)
                .expect("mirror compact");
        }
        let store = self.unsharded.store.as_mut().expect("store is open");
        let got = store.apply(Update::Compact).expect("durable compact");
        let remap = self
            .unsharded
            .mirror
            .apply(Update::Compact)
            .expect("mirror compact")
            .remap
            .expect("compact returns a remap");
        assert_eq!(got.outcome.remap.as_deref(), Some(remap.as_slice()));
        self.inc_ids = self
            .inc_ids
            .iter()
            .filter_map(|(&g, &i)| remap[i as usize].map(|ni| (g, ni)))
            .collect();
    }

    fn force_snapshot(&mut self) {
        for flavor in &mut self.sharded {
            flavor
                .store
                .as_mut()
                .expect("store is open")
                .snapshot()
                .expect("snapshot");
        }
        self.unsharded
            .store
            .as_mut()
            .expect("store is open")
            .snapshot()
            .expect("snapshot");
    }

    /// The crash: drop every store (while the process keeps its
    /// in-memory mirrors as the ground truth), reopen from disk, and
    /// demand the recovered engines be byte-identical to the mirrors.
    ///
    /// With `expect_replay_matters` (used after an append that the WAL
    /// alone holds), additionally proves the replay step is
    /// load-bearing: a snapshot-only restore must NOT reproduce the
    /// mirror — so deleting WAL replay fails this harness.
    fn crash_and_recover(&mut self, expect_replay_matters: bool) {
        for flavor in &mut self.sharded {
            let store = flavor.store.take().expect("store is open");
            let wal_records = store.status().wal_records;
            let snapshot_seq = store.status().snapshot_seq;
            drop(store); // crash

            if expect_replay_matters {
                assert!(wal_records > 0, "the detector append was WAL-logged");
                let (_, snap_state) =
                    load_snapshot(&flavor.dir.join(format!("snapshot-{snapshot_seq}.smc")))
                        .expect("snapshot loads");
                let snapshot_only =
                    <ShardedEngine as StoreEngine>::restore(&flavor.spec, snap_state)
                        .expect("snapshot restores");
                assert_ne!(
                    StoreEngine::capture(&snapshot_only),
                    StoreEngine::capture(&flavor.mirror),
                    "with {wal_records} WAL records the replay must be load-bearing"
                );
            }

            let (store, report) =
                Store::open(&flavor.dir, &flavor.spec, store_cfg()).expect("recovery");
            assert_eq!(report.wal_replayed, wal_records, "every committed record");
            assert_eq!(report.wal_discarded, None, "clean shutdowns have no tail");
            assert_eq!(
                StoreEngine::capture(store.engine()),
                StoreEngine::capture(&flavor.mirror),
                "recovered state == in-memory state ({} shards)",
                flavor.spec.shards
            );
            flavor.store = Some(store);
        }

        let store = self.unsharded.store.take().expect("store is open");
        let wal_records = store.status().wal_records;
        let snapshot_seq = store.status().snapshot_seq;
        drop(store);
        if expect_replay_matters {
            let (_, snap_state) = load_snapshot(
                &self
                    .unsharded
                    .dir
                    .join(format!("snapshot-{snapshot_seq}.smc")),
            )
            .expect("snapshot loads");
            let snapshot_only =
                Engine::restore(&self.unsharded.cfg, snap_state).expect("snapshot restores");
            assert_ne!(
                snapshot_only.capture(),
                self.unsharded.mirror.capture(),
                "unsharded replay must be load-bearing"
            );
        }
        let (store, report) =
            Store::<Engine>::open(&self.unsharded.dir, &self.unsharded.cfg, store_cfg())
                .expect("recovery");
        assert_eq!(report.wal_replayed, wal_records);
        assert_eq!(
            store.engine().capture(),
            self.unsharded.mirror.capture(),
            "recovered unsharded state == in-memory state"
        );
        self.unsharded.store = Some(store);
    }

    /// The fresh-build comparator: an engine over exactly the live raw
    /// sets, plus the dense-id → gid map (ascending, order-preserving).
    fn fresh(&self) -> (Engine, Vec<SetIdx>) {
        let gids = self.live_gids();
        let raw: Vec<Vec<String>> = gids
            .iter()
            .map(|&g| self.slots[g as usize].clone().unwrap())
            .collect();
        let engine = Engine::new(Collection::build(&raw, self.cfg.tokenization()), self.cfg)
            .expect("fresh rebuild");
        (engine, gids)
    }

    /// One query on every durable flavor, asserted byte-identical to
    /// the fresh rebuild (and hence to the mirrors, which
    /// `update_equivalence.rs` already pins to fresh rebuilds).
    fn check_query(&self, elems: &[String], k: Option<usize>, floor: Option<f64>) {
        let (fresh, gids) = self.fresh();
        let r = fresh.collection().encode_set(elems);
        let mut query = fresh.query(&r);
        if let Some(k) = k {
            query = query.top_k(k);
        }
        if let Some(f) = floor {
            query = query.floor(f);
        }
        let want: Vec<(SetIdx, u64)> = query
            .run()
            .unwrap()
            .results
            .into_iter()
            .map(|(fid, score)| (gids[fid as usize], score.to_bits()))
            .collect();

        for flavor in &self.sharded {
            let engine = flavor.store.as_ref().expect("store is open").engine();
            let got: Vec<(SetIdx, u64)> = engine
                .search(elems, k, floor)
                .unwrap()
                .results
                .into_iter()
                .map(|(gid, score)| (gid, score.to_bits()))
                .collect();
            assert_eq!(
                got, want,
                "durable sharded({}) vs fresh rebuild, k={k:?} floor={floor:?}",
                flavor.spec.shards
            );
        }

        let gid_of: HashMap<SetIdx, SetIdx> = self.inc_ids.iter().map(|(&g, &i)| (i, g)).collect();
        let engine = self
            .unsharded
            .store
            .as_ref()
            .expect("store is open")
            .engine();
        let r_inc = engine.collection().encode_set(elems);
        let mut query = engine.query(&r_inc);
        if let Some(k) = k {
            query = query.top_k(k);
        }
        if let Some(f) = floor {
            query = query.floor(f);
        }
        let got: Vec<(SetIdx, u64)> = query
            .run()
            .unwrap()
            .results
            .into_iter()
            .map(|(iid, score)| (gid_of[&iid], score.to_bits()))
            .collect();
        assert_eq!(
            got, want,
            "durable Store<Engine> vs fresh rebuild, k={k:?} floor={floor:?}"
        );
    }

    /// Batched discovery across the sharded flavors vs the rebuild.
    fn check_discover(&self, refs: &[Vec<String>]) {
        let (fresh, gids) = self.fresh();
        let encoded: Vec<_> = refs
            .iter()
            .map(|set| fresh.collection().encode_set(set))
            .collect();
        let want: Vec<(u32, SetIdx, u64)> = fresh
            .discover(&encoded)
            .pairs
            .into_iter()
            .map(|p| (p.r, gids[p.s as usize], p.score.to_bits()))
            .collect();
        for flavor in &self.sharded {
            let engine = flavor.store.as_ref().expect("store is open").engine();
            let got: Vec<(u32, SetIdx, u64)> = engine
                .discover(refs)
                .pairs
                .into_iter()
                .map(|p| (p.r, p.s, p.score.to_bits()))
                .collect();
            assert_eq!(
                got, want,
                "durable sharded({}) discover vs fresh rebuild",
                flavor.spec.shards
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The acceptance property: random op interleavings with crashes —
    // every recovered engine byte-identical to the in-memory engine
    // that applied the same committed updates, across shard counts
    // {1, 2, 7} and the unsharded Store<Engine> path.
    #[test]
    fn any_crash_recovery_is_byte_identical_to_the_surviving_engine(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let mut h = Harness::new(rng, seed);
        for _ in 0..10 {
            match rng.random_range(0..100u32) {
                0..=24 => {
                    let n = rng.random_range(1..=2usize);
                    h.append((0..n).map(|_| gen_set(rng)).collect());
                }
                25..=44 => {
                    let live = h.live_gids();
                    if live.is_empty() {
                        continue;
                    }
                    let n = rng.random_range(1..=2usize).min(live.len());
                    let mut gids: Vec<SetIdx> = (0..n)
                        .map(|_| live[rng.random_range(0..live.len())])
                        .collect();
                    gids.dedup();
                    h.remove(gids);
                }
                45..=54 => h.compact(),
                55..=64 => h.force_snapshot(),
                65..=84 => h.crash_and_recover(false),
                _ => {
                    let elems = match h.live_gids().as_slice() {
                        live if !live.is_empty() && rng.random::<bool>() => {
                            let g = live[rng.random_range(0..live.len())];
                            h.slots[g as usize].clone().unwrap()
                        }
                        _ => gen_set(rng),
                    };
                    let k = [None, Some(1), Some(3)][rng.random_range(0..3usize)];
                    let floor = [None, Some(0.0), Some(0.3)][rng.random_range(0..3usize)];
                    h.check_query(&elems, k, floor);
                }
            }
        }
        // Always end with an append (held only by the WAL) + crash +
        // full sweep, so every case exercises recovery with a replay
        // that provably matters.
        h.append(vec![gen_set(rng)]);
        h.crash_and_recover(true);
        let elems = gen_set(rng);
        h.check_query(&elems, None, None);
        h.check_query(&elems, Some(5), Some(0.0));
        h.check_discover(&[gen_set(rng), gen_set(rng)]);
        h.cleanup();
    }
}
