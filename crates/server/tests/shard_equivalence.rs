//! Shard-correctness acceptance test: `ShardedEngine` output —
//! search, top-k, and discovery — is **byte-identical** to a single
//! unsharded engine on a ≥250-set datagen workload, for shard counts
//! {1, 2, 7} and both relatedness metrics.

use silkmoth_collection::{Collection, SetIdx};
use silkmoth_core::{Engine, EngineConfig, RelatednessMetric};
use silkmoth_server::ShardedEngine;
use silkmoth_text::SimilarityFunction;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn corpus() -> Vec<Vec<String>> {
    silkmoth_datagen::webtable_schemas(&silkmoth_datagen::SchemaConfig {
        num_sets: 250,
        ..Default::default()
    })
}

fn cfg(metric: RelatednessMetric, delta: f64) -> EngineConfig {
    EngineConfig::full(metric, SimilarityFunction::Jaccard, delta, 0.0)
}

/// References that partially overlap the corpus: every other attribute
/// of every fourth schema (some match, some don't).
fn references(raw: &[Vec<String>]) -> Vec<Vec<String>> {
    raw.iter()
        .step_by(4)
        .map(|set| set.iter().step_by(2).cloned().collect())
        .collect()
}

fn assert_results_identical(
    got: &[(SetIdx, f64)],
    want: &[(SetIdx, f64)],
    context: &std::fmt::Arguments<'_>,
) {
    assert_eq!(got.len(), want.len(), "{context}");
    for (a, b) in got.iter().zip(want) {
        assert_eq!(a.0, b.0, "{context}");
        assert_eq!(
            a.1.to_bits(),
            b.1.to_bits(),
            "score for set {} must be bit-identical ({context})",
            a.0
        );
    }
}

#[test]
fn sharded_search_identical_to_single_engine() {
    let raw = corpus();
    assert!(raw.len() >= 250);
    for metric in [
        RelatednessMetric::Similarity,
        RelatednessMetric::Containment,
    ] {
        let cfg = cfg(metric, 0.5);
        let single = Engine::new(Collection::build(&raw, cfg.tokenization()), cfg).unwrap();
        for shards in SHARD_COUNTS {
            let sharded = ShardedEngine::build(&raw, cfg, shards).unwrap();
            assert_eq!(sharded.shard_count(), shards);
            for (i, reference) in references(&raw).iter().enumerate().step_by(7) {
                let encoded = single.collection().encode_set(reference);
                // Plain search: ascending-id order.
                let want = single.query(&encoded).run().unwrap().results;
                let got = sharded.search(reference, None, None).unwrap().results;
                assert_results_identical(
                    &got,
                    &want,
                    &format_args!("{metric:?} shards={shards} ref={i} plain"),
                );
                // Top-k with a floor: global rank order.
                let want = single
                    .query(&encoded)
                    .top_k(5)
                    .floor(0.3)
                    .run()
                    .unwrap()
                    .results;
                let got = sharded
                    .search(reference, Some(5), Some(0.3))
                    .unwrap()
                    .results;
                assert_results_identical(
                    &got,
                    &want,
                    &format_args!("{metric:?} shards={shards} ref={i} top-k"),
                );
            }
        }
    }
}

#[test]
fn sharded_discover_identical_to_single_engine() {
    let raw = corpus();
    let refs = references(&raw);
    assert!(refs.len() >= 60);
    for metric in [
        RelatednessMetric::Similarity,
        RelatednessMetric::Containment,
    ] {
        let cfg = cfg(metric, 0.5);
        let single = Engine::new(Collection::build(&raw, cfg.tokenization()), cfg).unwrap();
        let encoded: Vec<_> = refs
            .iter()
            .map(|set| single.collection().encode_set(set))
            .collect();
        let want = single.discover(&encoded);
        assert!(!want.pairs.is_empty(), "workload must produce pairs");
        for shards in SHARD_COUNTS {
            let sharded = ShardedEngine::build(&raw, cfg, shards).unwrap();
            let got = sharded.discover(&refs);
            assert_eq!(
                got.pairs.len(),
                want.pairs.len(),
                "{metric:?} shards={shards}"
            );
            for (a, b) in got.pairs.iter().zip(&want.pairs) {
                assert_eq!((a.r, a.s), (b.r, b.s), "{metric:?} shards={shards}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "score for ({}, {}) must be bit-identical ({metric:?} shards={shards})",
                    a.r,
                    a.s
                );
            }
            assert_eq!(got.shard_stats.len(), shards);
        }
    }
}

#[test]
fn sharded_topk_tie_break_matches_single_engine() {
    // A corpus engineered for score ties: clusters of identical sets, so
    // top-k truncation must cut inside a tie group and the ascending
    // global-id tie-break is load-bearing across shard boundaries.
    let raw: Vec<Vec<String>> = (0..60)
        .map(|i| {
            let cluster = i % 3;
            vec![
                format!("c{cluster} alpha beta"),
                format!("c{cluster} gamma delta"),
            ]
        })
        .collect();
    let cfg = cfg(RelatednessMetric::Similarity, 0.5);
    let single = Engine::new(Collection::build(&raw, cfg.tokenization()), cfg).unwrap();
    let reference = raw[0].clone();
    let encoded = single.collection().encode_set(&reference);
    for shards in SHARD_COUNTS {
        let sharded = ShardedEngine::build(&raw, cfg, shards).unwrap();
        for k in [1, 3, 7, 19, 21, 100] {
            let want = single
                .query(&encoded)
                .top_k(k)
                .floor(0.4)
                .run()
                .unwrap()
                .results;
            let got = sharded
                .search(&reference, Some(k), Some(0.4))
                .unwrap()
                .results;
            assert_eq!(got, want, "shards={shards} k={k}");
        }
    }
}
