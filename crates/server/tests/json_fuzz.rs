//! Fuzz-style round-trip and robustness tests for `server::json`.
//!
//! Two obligations:
//!
//! 1. **Round-trip**: any value tree the encoder can produce parses back
//!    to an identical tree (`encode → decode = id`). Trees are generated
//!    randomly (vendored proptest, seeded; case seed printed on failure)
//!    with adversarial strings — quotes, backslashes, control
//!    characters, surrogate-needing astral-plane characters.
//! 2. **Never panic**: malformed inputs — truncations, deep nesting, bad
//!    escapes, huge numbers, random garbage — must come back as `Err`,
//!    not a panic, an abort, or an OOM.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silkmoth_server::Json;

/// Characters chosen to stress every escaping path: plain ASCII,
/// JSON-special, raw controls, multibyte, and astral (surrogate pairs in
/// `\u` form).
const STRESS_CHARS: [char; 14] = [
    'a', 'Z', '9', ' ', '"', '\\', '/', '\n', '\t', '\u{0}', '\u{1b}', 'é', 'ω', '🚀',
];

fn gen_string(rng: &mut StdRng) -> String {
    let n = rng.random_range(0..12usize);
    (0..n)
        .map(|_| STRESS_CHARS[rng.random_range(0..STRESS_CHARS.len())])
        .collect()
}

/// A finite number; integers are favored so both `Display` branches
/// (integer-exact and shortest-float) are exercised.
fn gen_number(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..4u32) {
        0 => rng.random_range(0..2000u32) as f64 - 1000.0,
        // Integer-valued but beyond the i64-exact display cutoff.
        1 => 9.1e15 + rng.random_range(0..1000u64) as f64,
        2 => rng.random::<f64>() * 1e-8,
        _ => (rng.random::<f64>() - 0.5) * 1e12,
    }
}

fn gen_tree(rng: &mut StdRng, depth: usize) -> Json {
    let variants: u32 = if depth == 0 { 4 } else { 6 };
    match rng.random_range(0..variants) {
        0 => Json::Null,
        1 => Json::Bool(rng.random()),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.random_range(0..5usize);
            Json::Arr((0..n).map(|_| gen_tree(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..5usize);
            Json::Obj(
                (0..n)
                    .map(|_| (gen_string(rng), gen_tree(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn random_value_trees_roundtrip_identically(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let tree = gen_tree(rng, 4);
        let encoded = tree.to_string();
        // Documents are newline-safe by contract: one per line is valid
        // framing.
        prop_assert!(!encoded.contains('\n'), "encoding must be newline-safe: {encoded:?}");
        let back = Json::parse(&encoded).unwrap_or_else(|e| {
            panic!("encoder output must parse: {e} in {encoded:?}")
        });
        prop_assert_eq!(&back, &tree, "round-trip mismatch for {}", encoded);
        // Encoding is deterministic, so a second round-trip is a fixpoint.
        prop_assert_eq!(back.to_string(), encoded);
    }

    // Parsing arbitrary garbage (printable and not) must never panic;
    // whether it parses is the input's business.
    #[test]
    fn random_garbage_never_panics(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let n = rng.random_range(0..64usize);
        let garbage: String = (0..n)
            .map(|_| char::from_u32(rng.random_range(0..0x250u32)).unwrap_or('?'))
            .collect();
        let _ = Json::parse(&garbage);
    }

    // Every truncation of a valid document is handled (usually an error;
    // a prefix that happens to be a complete document, e.g. of `1234`,
    // may legally parse) — never a panic.
    #[test]
    fn truncations_of_valid_documents_never_panic(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed);
        let encoded = gen_tree(rng, 3).to_string();
        for cut in 0..encoded.len() {
            if encoded.is_char_boundary(cut) {
                let _ = Json::parse(&encoded[..cut]);
            }
        }
        // Trailing garbage after a complete document is always an error.
        prop_assert!(Json::parse(&format!("{encoded} x")).is_err());
    }
}

#[test]
fn malformed_corpus_errors_never_panics() {
    let corpus: Vec<String> = vec![
        // Truncated structures.
        "{".into(),
        "[".into(),
        r#"{"a""#.into(),
        r#"{"a":"#.into(),
        r#"["#.into(),
        r#"[1,"#.into(),
        r#""unterminated"#.into(),
        // Bad escapes.
        r#""\x""#.into(),
        r#""\u12""#.into(),
        r#""\u{41}""#.into(),
        r#""\ud800""#.into(),
        r#""\ud800A""#.into(),
        r#""\udc00""#.into(),
        "\"raw\ncontrol\"".into(),
        // Number abuse: huge magnitudes must be rejected (f64 parsing
        // saturates to infinity, which the wire format forbids), and
        // huge digit strings must not blow up.
        "1e999".into(),
        "-1e999".into(),
        "1".repeat(400),
        format!("-{}", "9".repeat(400)),
        "1e".into(),
        "1.".into(),
        "-".into(),
        "+1".into(),
        "0x10".into(),
        "nan".into(),
        "inf".into(),
        // Deep nesting beyond the documented cap.
        "[".repeat(1000) + &"]".repeat(1000),
        "{\"a\":".repeat(500) + "1" + &"}".repeat(500),
        // Structural junk.
        "[1,]".into(),
        "{,}".into(),
        r#"{"a" 1}"#.into(),
        r#"{"a":1,}"#.into(),
        "[] []".into(),
    ];
    for bad in &corpus {
        assert!(
            Json::parse(bad).is_err(),
            "must reject (not panic on): {bad:?}"
        );
    }
}

#[test]
fn huge_but_valid_numbers_near_the_edge_parse() {
    // The largest finite f64 is ~1.8e308: values inside the range stay
    // accepted, the first power of ten beyond is rejected.
    assert!(Json::parse("1.7e308").is_ok());
    assert!(Json::parse("-1.7e308").is_ok());
    assert!(Json::parse("1e309").is_err());
    // Tiny magnitudes underflow to 0.0, which is finite and fine.
    assert_eq!(Json::parse("1e-999").unwrap(), Json::Num(0.0));
}
