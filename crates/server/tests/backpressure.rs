//! Backpressure regression tests: with `--max-inflight-updates N`,
//! update requests beyond N (applying or queued on the engine write
//! lock) are rejected immediately with `503` + `Retry-After` instead of
//! queuing unboundedly — a slow in-flight reader cannot turn a burst of
//! writers into an unbounded pile-up on the lock.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use silkmoth_core::{EngineConfig, RelatednessMetric};
use silkmoth_server::{serve_service, Request, SearchService, ShardedEngine};
use silkmoth_text::SimilarityFunction;

fn service(max_inflight: usize) -> SearchService {
    let raw: Vec<Vec<String>> = (0..12)
        .map(|i| vec![format!("w{} shared{}", i % 5, i % 3)])
        .collect();
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    );
    SearchService::new(ShardedEngine::build(&raw, cfg, 2).unwrap())
        .with_max_inflight_updates(max_inflight)
}

fn append_request() -> Request {
    Request::new(
        "POST",
        "/sets",
        br#"{"sets": [["backpressure probe"]]}"#.to_vec(),
    )
}

/// The slow-update + concurrent-clients scenario: a long-running read
/// (search) holds the engine's read lock, so every update queues on the
/// write lock. With a bound of 2, three concurrent updates must resolve
/// as exactly one immediate 503 — and the two queued ones succeed once
/// the reader finishes.
#[test]
fn bounded_inflight_updates_reject_the_excess_with_503() {
    let service = Arc::new(service(2));
    // The "slow search": holding the read guard blocks every writer.
    let reader_guard = service.engine();

    let (tx, rx) = mpsc::channel();
    let mut workers = Vec::new();
    for _ in 0..3 {
        let service = Arc::clone(&service);
        let tx = tx.clone();
        workers.push(std::thread::spawn(move || {
            let resp = service.handle(&append_request());
            tx.send(resp.status).expect("collector alive");
            resp.status
        }));
    }

    // While the reader is still in flight, exactly one of the three
    // updates must come back — the 503; the other two stay queued
    // (admitted, blocked on the write lock), so only one response can
    // exist yet.
    let first = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("one update must be rejected immediately");
    assert_eq!(first, 503, "the over-bound update is rejected");
    assert!(
        rx.recv_timeout(Duration::from_millis(200)).is_err(),
        "the two admitted updates stay queued while the reader runs"
    );

    // Reader finishes: the queued updates drain successfully.
    drop(reader_guard);
    let mut statuses: Vec<u16> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    statuses.sort_unstable();
    assert_eq!(statuses, vec![200, 200, 503]);

    // Capacity is released: the next update sails through.
    assert_eq!(service.handle(&append_request()).status, 200);
}

/// The same over the wire: the 503 carries a `Retry-After` header.
#[test]
fn rejected_updates_carry_retry_after_on_the_wire() {
    let service = Arc::new(service(1));
    let server = serve_service(Arc::clone(&service), "127.0.0.1:0", 3).unwrap();
    let addr = server.addr();

    let reader_guard = service.engine();
    // Saturate the single update slot from inside the process.
    let blocked = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.handle(&append_request()).status)
    };

    // Probe over TCP until the rejection arrives (the first probe can
    // race the blocked thread's admission and get admitted itself — in
    // which case it occupies the slot and the *next* probe is
    // rejected).
    let body = br#"{"sets": [["wire probe"]]}"#;
    let mut rejection = None;
    for _ in 0..10 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        write!(
            stream,
            "POST /sets HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .unwrap();
        stream.write_all(body).unwrap();
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        if text.starts_with("HTTP/1.1 503") {
            rejection = Some(text);
            break;
        }
        // Admitted-and-blocked probe: abandon the connection and try
        // again — the slot it occupies guarantees the next one is
        // rejected.
    }
    let text = rejection.expect("a rejection must arrive while the reader blocks updates");
    assert!(text.contains("Retry-After: 1"), "{text}");
    assert!(text.contains("too many updates in flight"), "{text}");

    drop(reader_guard);
    assert_eq!(blocked.join().unwrap(), 200);
    server.shutdown();
}
