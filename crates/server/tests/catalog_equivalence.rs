//! Differential harness for the catalog front — the multi-tenant
//! counterpart of `recovery_equivalence.rs`.
//!
//! 1. A catalog server with only its `default` collection must be
//!    **byte-identical** to the legacy single-collection server (ids,
//!    tie order, score bits of every response body; `/metrics`
//!    families modulo the catalog's own gauges) across shard counts
//!    {1, 2, 7}. The catalog is a router, not a reinterpretation.
//! 2. A scoped route (`/collections/<name>/search`, …) must answer
//!    byte-identically to the unscoped route on a legacy server
//!    holding the same sets — scoping changes *which* collection
//!    answers, never *what* it answers.
//! 3. Three tenants writing concurrently, then a crash (every store
//!    dropped mid-sequence, no clean shutdown): each tenant recovers
//!    to exactly its acked updates, and no set ever bleeds across
//!    tenants.

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silkmoth_core::{CompactionPolicy, EngineConfig, RelatednessMetric};
use silkmoth_server::{
    CatalogConfig, CatalogService, Json, Request, Response, SearchService, ShardSpec, ShardedEngine,
};
use silkmoth_storage::{StorageError, Store, StoreConfig};
use silkmoth_text::SimilarityFunction;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn engine_cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    )
}

fn gen_set(rng: &mut StdRng) -> Vec<String> {
    let n = rng.random_range(1..=3usize);
    (0..n)
        .map(|_| {
            let w = rng.random_range(1..=3usize);
            (0..w)
                .map(|_| format!("w{}", rng.random_range(0..12u32)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

fn corpus(rng: &mut StdRng, n: usize) -> Vec<Vec<String>> {
    (0..n).map(|_| gen_set(rng)).collect()
}

fn sets_body(sets: &[Vec<String>]) -> String {
    let arr: Vec<Json> = sets
        .iter()
        .map(|s| Json::Arr(s.iter().map(|e| Json::Str(e.clone())).collect()))
        .collect();
    format!("{{\"sets\": {}}}", Json::Arr(arr))
}

fn request(method: &str, path: &str, body: &str) -> Request {
    Request::new(method, path, body.as_bytes().to_vec())
}

fn catalog_over(service: SearchService) -> CatalogService {
    CatalogService::open(
        Arc::new(service),
        CatalogConfig {
            data_dir: None,
            engine_cfg: engine_cfg(),
            store_cfg: StoreConfig::default(),
            ephemeral_policy: CompactionPolicy::DISABLED,
            default_shards: 2,
            max_collections: 16,
            max_inflight_updates: None,
            search_timeout: None,
        },
    )
    .expect("ephemeral catalog opens")
}

/// The request script both servers replay: every route whose bodies
/// must agree byte-for-byte, including mutations in the middle so the
/// comparison covers post-update state too.
fn script(rng: &mut StdRng) -> Vec<(String, String, String)> {
    let mut reqs = Vec::new();
    let search = |rng: &mut StdRng, extra: &str| {
        let q = Json::Arr(
            gen_set(rng)
                .into_iter()
                .map(Json::Str)
                .collect::<Vec<Json>>(),
        );
        (
            "POST".to_owned(),
            "/search".to_owned(),
            format!("{{\"reference\": {q}, \"floor\": 0.0{extra}}}"),
        )
    };
    reqs.push(search(rng, ""));
    reqs.push(search(rng, ", \"k\": 3"));
    reqs.push(search(rng, ", \"stats\": true"));
    let batch: Vec<String> = (0..3)
        .map(|_| {
            let q = Json::Arr(
                gen_set(rng)
                    .into_iter()
                    .map(Json::Str)
                    .collect::<Vec<Json>>(),
            );
            format!("{{\"reference\": {q}, \"k\": 5, \"floor\": 0.0}}")
        })
        .collect();
    reqs.push((
        "POST".to_owned(),
        "/search/batch".to_owned(),
        format!("{{\"queries\": [{}]}}", batch.join(", ")),
    ));
    reqs.push((
        "POST".to_owned(),
        "/discover".to_owned(),
        sets_body(&corpus(rng, 2)).replace("\"sets\"", "\"references\""),
    ));
    reqs.push((
        "POST".to_owned(),
        "/sets".to_owned(),
        sets_body(&corpus(rng, 3)),
    ));
    reqs.push((
        "DELETE".to_owned(),
        "/sets".to_owned(),
        "{\"ids\": [1, 4]}".to_owned(),
    ));
    reqs.push(search(rng, ""));
    reqs.push(("POST".to_owned(), "/compact".to_owned(), String::new()));
    reqs.push(search(rng, ", \"k\": 2"));
    reqs.push(("GET".to_owned(), "/stats".to_owned(), String::new()));
    reqs.push(("GET".to_owned(), "/healthz".to_owned(), String::new()));
    reqs
}

/// The `# TYPE` family names on a metrics page, sorted.
fn metric_families(page: &str) -> Vec<String> {
    let mut families: Vec<String> = page
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_owned)
        .collect();
    families.sort();
    families
}

#[test]
fn one_collection_catalog_is_byte_identical_to_legacy_across_shards() {
    for &shards in &SHARD_COUNTS {
        let rng = &mut StdRng::seed_from_u64(0xCA7A106 + shards as u64);
        let base = corpus(rng, 20);
        let legacy = SearchService::new(ShardedEngine::build(&base, engine_cfg(), shards).unwrap());
        let catalog = catalog_over(SearchService::new(
            ShardedEngine::build(&base, engine_cfg(), shards).unwrap(),
        ));
        for (method, path, body) in script(rng) {
            let want: Response = legacy.handle(&request(&method, &path, &body));
            let got: Response = catalog.handle(&request(&method, &path, &body));
            assert_eq!(got.status, want.status, "{method} {path} ({shards} shards)");
            if path == "/stats" || path == "/healthz" {
                // The one sanctioned difference: the catalog appends a
                // `collections` section — as a pure suffix, so the
                // legacy body minus its closing brace is a byte prefix.
                let want_prefix = &want.body[..want.body.len() - 1];
                assert!(
                    got.body.starts_with(want_prefix),
                    "{path}: the catalog body must extend the legacy body \
                     ({shards} shards)\nlegacy: {}\ncatalog: {}",
                    String::from_utf8_lossy(&want.body),
                    String::from_utf8_lossy(&got.body),
                );
                let text = String::from_utf8(got.body).unwrap();
                assert!(text.contains("\"collections\""), "{text}");
                continue;
            }
            assert_eq!(
                got.body,
                want.body,
                "{method} {path} must be byte-identical ({shards} shards)\nlegacy: {}\ncatalog: {}",
                String::from_utf8_lossy(&want.body),
                String::from_utf8_lossy(&got.body),
            );
        }
        // /metrics: same families, plus exactly the catalog's own two
        // gauges (the default collection's series stay unlabelled, so
        // nothing else may appear or change name).
        let want_page =
            String::from_utf8(legacy.handle(&request("GET", "/metrics", "")).body).unwrap();
        let got_page =
            String::from_utf8(catalog.handle(&request("GET", "/metrics", "")).body).unwrap();
        let mut want_families = metric_families(&want_page);
        want_families.extend([
            "silkmoth_catalog_collections".to_owned(),
            "silkmoth_catalog_collections_max".to_owned(),
        ]);
        want_families.sort();
        assert_eq!(metric_families(&got_page), want_families, "{shards} shards");
        assert!(
            !got_page.contains("collection=\""),
            "a default-only catalog must not emit collection labels"
        );
    }
}

#[test]
fn scoped_routes_answer_byte_identically_to_an_unscoped_legacy_server() {
    for &shards in &SHARD_COUNTS {
        let rng = &mut StdRng::seed_from_u64(0x5C0_BED + shards as u64);
        let base = corpus(rng, 16);
        let legacy = SearchService::new(ShardedEngine::build(&base, engine_cfg(), shards).unwrap());
        // The tenant starts empty and receives the corpus through the
        // API — incremental build vs bulk build is already pinned
        // byte-identical elsewhere, so the bodies must agree.
        let catalog = catalog_over(SearchService::new(
            ShardedEngine::build(&corpus(rng, 5), engine_cfg(), 2).unwrap(),
        ));
        let (status, _) = {
            let r = catalog.handle(&request(
                "PUT",
                "/collections/tenant",
                &format!("{{\"shards\": {shards}}}"),
            ));
            (r.status, r.body)
        };
        assert_eq!(status, 200);
        let resp = catalog.handle(&request(
            "POST",
            "/collections/tenant/sets",
            &sets_body(&base),
        ));
        assert_eq!(resp.status, 200);
        for (method, path, body) in script(rng) {
            if path == "/sets" || path == "/compact" || path == "/stats" || path == "/healthz" {
                continue; // mutations would desync the two corpora here
            }
            let want = legacy.handle(&request(&method, &path, &body));
            let got = catalog.handle(&request(
                &method,
                &format!("/collections/tenant{path}"),
                &body,
            ));
            assert_eq!(got.status, want.status, "{method} {path} ({shards} shards)");
            assert_eq!(
                got.body, want.body,
                "scoped {method} {path} must be byte-identical ({shards} shards)"
            );
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("silkmoth-catalog-eq-{}-{tag}", std::process::id()))
}

#[test]
fn three_tenants_crash_and_recover_to_acked_updates_without_bleed() {
    let dir = temp_dir("crash");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = CatalogConfig {
        data_dir: Some(dir.clone()),
        engine_cfg: engine_cfg(),
        store_cfg: StoreConfig {
            sync: false, // fsync off: the in-process "crash" is a drop,
            // which still flushes; the literal kill -9 lives in
            // scripts/crash_recovery.sh
            policy: CompactionPolicy::DISABLED,
        },
        ephemeral_policy: CompactionPolicy::DISABLED,
        default_shards: 2,
        max_collections: 8,
        max_inflight_updates: None,
        search_timeout: None,
    };
    let open = |config: &CatalogConfig| {
        let spec = ShardSpec {
            cfg: engine_cfg(),
            shards: 2,
        };
        let store = match Store::open(&dir, &spec, config.store_cfg) {
            Ok((store, _)) => store,
            Err(StorageError::NotInitialized { .. }) => Store::create(
                &dir,
                ShardedEngine::build(&corpus(&mut StdRng::seed_from_u64(9), 6), engine_cfg(), 2)
                    .unwrap(),
                config.store_cfg,
            )
            .unwrap(),
            Err(e) => panic!("{e}"),
        };
        CatalogService::open(Arc::new(SearchService::durable(store)), config.clone()).unwrap()
    };

    // Three tenants (distinct shard counts), five rounds of
    // interleaved writes, every ack recorded per tenant.
    let mut acked: Vec<Vec<String>> = vec![Vec::new(); 3];
    {
        let catalog = open(&config);
        for (i, shards) in [1usize, 2, 3].iter().enumerate() {
            let resp = catalog.handle(&request(
                "PUT",
                &format!("/collections/tenant-{i}"),
                &format!("{{\"shards\": {shards}, \"quotas\": {{\"max_sets\": 1000}}}}"),
            ));
            assert_eq!(resp.status, 200);
        }
        for round in 0..5 {
            for (i, tenant_acks) in acked.iter_mut().enumerate() {
                let marker = format!("tenant-{i} round-{round} payload");
                let resp = catalog.handle(&request(
                    "POST",
                    &format!("/collections/tenant-{i}/sets"),
                    &sets_body(&[vec![marker.clone()]]),
                ));
                assert_eq!(resp.status, 200, "the write must be acked");
                tenant_acks.push(marker);
            }
        }
        // Crash: every store dropped mid-sequence, no clean shutdown.
    }

    let catalog = open(&config);
    assert_eq!(
        catalog.collection_names(),
        ["default", "tenant-0", "tenant-1", "tenant-2"],
        "the manifest recovers every tenant"
    );
    for i in 0..3 {
        let service = catalog.collection(&format!("tenant-{i}")).unwrap();
        let engine = service.engine();
        // Walk every live set: the recovered state must be a prefix of
        // the acked sequence (here: all of it), and contain nothing
        // from any other tenant.
        let mut texts = Vec::new();
        for shard in engine.shards() {
            let coll = shard.collection();
            for id in coll.live_ids() {
                for element in &coll.set(id).elements {
                    texts.push(element.text.to_string());
                }
            }
        }
        texts.sort();
        let mut want = acked[i].clone();
        want.sort();
        assert_eq!(
            texts, want,
            "tenant-{i} recovers exactly its acked updates, nothing else"
        );
        assert_eq!(
            engine.shard_count(),
            [1, 2, 3][i],
            "tenant-{i}'s shard count survives"
        );
        // Its quota config survives the restart too.
        let resp = catalog.handle(&request("GET", &format!("/collections/tenant-{i}"), ""));
        let doc = Json::parse(&String::from_utf8(resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("quotas")
                .and_then(|q| q.get("max_sets"))
                .and_then(Json::as_usize),
            Some(1000),
            "tenant-{i} quotas recover"
        );
    }
    // The default collection is intact as well (6 seed sets, untouched
    // by tenant traffic).
    assert_eq!(catalog.default_service().engine().len(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}
