//! Group commit under concurrency: N writer threads pushing updates
//! through [`SearchService`]'s durable routes must (a) all get honest
//! acks, (b) share fsyncs (fewer commit batches than updates), (c) see
//! rejections confined to the invalid updates in a mixed batch, and
//! (d) leave on-disk state that recovers to a **sequence-prefix of the
//! acknowledged updates** no matter when the crash image is taken —
//! checked byte-identically at shard counts {1, 2, 7}.
//!
//! The degraded-ack leg pins the lost-ack bugfix at the HTTP surface:
//! when post-commit maintenance fails, the route answers 200 with
//! `"degraded": true` instead of an error that would bait a retry.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use silkmoth_core::{CompactionPolicy, EngineConfig, RelatednessMetric, Update};
use silkmoth_server::{Json, Request, SearchService, ShardSpec, ShardedEngine};
use silkmoth_storage::{Store, StoreConfig, StoreEngine};
use silkmoth_text::SimilarityFunction;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    )
}

fn base_sets() -> Vec<Vec<String>> {
    (0..6)
        .map(|i| vec![format!("w{} shared{}", i % 4, i % 2)])
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "silkmoth-group-commit-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn post(service: &SearchService, path: &str, body: &str) -> (u16, Json) {
    let req = Request::new("POST", path, body.as_bytes().to_vec());
    let resp = service.handle(&req);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    (resp.status, doc)
}

fn delete(service: &SearchService, path: &str, body: &str) -> (u16, Json) {
    let req = Request::new("DELETE", path, body.as_bytes().to_vec());
    let resp = service.handle(&req);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    (resp.status, doc)
}

fn durable_service(dir: &Path, shards: usize, store_cfg: StoreConfig) -> SearchService {
    let engine = ShardedEngine::build(&base_sets(), cfg(), shards).unwrap();
    let store = Store::create(dir, engine, store_cfg).unwrap();
    SearchService::durable(store)
}

/// The appended gid from a successful `POST /sets` of one set.
fn appended_gid(doc: &Json) -> u32 {
    let ids = doc.get("appended").and_then(Json::as_array).unwrap();
    assert_eq!(ids.len(), 1);
    ids[0].as_usize().unwrap() as u32
}

#[test]
fn concurrent_writers_share_fsyncs_and_all_get_acked() {
    const WRITERS: usize = 16;
    const PER_WRITER: usize = 25;
    let dir = temp_dir("batching");
    let service = durable_service(
        &dir,
        2,
        StoreConfig {
            sync: true,
            policy: CompactionPolicy::DISABLED,
        },
    );

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let service = &service;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let (status, doc) =
                        post(service, "/sets", &format!(r#"{{"sets": [["w{w} u{i}"]]}}"#));
                    assert_eq!(status, 200, "{doc:?}");
                    assert!(doc.get("appended").is_some());
                }
            });
        }
    });

    // The service's own storage telemetry saw every record; the batch
    // histogram's count is the number of commits (≈ fsyncs).
    let total = WRITERS * PER_WRITER;
    let page = service.handle(&Request::new("GET", "/metrics", Vec::new()));
    let page = String::from_utf8(page.body).unwrap();
    let scrape = |suffix: &str| -> usize {
        page.lines()
            .find_map(|l| l.strip_prefix(&format!("silkmoth_wal_commit_batch_records_{suffix} ")))
            .unwrap_or_else(|| panic!("missing histogram {suffix} in:\n{page}"))
            .trim()
            .parse::<f64>()
            .unwrap() as usize
    };
    let (records, commits) = (scrape("sum"), scrape("count"));
    assert_eq!(records, total, "every ack was logged");
    assert!(
        commits < total,
        "16 contending writers must share at least one fsync \
         ({commits} commits for {total} updates)"
    );
    assert_eq!(
        service.engine().len(),
        base_sets().len() + total,
        "every acked append is live"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_updates_in_a_mixed_batch_fail_alone() {
    let dir = temp_dir("mixed");
    let service = durable_service(
        &dir,
        2,
        StoreConfig {
            sync: true,
            policy: CompactionPolicy::DISABLED,
        },
    );
    let appends = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..8 {
            let (service, appends) = (&service, &appends);
            scope.spawn(move || {
                for i in 0..10 {
                    if (w + i) % 3 == 0 {
                        // A remove of a gid that never existed: rejected
                        // by the batch's virtual validation, without
                        // poisoning the valid neighbors.
                        let (status, doc) = delete(service, "/sets", r#"{"ids": [999999]}"#);
                        assert_eq!(status, 404, "{doc:?}");
                    } else {
                        let (status, doc) =
                            post(service, "/sets", &format!(r#"{{"sets": [["m{w} {i}"]]}}"#));
                        assert_eq!(status, 200, "{doc:?}");
                        appends.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let appends = appends.load(Ordering::Relaxed);
    assert!(appends > 0);
    assert_eq!(service.engine().len(), base_sets().len() + appends);
    // The store on disk agrees: only the accepted updates were logged.
    let resp = service.handle(&Request::new("GET", "/healthz", Vec::new()));
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(
        doc.get("update_seq").and_then(Json::as_usize),
        Some(appends)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_maintenance_still_acks_with_a_degraded_flag() {
    let dir = temp_dir("degraded");
    let service = durable_service(
        &dir,
        2,
        StoreConfig {
            sync: true,
            policy: CompactionPolicy::default().snapshot_at_wal_records(1),
        },
    );
    // Sabotage the auto-snapshot exactly as the storage-level test
    // does: a directory squatting on the next generation's WAL path.
    std::fs::create_dir_all(dir.join("wal-1-0.log")).unwrap();
    let (status, doc) = post(&service, "/sets", r#"{"sets": [["survives"]]}"#);
    assert_eq!(status, 200, "a committed update must ack: {doc:?}");
    assert_eq!(doc.get("degraded"), Some(&Json::Bool(true)));
    assert!(doc.get("appended").is_some());

    // With the obstruction gone the next update acks clean.
    std::fs::remove_dir_all(dir.join("wal-1-0.log")).unwrap();
    let (status, doc) = post(&service, "/sets", r#"{"sets": [["clean"]]}"#);
    assert_eq!(status, 200);
    assert_eq!(doc.get("degraded"), None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads one consistent-enough crash image of a running store
/// directory: list first, then copy — a file that exists at listing
/// time is complete unless it is the newest segment, which recovery
/// treats as the (possibly torn) active tail.
fn crash_image(live: &Path, image: &Path) {
    let _ = std::fs::remove_dir_all(image);
    std::fs::create_dir_all(image).unwrap();
    let mut names: Vec<String> = std::fs::read_dir(live)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        if let Ok(bytes) = std::fs::read(live.join(&name)) {
            std::fs::write(image.join(&name), bytes).unwrap();
        }
    }
}

#[test]
fn any_crash_image_recovers_a_prefix_of_acked_updates() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 10;
    const TOTAL: usize = WRITERS * PER_WRITER;
    for shards in SHARD_COUNTS {
        let dir = temp_dir(&format!("prefix-{shards}"));
        let store_cfg = StoreConfig {
            sync: true,
            // Small segments so crash images span several files.
            policy: CompactionPolicy::DISABLED.segment_at_wal_bytes(256),
        };
        let service = durable_service(&dir, shards, store_cfg);
        let acked: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());
        let ack_count = AtomicUsize::new(0);
        let early = temp_dir(&format!("prefix-{shards}-img-early"));
        let mid = temp_dir(&format!("prefix-{shards}-img-mid"));
        let last = temp_dir(&format!("prefix-{shards}-img-final"));

        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let (service, acked, ack_count) = (&service, &acked, &ack_count);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let marker = format!("writer{w} update{i} shards");
                        let (status, doc) =
                            post(service, "/sets", &format!(r#"{{"sets": [["{marker}"]]}}"#));
                        assert_eq!(status, 200, "{doc:?}");
                        acked.lock().unwrap().push((appended_gid(&doc), marker));
                        ack_count.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            // The "kill -9" camera: copy the live directory while the
            // writers are mid-flight. Gating on the ack count makes the
            // images deterministically non-empty and mid-run.
            let (dir, early, mid, ack_count) = (&dir, &early, &mid, &ack_count);
            scope.spawn(move || {
                while ack_count.load(Ordering::SeqCst) < 1 {
                    std::thread::yield_now();
                }
                crash_image(dir, early);
                while ack_count.load(Ordering::SeqCst) < TOTAL / 2 {
                    std::thread::yield_now();
                }
                crash_image(dir, mid);
            });
        });
        crash_image(&dir, &last);

        let mut acked = acked.into_inner().unwrap();
        assert_eq!(acked.len(), TOTAL);
        // Gid order IS commit order: the group-commit leader assigns
        // gids in the order records hit the WAL.
        acked.sort_by_key(|(gid, _)| *gid);

        let spec = ShardSpec { cfg: cfg(), shards };
        for (image, floor) in [(&early, 1), (&mid, TOTAL / 2), (&last, TOTAL)] {
            let (store, report) = Store::<ShardedEngine>::open(image, &spec, store_cfg)
                .unwrap_or_else(|e| panic!("image of {shards}-shard store must open: {e}"));
            let k = report.wal_replayed as usize;
            assert!(
                k >= floor && k <= TOTAL,
                "image taken after {floor} acks holds {k} records"
            );
            // Byte-identity with a mirror that applied exactly the
            // first k acked updates — any hole, reorder, or phantom in
            // the recovered state breaks this.
            let mut mirror = ShardedEngine::build(&base_sets(), cfg(), shards).unwrap();
            for (_, marker) in &acked[..k] {
                mirror
                    .apply(Update::Append(vec![vec![marker.clone()]]))
                    .unwrap();
            }
            assert_eq!(
                StoreEngine::capture(store.engine()),
                StoreEngine::capture(&mirror),
                "{shards}-shard image at >={floor} acks is the {k}-update prefix"
            );
        }
        for d in [&dir, &early, &mid, &last] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}
