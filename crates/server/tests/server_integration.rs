//! End-to-end service test: boots the HTTP server on an ephemeral port,
//! issues concurrent `/search`, `/stats`, and `/healthz` requests over
//! real TCP (keep-alive connections), verifies the responses against
//! direct engine output, and checks graceful shutdown releases the port.

use silkmoth_core::{EngineConfig, RelatednessMetric};
use silkmoth_server::json::Json;
use silkmoth_server::{read_simple_response, serve, ShardedEngine};
use silkmoth_text::SimilarityFunction;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

const SHARDS: usize = 3;
const CLIENTS: usize = 8;

fn engine() -> ShardedEngine {
    let raw = silkmoth_datagen::webtable_schemas(&silkmoth_datagen::SchemaConfig {
        num_sets: 80,
        ..Default::default()
    });
    let cfg = EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    );
    ShardedEngine::build(&raw, cfg, SHARDS).unwrap()
}

/// Sends one request on an open connection and reads the full response.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Json) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes()).unwrap();
    let (status, body) = read_simple_response(reader).unwrap();
    (
        status,
        Json::parse(std::str::from_utf8(&body).unwrap()).unwrap(),
    )
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn concurrent_requests_over_tcp_with_graceful_shutdown() {
    let engine = engine();
    let reference = vec!["id int".to_owned(), "name varchar".to_owned()];
    // Ground truth from the engine before it moves into the server.
    let expected = engine.search(&reference, Some(5), Some(0.2)).unwrap();
    let sets = engine.len();

    let server = serve(engine, "127.0.0.1:0", 4).unwrap();
    let addr = server.addr();
    let search_body = format!(
        "{{\"reference\": [\"{}\", \"{}\"], \"k\": 5, \"floor\": 0.2}}",
        reference[0], reference[1],
    );

    // CLIENTS threads, each driving one keep-alive connection through
    // healthz → search → stats.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let expected = &expected;
                let search_body = search_body.as_str();
                scope.spawn(move || {
                    let (mut stream, mut reader) = connect(addr);

                    let (status, health) =
                        roundtrip(&mut stream, &mut reader, "GET", "/healthz", "");
                    assert_eq!(status, 200);
                    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
                    assert_eq!(health.get("shards").and_then(Json::as_usize), Some(SHARDS));
                    assert_eq!(health.get("sets").and_then(Json::as_usize), Some(sets));

                    let (status, found) =
                        roundtrip(&mut stream, &mut reader, "POST", "/search", search_body);
                    assert_eq!(status, 200, "{found}");
                    let results = found.get("results").and_then(Json::as_array).unwrap();
                    assert_eq!(results.len(), expected.results.len());
                    for (json, &(set, score)) in results.iter().zip(&expected.results) {
                        assert_eq!(json.get("set").and_then(Json::as_usize), Some(set as usize));
                        let got = json.get("score").and_then(Json::as_f64).unwrap();
                        assert!((got - score).abs() < 1e-12);
                    }

                    let (status, stats) = roundtrip(&mut stream, &mut reader, "GET", "/stats", "");
                    assert_eq!(status, 200);
                    assert!(
                        stats
                            .get("requests")
                            .and_then(|r| r.get("search"))
                            .and_then(Json::as_usize)
                            .unwrap()
                            >= 1
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread panicked");
        }
    });

    // After all clients: the request counter saw every search, and the
    // cumulative per-shard stats are populated.
    let (mut stream, mut reader) = connect(addr);
    let (status, stats) = roundtrip(&mut stream, &mut reader, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("search"))
            .and_then(Json::as_usize),
        Some(CLIENTS)
    );
    let shards = stats.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(shards.len(), SHARDS);
    let shard_sets: usize = shards
        .iter()
        .map(|s| s.get("sets").and_then(Json::as_usize).unwrap())
        .sum();
    assert_eq!(shard_sets, sets);
    drop((stream, reader));

    // Graceful shutdown: joins all threads and releases the port.
    server.shutdown();
    assert!(
        TcpListener::bind(addr).is_ok(),
        "port must be released after shutdown"
    );
}

#[test]
fn malformed_and_unknown_requests_over_tcp() {
    let server = serve(engine(), "127.0.0.1:0", 2).unwrap();
    let (mut stream, mut reader) = connect(server.addr());
    let (status, err) = roundtrip(&mut stream, &mut reader, "POST", "/search", "{broken");
    assert_eq!(status, 400);
    assert!(err.get("error").is_some());
    // The connection survives a 400 and serves the next request.
    let (status, _) = roundtrip(&mut stream, &mut reader, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _) = roundtrip(&mut stream, &mut reader, "GET", "/missing", "");
    assert_eq!(status, 404);
    let (status, _) = roundtrip(&mut stream, &mut reader, "PUT", "/search", "{}");
    assert_eq!(status, 405);
    drop((stream, reader));
    server.shutdown();
}

#[test]
fn discover_over_tcp_matches_engine() {
    let engine = engine();
    let refs: Vec<Vec<String>> = vec![
        vec!["id int".into(), "name varchar".into()],
        vec!["zz unmatched".into()],
    ];
    let expected = engine.discover(&refs);
    let server = serve(engine, "127.0.0.1:0", 2).unwrap();
    let (mut stream, mut reader) = connect(server.addr());
    let body = r#"{"references": [["id int", "name varchar"], ["zz unmatched"]]}"#;
    let (status, doc) = roundtrip(&mut stream, &mut reader, "POST", "/discover", body);
    assert_eq!(status, 200, "{doc}");
    let pairs = doc.get("pairs").and_then(Json::as_array).unwrap();
    assert_eq!(pairs.len(), expected.pairs.len());
    for (json, pair) in pairs.iter().zip(&expected.pairs) {
        assert_eq!(
            json.get("r").and_then(Json::as_usize),
            Some(pair.r as usize)
        );
        assert_eq!(
            json.get("s").and_then(Json::as_usize),
            Some(pair.s as usize)
        );
    }
    drop((stream, reader));
    server.shutdown();
}
