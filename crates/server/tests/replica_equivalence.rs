//! Differential proof that replication preserves the service exactly:
//! a durable primary takes a seeded random committed workload over
//! HTTP while a follower (started from an **empty** data dir) tails
//! its replication log over real TCP. Once caught up, the follower
//! must be **byte-identical** to the primary — same serialized engine
//! state, same search ids, same tie order, bit-equal scores — and both
//! must match a reference store that replayed the same updates from
//! scratch (the "fresh rebuild"). Exercised at shard counts 1, 2, 7.
//!
//! The failover leg promotes a caught-up follower, writes to it, and
//! attaches an observer follower to *its* log: the observer must
//! replicate the post-promotion writes byte-identically.

use rand::{rngs::StdRng, Rng, SeedableRng};
use silkmoth_core::{EngineConfig, RelatednessMetric, Update};
use silkmoth_replica::ReplicaServer;
use silkmoth_server::{
    follower_store_config, serve_log, start_follower, FollowerConfig, Json, Request, SearchService,
    ServiceSource, ShardSpec, ShardedEngine, StreamerConfig,
};
use silkmoth_storage::{
    snapshot_bytes, EngineState, SnapshotMeta, Store, StoreConfig, StoreEngine,
};
use silkmoth_text::SimilarityFunction;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.5,
        0.0,
    )
}

fn spec(shards: usize) -> ShardSpec {
    ShardSpec { cfg: cfg(), shards }
}

fn corpus() -> Vec<Vec<String>> {
    (0..12)
        .map(|i| {
            (0..2)
                .map(|j| format!("w{} w{} shared{}", (i * 2 + j) % 7, (i + j) % 5, i % 4))
                .collect()
        })
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("silkmoth-replica-eq-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn nosync() -> StoreConfig {
    StoreConfig {
        sync: false,
        ..StoreConfig::default()
    }
}

fn fast_streamer() -> StreamerConfig {
    StreamerConfig {
        heartbeat: Duration::from_millis(10),
        batch: 32,
        ..StreamerConfig::default()
    }
}

fn fast_follower() -> FollowerConfig {
    FollowerConfig {
        backoff_min: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        ..FollowerConfig::default()
    }
}

fn post(service: &SearchService, path: &str, body: &str) -> (u16, Json) {
    let req = Request::new("POST", path, body.as_bytes().to_vec());
    let resp = service.handle(&req);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    (resp.status, doc)
}

fn delete(service: &SearchService, path: &str, body: &str) -> (u16, Json) {
    let req = Request::new("DELETE", path, body.as_bytes().to_vec());
    let resp = service.handle(&req);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    (resp.status, doc)
}

/// The `/search` results as serialized JSON — compared for exact
/// equality between services, which covers ids, tie order, and score
/// formatting (bit-equality) at once. Pass statistics are excluded:
/// a restored engine may lay out its index differently from an
/// incrementally-updated one, shifting cost counters without changing
/// any output.
fn search_body(service: &SearchService, body: &str) -> String {
    let req = Request::new("POST", "/search", body.as_bytes().to_vec());
    let resp = service.handle(&req);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    format!(
        "{} timed_out={}",
        doc.get("results").expect("search results"),
        doc.get("timed_out").expect("timed_out flag")
    )
}

/// A durable primary service over a fresh store built from the corpus.
fn primary_service(dir: &Path, shards: usize) -> Arc<SearchService> {
    let engine = ShardedEngine::build(&corpus(), cfg(), shards).unwrap();
    let store = Store::create(dir, engine, nosync()).unwrap();
    Arc::new(SearchService::durable(store))
}

/// A durable follower service over an **empty** store — everything it
/// ever holds must come through the replication stream.
fn empty_follower_service(dir: &Path, shards: usize) -> Arc<SearchService> {
    let state = EngineState {
        live: Vec::new(),
        dead: Vec::new(),
        next_id: 0,
        tokenization: cfg().tokenization(),
    };
    let engine = <ShardedEngine as StoreEngine>::restore(&spec(shards), state).unwrap();
    let store = Store::create(dir, engine, follower_store_config(nosync())).unwrap();
    Arc::new(SearchService::durable(store))
}

/// Starts a replication log listener for `service` on an ephemeral
/// port and wires its follower gauge into `/stats`.
fn attach_log(service: &Arc<SearchService>) -> ReplicaServer {
    let source = Arc::new(ServiceSource::new(Arc::clone(service)));
    let log = serve_log(source, "127.0.0.1:0", fast_streamer()).unwrap();
    service.set_follower_gauge(log.follower_gauge());
    log
}

fn update_seq(service: &SearchService) -> u64 {
    let (status, stats) = {
        let req = Request::new("GET", "/stats", Vec::new());
        let resp = service.handle(&req);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, doc)
    };
    assert_eq!(status, 200);
    stats
        .get("storage")
        .and_then(|s| s.get("update_seq"))
        .and_then(Json::as_usize)
        .expect("durable stats carry update_seq") as u64
}

fn wait_caught_up(primary: &SearchService, follower: &SearchService, what: &str) {
    let want = update_seq(primary);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if update_seq(follower) == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: follower stuck at {} of {want}",
            update_seq(follower)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn engine_bytes(service: &SearchService) -> Vec<u8> {
    snapshot_bytes(
        SnapshotMeta::default(),
        &StoreEngine::capture(&*service.engine()),
    )
}

fn assert_services_identical(a: &SearchService, b: &SearchService, what: &str) {
    assert_eq!(engine_bytes(a), engine_bytes(b), "{what}: state differs");
    for probe in [
        r#"{"reference": ["w0 w1 shared0", "w2 w0 shared2"]}"#,
        r#"{"reference": ["w4 w2 shared3"], "k": 5}"#,
        r#"{"reference": ["replica marker 3"], "floor": 0.3}"#,
    ] {
        assert_eq!(
            search_body(a, probe),
            search_body(b, probe),
            "{what}: search {probe} differs"
        );
    }
}

/// One random committed update: applied to the primary over HTTP and
/// returned as the equivalent [`Update`] for the reference replay.
fn random_op(rng: &mut StdRng, primary: &SearchService) -> Update {
    let live: Vec<u32> = StoreEngine::capture(&*primary.engine())
        .live
        .iter()
        .map(|(id, _)| *id)
        .collect();
    let roll: u32 = rng.random_range(0..10u32);
    if roll < 6 || live.len() < 4 {
        let sets: Vec<Vec<String>> = (0..rng.random_range(1..3usize))
            .map(|_| {
                (0..rng.random_range(1..3usize))
                    .map(|_| {
                        format!(
                            "w{} shared{} replica marker {}",
                            rng.random_range(0..7u32),
                            rng.random_range(0..5u32),
                            rng.random_range(0..9u32),
                        )
                    })
                    .collect()
            })
            .collect();
        let body = format!(
            r#"{{"sets": [{}]}}"#,
            sets.iter()
                .map(|s| format!(
                    "[{}]",
                    s.iter()
                        .map(|e| format!("{e:?}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ))
                .collect::<Vec<_>>()
                .join(",")
        );
        let (status, doc) = post(primary, "/sets", &body);
        assert_eq!(status, 200, "{doc}");
        Update::Append(sets)
    } else if roll < 9 {
        let mut ids: Vec<u32> = (0..rng.random_range(1..3usize))
            .map(|_| live[rng.random_range(0..live.len())])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let body = format!(
            r#"{{"ids": [{}]}}"#,
            ids.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
        );
        let (status, doc) = delete(primary, "/sets", &body);
        assert_eq!(status, 200, "{doc}");
        Update::Remove(ids)
    } else {
        let (status, doc) = post(primary, "/compact", "");
        assert_eq!(status, 200, "{doc}");
        Update::Compact
    }
}

#[test]
fn follower_matches_primary_and_rebuild_across_shard_counts() {
    for shards in [1usize, 2, 7] {
        let seed = 0x5eed_0000 + shards as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let p_dir = temp_dir(&format!("p{shards}"));
        let f_dir = temp_dir(&format!("f{shards}"));
        let r_dir = temp_dir(&format!("r{shards}"));

        let primary = primary_service(&p_dir, shards);
        let mut log = attach_log(&primary);
        let follower = empty_follower_service(&f_dir, shards);
        let runtime = start_follower(
            Arc::clone(&follower),
            log.local_addr().to_string(),
            spec(shards),
            follower_store_config(nosync()),
            fast_follower(),
        );
        // The reference: a separate store replaying the identical
        // update sequence from the identical starting state — what a
        // from-scratch rebuild of the primary's history produces.
        let mut reference = Store::create(
            &r_dir,
            ShardedEngine::build(&corpus(), cfg(), shards).unwrap(),
            nosync(),
        )
        .unwrap();

        for i in 0..60 {
            let op = random_op(&mut rng, &primary);
            reference.apply(op).unwrap();
            if i % 17 == 16 {
                // Rotate the primary's WAL mid-run: a follower whose
                // cursor predates the retained log must re-bootstrap.
                let (status, doc) = post(&primary, "/snapshot", "");
                assert_eq!(status, 200, "{doc}");
            }
        }

        wait_caught_up(&primary, &follower, &format!("shards={shards}"));
        assert_services_identical(&primary, &follower, &format!("shards={shards} follower"));
        assert_eq!(
            engine_bytes(&primary),
            snapshot_bytes(
                SnapshotMeta::default(),
                &StoreEngine::capture(reference.engine())
            ),
            "shards={shards}: primary diverged from the from-scratch replay"
        );

        runtime.shared.stop();
        let _ = runtime.handle.join();
        log.shutdown();
        for dir in [&p_dir, &f_dir, &r_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[test]
fn promoted_follower_accepts_writes_that_an_observer_replicates() {
    let shards = 2usize;
    let p_dir = temp_dir("promo-p");
    let f_dir = temp_dir("promo-f");
    let o_dir = temp_dir("promo-o");

    let primary = primary_service(&p_dir, shards);
    let mut p_log = attach_log(&primary);
    let follower = empty_follower_service(&f_dir, shards);
    let runtime = start_follower(
        Arc::clone(&follower),
        p_log.local_addr().to_string(),
        spec(shards),
        follower_store_config(nosync()),
        fast_follower(),
    );

    let (status, doc) = post(&primary, "/sets", r#"{"sets": [["before failover"]]}"#);
    assert_eq!(status, 200, "{doc}");
    wait_caught_up(&primary, &follower, "pre-promotion");

    // Writes bounce off the follower until it is promoted.
    let (status, _) = post(&follower, "/sets", r#"{"sets": [["too early"]]}"#);
    assert_eq!(status, 409);
    let (status, doc) = post(&follower, "/promote", "");
    assert_eq!(status, 200, "{doc}");
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(doc.get("epoch").and_then(Json::as_usize), Some(1));
    let _ = runtime.handle.join();

    // The promoted follower is a primary now: it takes writes and
    // ships its own log, post-promotion history included.
    let (status, doc) = post(
        &follower,
        "/sets",
        r#"{"sets": [["after failover"], ["w0 w1 shared0 epilogue"]]}"#,
    );
    assert_eq!(status, 200, "{doc}");
    let (status, doc) = delete(&follower, "/sets", r#"{"ids": [3]}"#);
    assert_eq!(status, 200, "{doc}");

    let mut f_log = attach_log(&follower);
    let observer = empty_follower_service(&o_dir, shards);
    let obs_runtime = start_follower(
        Arc::clone(&observer),
        f_log.local_addr().to_string(),
        spec(shards),
        follower_store_config(nosync()),
        fast_follower(),
    );
    wait_caught_up(&follower, &observer, "observer");
    assert_services_identical(&follower, &observer, "observer of the promoted follower");

    obs_runtime.shared.stop();
    let _ = obs_runtime.handle.join();
    f_log.shutdown();
    p_log.shutdown();
    for dir in [&p_dir, &f_dir, &o_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
