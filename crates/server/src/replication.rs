//! Replication wiring for the HTTP service: a [`ReplicationSource`]
//! over a running [`SearchService`]'s durable store (so `serve
//! --replicate-addr` can ship its WAL to followers), and a
//! [`ReplicaSink`] + [`start_follower`] that tail a primary into a
//! follower service (`serve --replicate-from`).
//!
//! Both sides reuse the service's own backend lock, so replicated
//! records serialize with HTTP traffic exactly like local updates do:
//! a search on a follower sees all of a replicated update or none of
//! it. The follower's HTTP surface stays read-only (update routes
//! answer `409` naming the primary) until `POST /promote` stops the
//! tail loop, bumps the store's failover epoch durably, and flips the
//! service to the primary role.

use crate::durable::ShardSpec;
use crate::service::SearchService;
use crate::shard::ShardedEngine;
use silkmoth_core::wire::decode_update;
use silkmoth_replica::{
    run_follower, store_records_after, CommitSignal, FollowerShared, ReplicaError, ReplicaSink,
    ReplicationSource, TcpConnector,
};
use silkmoth_storage::{
    parse_snapshot, snapshot_bytes, SnapshotMeta, StorageError, Store, StoreConfig, StoreEngine,
};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A [`ReplicationSource`] over the durable store inside a running
/// [`SearchService`]. The service must have been built with
/// [`SearchService::durable`]; every method fails (or reports empty)
/// against an ephemeral service.
pub struct ServiceSource {
    service: Arc<SearchService>,
}

impl ServiceSource {
    /// Wraps `service`. The service's own commit signal (installed by
    /// [`SearchService::durable`]) provides the commit-point wakeups.
    pub fn new(service: Arc<SearchService>) -> Self {
        Self { service }
    }

    fn signal(&self) -> &Arc<CommitSignal> {
        self.service.commit_signal()
    }
}

fn not_durable() -> ReplicaError {
    ReplicaError::Protocol("service is not durable; replication needs --data-dir".to_string())
}

impl ReplicationSource for ServiceSource {
    fn epoch(&self) -> u64 {
        self.service
            .read_durable(|store| store.status().epoch)
            .unwrap_or(0)
    }

    fn committed_seq(&self) -> u64 {
        self.signal().current()
    }

    fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64 {
        self.signal().wait_beyond(seen, timeout)
    }

    fn records_after(
        &self,
        applied: u64,
        limit: usize,
    ) -> Result<Option<Vec<Vec<u8>>>, ReplicaError> {
        let (dir, status) = self
            .service
            .read_durable(|store| (store.dir().to_path_buf(), store.status()))
            .ok_or_else(not_durable)?;
        store_records_after(&dir, &status, applied, limit)
    }

    fn snapshot(&self) -> Result<(Vec<u8>, u64, u64), ReplicaError> {
        self.service
            .read_durable(|store| {
                let status = store.status();
                let meta = SnapshotMeta {
                    seq: status.snapshot_seq,
                    update_seq: status.update_seq,
                    epoch: status.epoch,
                };
                let bytes = snapshot_bytes(meta, &StoreEngine::capture(store.engine()));
                (bytes, status.update_seq, status.epoch)
            })
            .ok_or_else(not_durable)
    }
}

/// A [`ReplicaSink`] that lands replicated records in a
/// [`SearchService`]'s durable store, under the service's write lock —
/// so follower searches serialize with replication exactly as primary
/// searches serialize with local writes.
pub struct ServiceSink {
    service: Arc<SearchService>,
    spec: ShardSpec,
    cfg: StoreConfig,
}

impl ServiceSink {
    /// Wraps `service`; `spec` and `cfg` rebuild the store when a
    /// bootstrap snapshot arrives. `cfg`'s compaction policy must be
    /// disabled — compactions are replicated, never local decisions.
    pub fn new(service: Arc<SearchService>, spec: ShardSpec, cfg: StoreConfig) -> Self {
        Self { service, spec, cfg }
    }
}

impl ReplicaSink for ServiceSink {
    fn epoch(&self) -> u64 {
        self.service
            .read_durable(|store| store.status().epoch)
            .unwrap_or(0)
    }

    fn applied_seq(&self) -> u64 {
        self.service
            .read_durable(|store| store.status().update_seq)
            .unwrap_or(0)
    }

    fn install_snapshot(
        &mut self,
        snapshot: &[u8],
        seq: u64,
        epoch: u64,
    ) -> Result<(), ReplicaError> {
        let (meta, state) = parse_snapshot(snapshot, "replication bootstrap snapshot")
            .map_err(ReplicaError::Storage)?;
        if meta.update_seq != seq || meta.epoch != epoch {
            return Err(ReplicaError::Protocol(format!(
                "snapshot frame says (seq {seq}, epoch {epoch}) but its payload says (seq {}, epoch {})",
                meta.update_seq, meta.epoch
            )));
        }
        let engine = <ShardedEngine as StoreEngine>::restore(&self.spec, state)
            .map_err(ReplicaError::Storage)?;
        let dir = self
            .service
            .read_durable(|store| store.dir().to_path_buf())
            .ok_or_else(not_durable)?;
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(ReplicaError::Io {
                    context: format!("wipe follower dir {} for bootstrap", dir.display()),
                    source: e,
                })
            }
        }
        let store = Store::create_continuing(&dir, engine, self.cfg, seq, epoch)
            .map_err(ReplicaError::Storage)?;
        if self.service.replace_durable_store(store) {
            Ok(())
        } else {
            Err(not_durable())
        }
    }

    fn apply_record(&mut self, seq: u64, payload: &[u8]) -> Result<(), ReplicaError> {
        let decoded = decode_update(payload)
            .map_err(|e| ReplicaError::Protocol(format!("record {seq} does not decode: {e}")))?;
        let result = self
            .service
            .with_durable_store(|store| {
                let receipt = store.apply(decoded.update).map_err(ReplicaError::Storage)?;
                if receipt.auto_compacted {
                    return Err(ReplicaError::Protocol(format!(
                        "follower store compacted on its own at record {seq}; the follower \
                         compaction policy must be disabled"
                    )));
                }
                if let (Some(theirs), Some(ours)) = (&decoded.remap, &receipt.outcome.remap) {
                    if theirs != ours {
                        return Err(ReplicaError::Protocol(format!(
                            "record {seq}: compaction remap diverged from the primary's"
                        )));
                    }
                }
                let now = store.status().update_seq;
                if now != seq {
                    return Err(ReplicaError::Protocol(format!(
                        "applying record {seq} left the store at seq {now}"
                    )));
                }
                Ok(())
            })
            .ok_or_else(not_durable)?;
        result
    }
}

/// A running follower loop attached to a service.
pub struct FollowerRuntime {
    /// Status/stop handle (also reachable through the service's
    /// replication role).
    pub shared: Arc<FollowerShared>,
    /// The loop's thread; joins shortly after
    /// [`FollowerShared::stop`].
    pub handle: JoinHandle<()>,
}

/// Puts `service` in the follower role and starts tailing
/// `primary_addr` (a replication-log listener, not the HTTP port) on a
/// background thread. The service's update routes answer `409` until
/// `POST /promote`; an unreachable primary is retried with bounded
/// backoff forever, visible in `/healthz` and `/stats` rather than
/// fatal.
pub fn start_follower(
    service: Arc<SearchService>,
    primary_addr: String,
    spec: ShardSpec,
    store_cfg: StoreConfig,
    cfg: FollowerConfig,
) -> FollowerRuntime {
    let shared = Arc::new(FollowerShared::new());
    // Sampled replication applies land in the same trace ring as HTTP
    // requests, so `/debug/traces` on a follower covers both.
    shared.set_tracer(Arc::clone(service.tracer()));
    service.set_role_follower(primary_addr.clone(), Arc::clone(&shared));
    let connector = TcpConnector {
        addr: primary_addr,
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        shared: Some(Arc::clone(&shared)),
    };
    let sink = ServiceSink::new(service, spec, store_cfg);
    let handle = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            run_follower(connector, sink, &shared, &cfg);
        })
    };
    FollowerRuntime { shared, handle }
}

/// Re-exported constructor check: a follower store must never compact
/// on its own. Returns `cfg` with the compaction half of the policy
/// cleared (auto-*snapshots* are state-neutral and stay allowed).
pub fn follower_store_config(mut cfg: StoreConfig) -> StoreConfig {
    cfg.policy.max_dead_ratio = None;
    cfg
}

/// Validation helper shared by tests and the CLI: true when `e` says
/// the directory has no usable store (fresh follower) as opposed to an
/// I/O failure worth surfacing.
pub fn dir_needs_fresh_store(e: &StorageError) -> bool {
    matches!(
        e,
        StorageError::NotInitialized { .. } | StorageError::NoValidSnapshot { .. }
    )
}

pub use silkmoth_replica::{serve_log, FollowerConfig, ReplicaServer, StreamerConfig};
