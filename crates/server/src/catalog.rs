//! The multi-tenant front: a [`CatalogService`] routes requests across
//! named collections, each served by its own [`SearchService`] (own
//! [`ShardedEngine`], own durable store directory, own quota bounds,
//! own `collection`-labelled metric series on the shared registry).
//!
//! ## Routes
//!
//! * `GET /collections` — list every collection;
//! * `PUT /collections/<name>` — create (optional JSON body:
//!   `{"shards": n, "quotas": {...}}`);
//! * `GET /collections/<name>` — one collection's spec + summary;
//! * `DELETE /collections/<name>` — drop (the `default` collection
//!   cannot be dropped);
//! * `/collections/<name>/<route>` — any service route, scoped: the
//!   prefix is stripped and the request dispatched to that collection's
//!   service, so `/collections/a/search` behaves exactly like `/search`
//!   against collection `a`;
//! * everything else — the `default` collection, byte-for-byte the
//!   single-tenant server's behaviour (`GET /stats` and `GET /healthz`
//!   additionally gain a `collections` section).
//!
//! ## Isolation
//!
//! Per-tenant quotas ride machinery that already exists per service:
//! `max_inflight_updates` bounds **that collection's own** in-flight
//! counter (503 + `Retry-After` beyond it), so one tenant saturating
//! its write path cannot make the admission check reject another
//! tenant's requests; `deadline_cap_ms` caps that collection's search
//! deadline (504 on exhaustion); `max_sets`/`max_bytes` answer a named
//! 403 at append time.
//!
//! ## Durability
//!
//! With a data directory, the registry itself is durable: a versioned
//! [`Manifest`] (`catalog.manifest`, atomic tempfile+rename updates)
//! lists every collection, and each non-default collection's store
//! lives under `collections/<name>/`. The default collection's store
//! stays at the directory root — the exact legacy layout, so a
//! pre-catalog data directory opens unchanged and a catalog directory
//! still opens under a pre-catalog binary (which simply ignores the
//! manifest and the subdirectory). [`CatalogService::open`] recovers
//! every collection after `kill -9`.

use std::collections::BTreeMap;
use std::io;
use std::net::ToSocketAddrs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use silkmoth_catalog::{
    validate_name, CollectionSpec, Manifest, ManifestError, Quotas, DEFAULT_COLLECTION,
    MANIFEST_FILE,
};
use silkmoth_core::{CompactionPolicy, ConfigError, EngineConfig};
use silkmoth_storage::{StorageError, Store, StoreConfig};
use silkmoth_telemetry::{Gauge, Registry};

use crate::durable::ShardSpec;
use crate::http::{self, HttpServer, Request, Response};
use crate::json::{obj, Json};
use crate::metrics::ServiceMetrics;
use crate::service::{error_response, parse_body, SearchService};
use crate::shard::ShardedEngine;

/// How the catalog builds collection services: the shared engine
/// configuration, where stores live, and the server-wide defaults a
/// collection's own quotas refine.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// `Some`: durable mode — the manifest and every collection store
    /// live here (`None`: everything is in-memory).
    pub data_dir: Option<PathBuf>,
    /// Engine configuration shared by every collection (metric,
    /// thresholds, tokenization — a snapshot doesn't store it, so one
    /// process serves one configuration).
    pub engine_cfg: EngineConfig,
    /// Store configuration (sync, compaction policy) for durable
    /// collection stores.
    pub store_cfg: StoreConfig,
    /// Compaction policy for ephemeral collections.
    pub ephemeral_policy: CompactionPolicy,
    /// Shard count for new collections that don't ask for their own.
    pub default_shards: usize,
    /// Upper bound on registered collections (including `default`) —
    /// also the declared cardinality bound for the `collection` metric
    /// label, published as `silkmoth_catalog_collections_max`.
    pub max_collections: usize,
    /// Server-wide in-flight update bound, applied to each collection
    /// (its own counter) unless the collection's quota overrides it.
    pub max_inflight_updates: Option<usize>,
    /// Server-wide search deadline; a collection's `deadline_cap_ms`
    /// quota can only tighten it.
    pub search_timeout: Option<Duration>,
}

/// Why the catalog failed to open or mutate durable state.
#[derive(Debug)]
pub enum CatalogError {
    /// The catalog manifest failed to load/save.
    Manifest(ManifestError),
    /// A collection store failed to open/create.
    Storage(StorageError),
    /// The engine configuration rejected a collection's state.
    Config(ConfigError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Manifest(e) => write!(f, "catalog: {e}"),
            Self::Storage(e) => write!(f, "catalog storage: {e}"),
            Self::Config(e) => write!(f, "catalog config: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<ManifestError> for CatalogError {
    fn from(e: ManifestError) -> Self {
        Self::Manifest(e)
    }
}

impl From<StorageError> for CatalogError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<ConfigError> for CatalogError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

/// The multi-tenant collection registry fronting one HTTP listener.
/// See the module docs for routing and isolation semantics.
#[derive(Debug)]
pub struct CatalogService {
    /// The collection unscoped routes serve. Built by the caller
    /// exactly like the single-tenant service (including replication
    /// wiring, which covers the default collection only).
    default: Arc<SearchService>,
    /// Every non-default collection, by name.
    extras: RwLock<BTreeMap<String, Arc<SearchService>>>,
    /// The durable registry the `extras` map mirrors.
    manifest: Mutex<Manifest>,
    config: CatalogConfig,
    /// The shared metric registry (the default service's), where each
    /// collection's labelled families and the catalog gauges live.
    registry: Arc<Registry>,
    /// `silkmoth_catalog_collections`: registered collections,
    /// including `default`.
    collections_gauge: Gauge,
}

/// Where a non-default collection's store lives.
fn collection_dir(data_dir: &Path, name: &str) -> PathBuf {
    data_dir.join("collections").join(name)
}

/// An empty sharded engine (what a freshly created collection serves).
fn empty_engine(cfg: EngineConfig, shards: usize) -> Result<ShardedEngine, ConfigError> {
    ShardedEngine::restore(Vec::new(), &[], 0, cfg, shards)
}

/// Applies a collection's quotas (over the server-wide defaults) and
/// its labelled metric bundle to a freshly built service.
fn configure_service(
    service: SearchService,
    name: &str,
    quotas: &Quotas,
    config: &CatalogConfig,
    registry: &Arc<Registry>,
) -> Arc<SearchService> {
    let mut service = service.with_metrics(ServiceMetrics::for_collection(registry, name));
    let inflight = quotas
        .max_inflight_updates
        .map(|n| n as usize)
        .or(config.max_inflight_updates);
    if let Some(n) = inflight {
        service = service.with_max_inflight_updates(n);
    }
    if let Some(n) = quotas.max_sets {
        service = service.with_max_sets(n as usize);
    }
    if let Some(n) = quotas.max_bytes {
        service = service.with_max_bytes(n);
    }
    let cap = quotas.deadline_cap_ms.map(Duration::from_millis);
    let timeout = match (cap, config.search_timeout) {
        (Some(cap), Some(server)) => Some(server.min(cap)),
        (Some(cap), None) => Some(cap),
        (None, server) => server,
    };
    if let Some(t) = timeout {
        service = service.with_search_timeout(t);
    }
    Arc::new(service)
}

impl CatalogService {
    /// Wraps an already-built default service and recovers every
    /// manifest-registered collection. A data directory without a
    /// manifest (legacy single-collection layout, or brand new) gets a
    /// default-only manifest written; an unknown manifest version is a
    /// hard error (never guess at another format's layout).
    pub fn open(default: Arc<SearchService>, config: CatalogConfig) -> Result<Self, CatalogError> {
        let registry = Arc::clone(default.metrics().registry());
        let collections_gauge = registry.gauge(
            "silkmoth_catalog_collections",
            "Collections currently registered in the catalog (including default)",
            &[],
        );
        registry
            .gauge(
                "silkmoth_catalog_collections_max",
                "Upper bound on catalog collections — the declared cardinality bound \
                 for the 'collection' metric label",
                &[],
            )
            .set(config.max_collections as i64);
        let manifest_path = config.data_dir.as_ref().map(|d| d.join(MANIFEST_FILE));
        let mut manifest = match &manifest_path {
            Some(path) => Manifest::load(path)?.unwrap_or_default(),
            None => Manifest::default(),
        };
        if manifest.get(DEFAULT_COLLECTION).is_none() {
            manifest
                .upsert(CollectionSpec {
                    name: DEFAULT_COLLECTION.to_owned(),
                    shards: default.engine().shard_count() as u32,
                    quotas: Quotas::default(),
                })
                .expect("the default collection name is valid");
            if let Some(path) = &manifest_path {
                manifest.save(path)?;
            }
        }
        let mut extras = BTreeMap::new();
        for spec in manifest.collections() {
            if spec.name == DEFAULT_COLLECTION {
                continue;
            }
            let shards = (spec.shards as usize).max(1);
            let service = match &config.data_dir {
                Some(data_dir) => {
                    let dir = collection_dir(data_dir, &spec.name);
                    let shard_spec = ShardSpec {
                        cfg: config.engine_cfg,
                        shards,
                    };
                    match Store::open(&dir, &shard_spec, config.store_cfg) {
                        Ok((store, _report)) => SearchService::durable(store),
                        // Registered but storeless: a crash between the
                        // manifest write and the store create. Honour
                        // the registration with an empty store.
                        Err(StorageError::NotInitialized { .. }) => {
                            let engine = empty_engine(config.engine_cfg, shards)?;
                            SearchService::durable(Store::create(&dir, engine, config.store_cfg)?)
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                None => SearchService::new(empty_engine(config.engine_cfg, shards)?)
                    .with_policy(config.ephemeral_policy),
            };
            let service = configure_service(service, &spec.name, &spec.quotas, &config, &registry);
            extras.insert(spec.name.clone(), service);
        }
        collections_gauge.set(1 + extras.len() as i64);
        Ok(Self {
            default,
            extras: RwLock::new(extras),
            manifest: Mutex::new(manifest),
            config,
            registry,
            collections_gauge,
        })
    }

    /// The `default` collection's service (what unscoped routes hit).
    pub fn default_service(&self) -> &Arc<SearchService> {
        &self.default
    }

    /// The service for `name`, if that collection exists.
    pub fn collection(&self, name: &str) -> Option<Arc<SearchService>> {
        if name == DEFAULT_COLLECTION {
            return Some(Arc::clone(&self.default));
        }
        self.extras
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Every collection name, `default` first.
    pub fn collection_names(&self) -> Vec<String> {
        let mut names = vec![DEFAULT_COLLECTION.to_owned()];
        names.extend(
            self.extras
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .keys()
                .cloned(),
        );
        names
    }

    /// Routes one request: catalog management and collection-scoped
    /// paths are handled here, everything else goes to the `default`
    /// service unchanged (with `GET /stats` / `GET /healthz` gaining
    /// the per-collection section on the way out).
    pub fn handle(&self, req: &Request) -> Response {
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (req.path.as_str(), None),
        };
        if path == "/collections" || path.starts_with("/collections/") {
            // Scoped dispatch: the inner service owns the request's
            // observability (its own request id, metrics, logging).
            if let Some(rest) = path.strip_prefix("/collections/") {
                if let Some((name, tail)) = rest.split_once('/') {
                    if validate_name(name).is_ok() {
                        if let Some(service) = self.collection(name) {
                            return service.handle(&scoped_request(req, tail, query));
                        }
                    }
                }
            }
            // Management (and scoped-lookup failures): observed at the
            // catalog level under the one "/collections" route label.
            let start = Instant::now();
            let resp = self.management(req, path);
            self.default
                .metrics()
                .observe_request("/collections", resp.status, start.elapsed());
            return resp;
        }
        let resp = self.default.handle(req);
        if req.method == "GET" && (path == "/stats" || path == "/healthz") && resp.status == 200 {
            return self.with_collections_section(resp);
        }
        resp
    }

    fn management(&self, req: &Request, path: &str) -> Response {
        if path == "/collections" {
            return match req.method.as_str() {
                "GET" => self.list(),
                _ => error_response(405, "method not allowed for this route"),
            };
        }
        let rest = path.strip_prefix("/collections/").expect("caller checked");
        let (name, tail) = match rest.split_once('/') {
            Some((name, tail)) => (name, Some(tail)),
            None => (rest, None),
        };
        if let Err(e) = validate_name(name) {
            return error_response(400, &format!("invalid collection name: {e}"));
        }
        if tail.is_some() {
            // A valid name with a scoped tail only lands here when the
            // collection doesn't exist (the dispatch above handled the
            // live ones).
            return error_response(404, &format!("no such collection '{name}'"));
        }
        match req.method.as_str() {
            "PUT" => self.create(name, &req.body),
            "GET" => self.info(name),
            "DELETE" => self.drop_collection(name),
            _ => error_response(405, "method not allowed for this route"),
        }
    }

    fn list(&self) -> Response {
        // Clone the specs out before touching the extras map: create()
        // and drop_collection() take extras before manifest, so holding
        // the manifest across a collection() lookup would invert the
        // lock order.
        let specs: Vec<CollectionSpec> = self
            .manifest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .collections()
            .to_vec();
        let collections: Vec<Json> = specs
            .iter()
            .map(|spec| {
                let mut fields = vec![
                    ("name".to_owned(), Json::Str(spec.name.clone())),
                    ("shards".to_owned(), Json::Num(f64::from(spec.shards))),
                ];
                if let Some(service) = self.collection(&spec.name) {
                    fields.push(("sets".to_owned(), Json::Num(service.engine().len() as f64)));
                }
                fields.push(("quotas".to_owned(), quotas_json(&spec.quotas)));
                Json::Obj(fields)
            })
            .collect();
        Response::json(
            200,
            obj(vec![("collections", Json::Arr(collections))]).to_string(),
        )
    }

    fn info(&self, name: &str) -> Response {
        let Some(service) = self.collection(name) else {
            return error_response(404, &format!("no such collection '{name}'"));
        };
        let quotas = self
            .manifest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|spec| spec.quotas)
            .unwrap_or_default();
        let mut fields = vec![("name".to_owned(), Json::Str(name.to_owned()))];
        let Json::Obj(summary) = service.collection_summary_json() else {
            unreachable!("collection summaries are objects");
        };
        fields.extend(summary);
        fields.push(("quotas".to_owned(), quotas_json(&quotas)));
        Response::json(200, Json::Obj(fields).to_string())
    }

    fn create(&self, name: &str, body: &[u8]) -> Response {
        if let Some(resp) = self.default.reject_if_follower() {
            return resp;
        }
        let (shards, quotas) = match parse_create_body(body, self.config.default_shards) {
            Ok(parsed) => parsed,
            Err(resp) => return resp,
        };
        // The extras write lock serializes every create/drop, so the
        // map, the manifest, and the gauge stay consistent.
        let mut extras = self.extras.write().unwrap_or_else(PoisonError::into_inner);
        if name == DEFAULT_COLLECTION || extras.contains_key(name) {
            return error_response(409, &format!("collection '{name}' already exists"));
        }
        if 1 + extras.len() >= self.config.max_collections {
            return error_response(
                403,
                &format!(
                    "collection limit reached ({} of --max-collections {})",
                    1 + extras.len(),
                    self.config.max_collections
                ),
            );
        }
        let engine = match empty_engine(self.config.engine_cfg, shards) {
            Ok(engine) => engine,
            Err(e) => return error_response(400, &format!("engine config: {e}")),
        };
        // Store first, manifest second: a crash in between leaves an
        // orphan directory (harmless), never a registered collection
        // without its store.
        let service = match &self.config.data_dir {
            Some(data_dir) => {
                let dir = collection_dir(data_dir, name);
                match Store::create(&dir, engine, self.config.store_cfg) {
                    Ok(store) => SearchService::durable(store),
                    Err(e) => return error_response(500, &format!("storage: {e}")),
                }
            }
            None => SearchService::new(engine).with_policy(self.config.ephemeral_policy),
        };
        let service = configure_service(service, name, &quotas, &self.config, &self.registry);
        let mut manifest = self.manifest.lock().unwrap_or_else(PoisonError::into_inner);
        manifest
            .upsert(CollectionSpec {
                name: name.to_owned(),
                shards: shards as u32,
                quotas,
            })
            .expect("name validated by the route");
        if let Some(data_dir) = &self.config.data_dir {
            if let Err(e) = manifest.save(&data_dir.join(MANIFEST_FILE)) {
                // Roll the registration back: an unregistered store
                // directory is recoverable garbage, a collection the
                // next restart forgets is acked data loss.
                manifest.remove(name);
                return error_response(500, &format!("saving catalog manifest: {e}"));
            }
        }
        extras.insert(name.to_owned(), service);
        self.collections_gauge.set(1 + extras.len() as i64);
        Response::json(
            200,
            obj(vec![
                ("created", Json::Str(name.to_owned())),
                ("shards", Json::Num(shards as f64)),
            ])
            .to_string(),
        )
    }

    fn drop_collection(&self, name: &str) -> Response {
        if let Some(resp) = self.default.reject_if_follower() {
            return resp;
        }
        if name == DEFAULT_COLLECTION {
            return error_response(409, "the default collection cannot be dropped");
        }
        let mut extras = self.extras.write().unwrap_or_else(PoisonError::into_inner);
        if !extras.contains_key(name) {
            return error_response(404, &format!("no such collection '{name}'"));
        }
        let mut manifest = self.manifest.lock().unwrap_or_else(PoisonError::into_inner);
        let removed_spec = manifest.get(name).cloned();
        manifest.remove(name);
        if let Some(data_dir) = &self.config.data_dir {
            if let Err(e) = manifest.save(&data_dir.join(MANIFEST_FILE)) {
                if let Some(spec) = removed_spec {
                    manifest.upsert(spec).expect("spec came from the manifest");
                }
                return error_response(500, &format!("saving catalog manifest: {e}"));
            }
        }
        extras.remove(name);
        self.collections_gauge.set(1 + extras.len() as i64);
        // Unregistered first, purged second: if the purge fails the
        // orphan directory is inert (the manifest no longer points at
        // it, and a same-name create would fail loudly on the existing
        // store rather than resurrect old data — so report it).
        let mut fields = vec![("dropped", Json::Str(name.to_owned()))];
        if let Some(data_dir) = &self.config.data_dir {
            if let Err(e) = std::fs::remove_dir_all(collection_dir(data_dir, name)) {
                fields.push(("purge_error", Json::Str(e.to_string())));
            }
        }
        Response::json(200, obj(fields).to_string())
    }

    /// Appends the per-collection `collections` section to a `/stats`
    /// or `/healthz` body. Lock poison is recovered throughout
    /// (`into_inner` + each summary's own recovery): one tenant's
    /// panicked writer must not take the whole page down.
    fn with_collections_section(&self, resp: Response) -> Response {
        let Ok(text) = std::str::from_utf8(&resp.body) else {
            return resp;
        };
        let Ok(Json::Obj(mut fields)) = Json::parse(text) else {
            return resp;
        };
        let mut sections = vec![(
            DEFAULT_COLLECTION.to_owned(),
            self.default.collection_summary_json(),
        )];
        let extras = self.extras.read().unwrap_or_else(PoisonError::into_inner);
        for (name, service) in extras.iter() {
            sections.push((name.clone(), service.collection_summary_json()));
        }
        drop(extras);
        fields.push(("collections".to_owned(), Json::Obj(sections)));
        Response::json(resp.status, Json::Obj(fields).to_string())
    }
}

/// Rebuilds a scoped request against the inner service: the
/// `/collections/<name>` prefix stripped, the query string kept.
fn scoped_request(req: &Request, tail: &str, query: Option<&str>) -> Request {
    let path = match query {
        Some(q) => format!("/{tail}?{q}"),
        None => format!("/{tail}"),
    };
    let mut inner = Request::new(&req.method, &path, req.body.clone());
    inner.headers = req.headers.clone();
    inner
}

/// Parses the optional `PUT /collections/<name>` body:
/// `{"shards": n, "quotas": {"max_inflight_updates"|"max_sets"|
/// "max_bytes"|"deadline_cap_ms": n, ...}}`. An empty body means
/// server defaults.
fn parse_create_body(body: &[u8], default_shards: usize) -> Result<(usize, Quotas), Response> {
    if body.is_empty() {
        return Ok((default_shards, Quotas::default()));
    }
    let doc = parse_body(body)?;
    let shards = match doc.get("shards") {
        None => default_shards,
        Some(v) => match v.as_usize() {
            Some(n) if n >= 1 => n,
            _ => return Err(error_response(400, "'shards' must be a positive integer")),
        },
    };
    let mut quotas = Quotas::default();
    if let Some(q) = doc.get("quotas") {
        let Json::Obj(pairs) = q else {
            return Err(error_response(400, "'quotas' must be an object"));
        };
        for (key, value) in pairs {
            let Some(n) = value.as_usize() else {
                return Err(error_response(
                    400,
                    &format!("quota '{key}' must be a non-negative integer"),
                ));
            };
            let n = n as u64;
            match key.as_str() {
                "max_inflight_updates" => quotas.max_inflight_updates = Some(n),
                "max_sets" => quotas.max_sets = Some(n),
                "max_bytes" => quotas.max_bytes = Some(n),
                "deadline_cap_ms" => quotas.deadline_cap_ms = Some(n),
                other => {
                    return Err(error_response(
                        400,
                        &format!(
                            "unknown quota '{other}' (max_inflight_updates, max_sets, \
                             max_bytes, deadline_cap_ms)"
                        ),
                    ))
                }
            }
        }
    }
    Ok((shards, quotas))
}

/// A [`Quotas`] as a JSON object (only the set bounds appear).
fn quotas_json(quotas: &Quotas) -> Json {
    let mut fields = Vec::new();
    let mut push = |name: &str, v: Option<u64>| {
        if let Some(n) = v {
            fields.push((name.to_owned(), Json::Num(n as f64)));
        }
    };
    push("max_inflight_updates", quotas.max_inflight_updates);
    push("max_sets", quotas.max_sets);
    push("max_bytes", quotas.max_bytes);
    push("deadline_cap_ms", quotas.deadline_cap_ms);
    Json::Obj(fields)
}

/// Binds `addr` and serves the catalog on `threads` HTTP workers.
pub fn serve_catalog<A: ToSocketAddrs>(
    catalog: Arc<CatalogService>,
    addr: A,
    threads: usize,
) -> io::Result<HttpServer> {
    http::serve(addr, threads, move |req: &Request| catalog.handle(req))
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_core::RelatednessMetric;
    use silkmoth_text::SimilarityFunction;
    use std::sync::mpsc;

    fn engine_cfg() -> EngineConfig {
        EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Jaccard,
            0.5,
            0.0,
        )
    }

    fn ephemeral_config() -> CatalogConfig {
        CatalogConfig {
            data_dir: None,
            engine_cfg: engine_cfg(),
            store_cfg: StoreConfig::default(),
            ephemeral_policy: CompactionPolicy::DISABLED,
            default_shards: 2,
            max_collections: 8,
            max_inflight_updates: None,
            search_timeout: None,
        }
    }

    fn corpus() -> Vec<Vec<String>> {
        (0..12)
            .map(|i| vec![format!("w{} shared{}", i % 5, i % 3)])
            .collect()
    }

    fn catalog_with(config: CatalogConfig) -> CatalogService {
        let default = Arc::new(SearchService::new(
            ShardedEngine::build(&corpus(), engine_cfg(), 2).unwrap(),
        ));
        CatalogService::open(default, config).unwrap()
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request::new(method, path, body.as_bytes().to_vec())
    }

    fn send(catalog: &CatalogService, method: &str, path: &str, body: &str) -> (u16, Json) {
        let resp = catalog.handle(&request(method, path, body));
        let text = String::from_utf8(resp.body).unwrap();
        (resp.status, Json::parse(&text).unwrap())
    }

    #[test]
    fn create_scope_list_and_drop_roundtrip() {
        let catalog = catalog_with(ephemeral_config());
        let (status, body) = send(&catalog, "PUT", "/collections/tenant-a", "{\"shards\": 3}");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("created").and_then(Json::as_str), Some("tenant-a"));

        // Scoped append + search hit only the new collection.
        let (status, body) = send(
            &catalog,
            "POST",
            "/collections/tenant-a/sets",
            r#"{"sets": [["alpha beta"], ["alpha gamma"]]}"#,
        );
        assert_eq!(status, 200, "{body}");
        let (status, body) = send(
            &catalog,
            "POST",
            "/collections/tenant-a/search",
            r#"{"reference": ["alpha beta"]}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert!(
            !body
                .get("results")
                .and_then(Json::as_array)
                .unwrap()
                .is_empty(),
            "{body}"
        );
        // The default collection (12 seed sets) is untouched.
        assert_eq!(catalog.default_service().engine().len(), 12);
        assert_eq!(catalog.collection("tenant-a").unwrap().engine().len(), 2);

        let (status, body) = send(&catalog, "GET", "/collections", "");
        assert_eq!(status, 200);
        let listed: Vec<&str> = body
            .get("collections")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|c| c.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(listed, ["default", "tenant-a"]);

        let (status, body) = send(&catalog, "GET", "/collections/tenant-a", "");
        assert_eq!(status, 200);
        assert_eq!(body.get("sets").and_then(Json::as_usize), Some(2));
        assert_eq!(body.get("shards").and_then(Json::as_usize), Some(3));

        let (status, _) = send(&catalog, "DELETE", "/collections/tenant-a", "");
        assert_eq!(status, 200);
        assert!(catalog.collection("tenant-a").is_none());
        let (status, _) = send(&catalog, "DELETE", "/collections/tenant-a", "");
        assert_eq!(status, 404);
    }

    #[test]
    fn name_validation_rejects_traversal_empty_and_overlong() {
        let catalog = catalog_with(ephemeral_config());
        // `../../etc`: the slashes make it parse as a scoped path whose
        // collection name is `..` — rejected by the same charset rule.
        let (status, body) = send(&catalog, "PUT", "/collections/../../etc", "");
        assert_eq!(status, 400, "{body}");
        assert!(
            body.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("'.'"),
            "{body}"
        );
        let (status, _) = send(&catalog, "PUT", "/collections/.", "");
        assert_eq!(status, 400);
        let long = format!("/collections/{}", "x".repeat(65));
        let (status, body) = send(&catalog, "PUT", &long, "");
        assert_eq!(status, 400);
        assert!(
            body.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("65"),
            "{body}"
        );
        let (status, _) = send(&catalog, "PUT", "/collections/UPPER", "");
        assert_eq!(status, 400);
        // Nothing leaked into the registry.
        assert_eq!(catalog.collection_names(), ["default"]);
    }

    #[test]
    fn management_guards_duplicates_default_and_limits() {
        let mut config = ephemeral_config();
        config.max_collections = 2; // default + one
        let catalog = catalog_with(config);
        let (status, _) = send(&catalog, "PUT", "/collections/default", "");
        assert_eq!(status, 409);
        let (status, _) = send(&catalog, "PUT", "/collections/only", "");
        assert_eq!(status, 200);
        let (status, _) = send(&catalog, "PUT", "/collections/only", "");
        assert_eq!(status, 409);
        let (status, body) = send(&catalog, "PUT", "/collections/more", "");
        assert_eq!(status, 403, "{body}");
        assert!(
            body.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("max-collections"),
            "{body}"
        );
        let (status, _) = send(&catalog, "DELETE", "/collections/default", "");
        assert_eq!(status, 409);
        let (status, _) = send(&catalog, "POST", "/collections/only", "");
        assert_eq!(status, 405);
        let (status, _) = send(&catalog, "POST", "/collections", "");
        assert_eq!(status, 405);
        let (status, _) = send(&catalog, "POST", "/collections/ghost/search", "{}");
        assert_eq!(status, 404);
        // Bad create bodies are named 400s.
        let (status, _) = send(&catalog, "DELETE", "/collections/only", "");
        assert_eq!(status, 200);
        let (status, _) = send(&catalog, "PUT", "/collections/only", "{\"shards\": 0}");
        assert_eq!(status, 400);
        let (status, body) = send(
            &catalog,
            "PUT",
            "/collections/only",
            "{\"quotas\": {\"max_speed\": 1}}",
        );
        assert_eq!(status, 400);
        assert!(
            body.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("max_speed"),
            "{body}"
        );
    }

    #[test]
    fn stats_and_healthz_carry_per_collection_sections() {
        let catalog = catalog_with(ephemeral_config());
        send(&catalog, "PUT", "/collections/aux", "");
        send(
            &catalog,
            "POST",
            "/collections/aux/sets",
            r#"{"sets": [["one two"]]}"#,
        );
        for path in ["/stats", "/healthz"] {
            let (status, body) = send(&catalog, "GET", path, "");
            assert_eq!(status, 200, "{path}");
            let sections = body.get("collections").unwrap();
            let aux = sections.get("aux").unwrap();
            assert_eq!(aux.get("sets").and_then(Json::as_usize), Some(1), "{body}");
            assert_eq!(
                aux.get("update_seq").and_then(Json::as_usize),
                Some(1),
                "{body}"
            );
            let default = sections.get("default").unwrap();
            assert_eq!(
                default.get("sets").and_then(Json::as_usize),
                Some(12),
                "{body}"
            );
            // The single-tenant fields are still present around the
            // new section.
            assert!(body
                .get(if path == "/stats" {
                    "requests"
                } else {
                    "status"
                })
                .is_some());
        }
    }

    #[test]
    fn set_and_byte_quotas_answer_named_403s() {
        let catalog = catalog_with(ephemeral_config());
        send(
            &catalog,
            "PUT",
            "/collections/small",
            r#"{"quotas": {"max_sets": 2, "max_bytes": 100}}"#,
        );
        let (status, _) = send(
            &catalog,
            "POST",
            "/collections/small/sets",
            r#"{"sets": [["tiny"], ["mini"]]}"#,
        );
        assert_eq!(status, 200);
        let (status, body) = send(
            &catalog,
            "POST",
            "/collections/small/sets",
            r#"{"sets": [["over"]]}"#,
        );
        assert_eq!(status, 403, "{body}");
        assert!(
            body.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("max_sets=2"),
            "{body}"
        );
        // Byte quota: a single oversized set trips max_bytes even
        // under the set bound.
        send(
            &catalog,
            "PUT",
            "/collections/wide",
            r#"{"quotas": {"max_bytes": 10}}"#,
        );
        let (status, body) = send(
            &catalog,
            "POST",
            "/collections/wide/sets",
            r#"{"sets": [["this element text is far past ten bytes"]]}"#,
        );
        assert_eq!(status, 403, "{body}");
        assert!(
            body.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("max_bytes=10"),
            "{body}"
        );
    }

    /// The acceptance criterion: a tenant saturating its own
    /// `max_inflight_updates` gets 503s while a concurrent tenant's
    /// search *and* update traffic keeps answering 200 — the bound is
    /// per-collection, so one tenant's pressure never rejects
    /// another's requests.
    #[test]
    fn quota_isolation_one_tenants_503_never_leaks() {
        let catalog = Arc::new(catalog_with(ephemeral_config()));
        send(
            &catalog,
            "PUT",
            "/collections/noisy",
            r#"{"quotas": {"max_inflight_updates": 1}}"#,
        );
        send(&catalog, "PUT", "/collections/quiet", "{}");
        send(
            &catalog,
            "POST",
            "/collections/quiet/sets",
            r#"{"sets": [["quiet seed"]]}"#,
        );

        // A slow reader on `noisy` blocks its writers: the admitted
        // append parks on the write lock holding the collection's only
        // in-flight slot, so the other contender must answer 503
        // immediately. Both contenders run on their own threads — the
        // guard-holding thread must never issue an append itself, or
        // the admitted one would deadlock against its own read guard.
        let noisy = catalog.collection("noisy").unwrap();
        let reader_guard = noisy.engine();
        let (tx, rx) = mpsc::channel();
        let contenders: Vec<_> = (0..2)
            .map(|i| {
                let catalog = Arc::clone(&catalog);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let resp = catalog.handle(&request(
                        "POST",
                        "/collections/noisy/sets",
                        &format!("{{\"sets\": [[\"noisy {i}\"]]}}"),
                    ));
                    let retry_after = resp
                        .headers
                        .iter()
                        .any(|(k, v)| *k == "Retry-After" && v == "1");
                    tx.send((resp.status, retry_after))
                        .expect("collector alive");
                    resp.status
                })
            })
            .collect();
        // Exactly one contender fails fast while the reader still
        // holds the lock (the other is admitted and parked).
        let (status, retry_after) = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("one append must fail fast while the slot is taken");
        assert_eq!(status, 503);
        assert!(retry_after, "the 503 must carry Retry-After: 1");

        // The quiet tenant is untouched: search and update both 200
        // while noisy is saturated.
        let (status, _) = send(
            &catalog,
            "POST",
            "/collections/quiet/search",
            r#"{"reference": ["quiet seed"]}"#,
        );
        assert_eq!(
            status, 200,
            "a quiet tenant's search must not see noisy's 503"
        );
        let (status, _) = send(
            &catalog,
            "POST",
            "/collections/quiet/sets",
            r#"{"sets": [["quiet more"]]}"#,
        );
        assert_eq!(
            status, 200,
            "a quiet tenant's update must not see noisy's 503"
        );
        // So is the default collection.
        let (status, _) = send(&catalog, "POST", "/sets", r#"{"sets": [["default more"]]}"#);
        assert_eq!(status, 200);

        assert!(
            rx.try_recv().is_err(),
            "noisy's admitted update must still be blocked by the reader"
        );
        drop(reader_guard);
        let mut statuses: Vec<u16> = contenders.into_iter().map(|h| h.join().unwrap()).collect();
        statuses.sort_unstable();
        assert_eq!(
            statuses,
            [200, 503],
            "the admitted append lands once unblocked"
        );
    }

    #[test]
    fn deadline_cap_takes_the_tighter_of_quota_and_server() {
        let mut config = ephemeral_config();
        config.search_timeout = Some(Duration::from_secs(5));
        let catalog = catalog_with(config);
        // A zero-millisecond cap expires every search instantly: the
        // scoped route answers the server's 504, proving the cap wins
        // over the 5-second server budget.
        send(
            &catalog,
            "PUT",
            "/collections/strict",
            r#"{"quotas": {"deadline_cap_ms": 0}}"#,
        );
        send(
            &catalog,
            "POST",
            "/collections/strict/sets",
            r#"{"sets": [["needle in here"]]}"#,
        );
        let (status, body) = send(
            &catalog,
            "POST",
            "/collections/strict/search",
            r#"{"reference": ["needle in here"]}"#,
        );
        assert_eq!(status, 504, "{body}");
    }

    #[test]
    fn durable_catalog_recovers_collections_and_data_after_drop() {
        let dir = std::env::temp_dir().join(format!(
            "silkmoth-catalog-svc-{}-recover",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = CatalogConfig {
            data_dir: Some(dir.clone()),
            store_cfg: StoreConfig {
                sync: false, // test speed; recovery path is identical
                policy: CompactionPolicy::DISABLED,
            },
            ..ephemeral_config()
        };
        let open = |cfg: &CatalogConfig| {
            let default = Arc::new(SearchService::durable(
                match Store::open(
                    &dir,
                    &ShardSpec {
                        cfg: engine_cfg(),
                        shards: 2,
                    },
                    cfg.store_cfg,
                ) {
                    Ok((store, _)) => store,
                    Err(StorageError::NotInitialized { .. }) => Store::create(
                        &dir,
                        ShardedEngine::build(&corpus(), engine_cfg(), 2).unwrap(),
                        cfg.store_cfg,
                    )
                    .unwrap(),
                    Err(e) => panic!("{e}"),
                },
            ));
            CatalogService::open(default, cfg.clone()).unwrap()
        };

        {
            let catalog = open(&config);
            send(&catalog, "PUT", "/collections/t1", "{\"shards\": 3}");
            send(&catalog, "PUT", "/collections/t2", "");
            send(
                &catalog,
                "POST",
                "/collections/t1/sets",
                r#"{"sets": [["t1 alpha"], ["t1 beta"]]}"#,
            );
            send(
                &catalog,
                "POST",
                "/collections/t2/sets",
                r#"{"sets": [["t2 gamma"]]}"#,
            );
            send(
                &catalog,
                "POST",
                "/sets",
                r#"{"sets": [["default delta"]]}"#,
            );
            // Simulated kill -9: drop without any clean shutdown.
        }
        {
            let catalog = open(&config);
            assert_eq!(catalog.collection_names(), ["default", "t1", "t2"]);
            assert_eq!(catalog.collection("t1").unwrap().engine().len(), 2);
            assert_eq!(
                catalog.collection("t1").unwrap().engine().shard_count(),
                3,
                "the per-collection shard count survives restart"
            );
            assert_eq!(catalog.collection("t2").unwrap().engine().len(), 1);
            assert_eq!(catalog.default_service().engine().len(), 13);
            // Dropping t2 persists too.
            let (status, _) = send(&catalog, "DELETE", "/collections/t2", "");
            assert_eq!(status, 200);
            assert!(!collection_dir(&dir, "t2").exists());
        }
        {
            let catalog = open(&config);
            assert_eq!(catalog.collection_names(), ["default", "t1"]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scoped_routes_preserve_query_strings() {
        let catalog = catalog_with(ephemeral_config());
        send(&catalog, "PUT", "/collections/q", "");
        // /debug/traces?min_ms=abc must reach the inner service's
        // query-string validation, proving the query survives the
        // rewrite.
        let (status, body) = send(
            &catalog,
            "GET",
            "/collections/q/debug/traces?min_ms=abc",
            "",
        );
        assert_eq!(status, 400, "{body}");
        assert!(
            body.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("min_ms"),
            "{body}"
        );
    }
}
