//! The service's metric bundle: every family the stack exposes on
//! `GET /metrics`, registered eagerly so the exposition page has a
//! deterministic family order from the first scrape (the golden-format
//! test pins it).
//!
//! Four layers feed one [`Registry`]:
//!
//! * **HTTP** — per-route request counters (`route`/`status` labels),
//!   per-route latency histograms, and an in-flight gauge, observed by
//!   the service's request wrapper;
//! * **query phases** — stage / verify / explain durations from
//!   [`PhaseTiming`], the per-shard worst merged by
//!   [`ShardedQueryOutput::merged_timing`](crate::shard::ShardedQueryOutput::merged_timing);
//! * **storage** — WAL append/fsync latency and snapshot / compaction
//!   counters, delivered through a [`TelemetryHook`] so the storage
//!   crate itself stays dependency-free;
//! * **replication** — the follower lag/connect/bootstrap families from
//!   [`FollowerMetrics`], refreshed at scrape time, plus a follower
//!   count gauge on the primary.
//!
//! Route and status label sets are bounded: paths are canonicalised
//! through [`canonical_route`] (unknown paths collapse to `"other"`),
//! and statuses are the handful the service actually emits.

use silkmoth_core::{PassStats, PhaseTiming};
use silkmoth_replica::{FollowerMetrics, FollowerStatus};
use silkmoth_storage::{StoreEvent, TelemetryHook};
use silkmoth_telemetry::{Counter, Gauge, Histogram, MetricKind, Registry, LATENCY_BUCKETS};
use std::sync::Arc;
use std::time::Duration;

/// Buckets for the commit-batch size histogram: a count, not a
/// duration, so powers of two up to well past the practical number of
/// concurrent writers.
const BATCH_SIZE_BUCKETS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Buckets for per-query signature cost (the paper's token-level
/// signature work, a unitless count): decades, because the cost spans
/// a handful of tokens on toy sets to ~10⁸ on adversarial corpora.
const SIGNATURE_COST_BUCKETS: [f64; 9] = [1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];

const HTTP_REQUESTS: &str = "silkmoth_http_requests_total";
const HTTP_REQUESTS_HELP: &str = "HTTP requests served, by route and status";
const HTTP_DURATION: &str = "silkmoth_http_request_duration_seconds";
const HTTP_DURATION_HELP: &str = "Wall-clock request latency, by route";

/// Collapses a request path to a bounded route label. Every route the
/// service dispatches maps to itself; anything else — typos, probes,
/// scanners — collapses to `"other"` so label cardinality cannot grow
/// with traffic. Catalog management paths (`/collections`,
/// `/collections/<name>`) collapse to one `"/collections"` label — the
/// name must not leak into the route label because collection identity
/// rides the dedicated `collection` label. Collection-*scoped* routes
/// never reach this function with their prefix: the catalog rewrites
/// `/collections/<name>/search` to `/search` before dispatching to
/// that collection's service.
pub fn canonical_route(path: &str) -> &'static str {
    if path == "/collections" || path.starts_with("/collections/") {
        return "/collections";
    }
    match path {
        "/healthz" => "/healthz",
        "/stats" => "/stats",
        "/metrics" => "/metrics",
        "/debug/traces" => "/debug/traces",
        "/search" => "/search",
        "/search/batch" => "/search/batch",
        "/discover" => "/discover",
        "/sets" => "/sets",
        "/compact" => "/compact",
        "/snapshot" => "/snapshot",
        "/promote" => "/promote",
        _ => "other",
    }
}

/// One process's metric families and the handles to record into them.
/// Construct once per [`SearchService`](crate::service::SearchService);
/// cloning shares the registry and every cell.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    registry: Arc<Registry>,
    /// `Some(name)` when this bundle records for one named collection:
    /// the route/query/WAL families carry a `collection` label and this
    /// is its value. `None` keeps the single-tenant label sets
    /// byte-identical to what they were before the catalog existed.
    collection: Option<String>,
    uptime: Gauge,
    inflight: Gauge,
    phase_stage: Histogram,
    phase_verify: Histogram,
    phase_explain: Histogram,
    /// The paper's filter funnel, one survivor counter per stage:
    /// candidates → after_check → after_nn → verified → results.
    funnel: [Counter; 5],
    sim_evals: Counter,
    signature_cost: Histogram,
    wal_append: Histogram,
    wal_fsync: Histogram,
    batch_records: Histogram,
    batch_duration: Histogram,
    snapshots: Counter,
    auto_compactions: Counter,
    auto_snapshots: Counter,
    follower: FollowerMetrics,
    followers: Gauge,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Registers every family the stack exposes, in the order the
    /// `/metrics` page renders them. The HTTP families are declared
    /// (header-only) here because their series only appear as routes
    /// are hit; everything else registers its series immediately.
    pub fn new() -> Self {
        Self::build(Arc::new(Registry::new()), None)
    }

    /// Registers the same families on a **shared** registry with a
    /// `collection` label on every route/query/WAL family — one bundle
    /// per catalog collection, all rendering onto one `/metrics` page.
    /// Process-wide families (build info, uptime, in-flight,
    /// replication) are get-or-created unlabelled, so every collection
    /// shares those cells.
    pub fn for_collection(registry: &Arc<Registry>, collection: &str) -> Self {
        Self::build(Arc::clone(registry), Some(collection))
    }

    fn build(registry: Arc<Registry>, collection: Option<&str>) -> Self {
        registry.declare(HTTP_REQUESTS, HTTP_REQUESTS_HELP, MetricKind::Counter, None);
        registry.declare(
            HTTP_DURATION,
            HTTP_DURATION_HELP,
            MetricKind::Histogram,
            Some(&LATENCY_BUCKETS),
        );
        // The per-tenant label, appended after any per-family label so
        // the single-tenant series names are a strict prefix of the
        // multi-tenant ones.
        fn with_collection<'a>(
            base: &[(&'a str, &'a str)],
            collection: Option<&'a str>,
        ) -> Vec<(&'a str, &'a str)> {
            let mut labels = base.to_vec();
            if let Some(name) = collection {
                labels.push(("collection", name));
            }
            labels
        }
        // Constant 1 with the version as a label — the Prometheus
        // build-info convention, so dashboards can join any series
        // against the running version.
        registry
            .gauge(
                "silkmoth_build_info",
                "Build metadata; constant 1, the version rides the label",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1);
        let uptime = registry.gauge(
            "silkmoth_uptime_seconds",
            "Seconds since the service started (what /healthz reports)",
            &[],
        );
        let inflight = registry.gauge(
            "silkmoth_http_inflight_requests",
            "Requests currently being handled",
            &[],
        );
        let phase = |name: &'static str| {
            registry.histogram(
                "silkmoth_query_phase_duration_seconds",
                "Query time per engine phase (worst shard per phase)",
                &with_collection(&[("phase", name)], collection),
                &LATENCY_BUCKETS,
            )
        };
        let phase_stage = phase("stage");
        let phase_verify = phase("verify");
        let phase_explain = phase("explain");
        let survivors = |stage: &'static str| {
            registry.counter(
                "silkmoth_query_filter_survivors_total",
                "Sets surviving each SilkMoth filter stage, summed over queries",
                &with_collection(&[("stage", stage)], collection),
            )
        };
        let funnel = [
            survivors("candidates"),
            survivors("after_check"),
            survivors("after_nn"),
            survivors("verified"),
            survivors("results"),
        ];
        let sim_evals = registry.counter(
            "silkmoth_query_sim_evals_total",
            "Element-pair similarity evaluations across all queries",
            &with_collection(&[], collection),
        );
        let signature_cost = registry.histogram(
            "silkmoth_query_signature_cost",
            "Per-query signature cost (token-level signature work, unitless)",
            &with_collection(&[], collection),
            &SIGNATURE_COST_BUCKETS,
        );
        let wal_append = registry.histogram(
            "silkmoth_wal_append_duration_seconds",
            "Time writing one record into the WAL file (before fsync)",
            &with_collection(&[], collection),
            &LATENCY_BUCKETS,
        );
        let wal_fsync = registry.histogram(
            "silkmoth_wal_fsync_duration_seconds",
            "Time in fsync per commit batch (0 when sync is off)",
            &with_collection(&[], collection),
            &LATENCY_BUCKETS,
        );
        let batch_records = registry.histogram(
            "silkmoth_wal_commit_batch_records",
            "Updates amortized into one WAL write + fsync by group commit",
            &with_collection(&[], collection),
            &BATCH_SIZE_BUCKETS,
        );
        let batch_duration = registry.histogram(
            "silkmoth_wal_commit_batch_duration_seconds",
            "Wall-clock time of one commit batch (write + fsync)",
            &with_collection(&[], collection),
            &LATENCY_BUCKETS,
        );
        let snapshots = registry.counter(
            "silkmoth_storage_snapshots_total",
            "Snapshots written (manual and automatic)",
            &with_collection(&[], collection),
        );
        let auto_compactions = registry.counter(
            "silkmoth_storage_auto_compactions_total",
            "Auto-compactions triggered by the WAL growth policy",
            &with_collection(&[], collection),
        );
        let auto_snapshots = registry.counter(
            "silkmoth_storage_auto_snapshots_total",
            "Snapshots taken automatically by the WAL growth policy",
            &with_collection(&[], collection),
        );
        let follower = FollowerMetrics::register(&registry);
        let followers = registry.gauge(
            "silkmoth_replication_followers",
            "Follower connections currently streaming from this primary",
            &[],
        );
        Self {
            registry,
            collection: collection.map(str::to_owned),
            uptime,
            inflight,
            phase_stage,
            phase_verify,
            phase_explain,
            funnel,
            sim_evals,
            signature_cost,
            wal_append,
            wal_fsync,
            batch_records,
            batch_duration,
            snapshots,
            auto_compactions,
            auto_snapshots,
            follower,
            followers,
        }
    }

    /// The gauge tracking requests currently inside the handler.
    pub fn inflight(&self) -> &Gauge {
        &self.inflight
    }

    /// The registry every family lives in — shared across collections
    /// in a catalog deployment, so the catalog can hang its own gauges
    /// (collection count, cardinality bound) on the same page.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The collection this bundle records for, when it was built with
    /// [`for_collection`](Self::for_collection).
    pub fn collection(&self) -> Option<&str> {
        self.collection.as_deref()
    }

    /// Records one finished request into the per-route counter and
    /// latency histogram. `route` must come from [`canonical_route`] so
    /// the label set stays bounded.
    pub fn observe_request(&self, route: &'static str, status: u16, elapsed: Duration) {
        let status = status.to_string();
        let mut counter_labels = vec![("route", route), ("status", status.as_str())];
        let mut histogram_labels = vec![("route", route)];
        if let Some(name) = self.collection.as_deref() {
            counter_labels.push(("collection", name));
            histogram_labels.push(("collection", name));
        }
        self.registry
            .counter(HTTP_REQUESTS, HTTP_REQUESTS_HELP, &counter_labels)
            .inc();
        self.registry
            .histogram(
                HTTP_DURATION,
                HTTP_DURATION_HELP,
                &histogram_labels,
                &LATENCY_BUCKETS,
            )
            .observe(elapsed);
    }

    /// Records one query's per-phase timing (already merged across
    /// shards — element-wise max, the worst shard per phase).
    pub fn observe_phases(&self, timing: &PhaseTiming) {
        self.phase_stage.observe(timing.stage);
        self.phase_verify.observe(timing.verify);
        self.phase_explain.observe(timing.explain);
    }

    /// Records one query's filter funnel from its merged [`PassStats`]:
    /// how many sets survived each stage of the signature → check → NN
    /// → verification pipeline, plus the similarity-evaluation count
    /// and the signature cost distribution.
    pub fn observe_funnel(&self, stats: &PassStats) {
        let stages = [
            stats.candidates as u64,
            stats.after_check as u64,
            stats.after_nn as u64,
            stats.verified as u64,
            stats.results as u64,
        ];
        for (counter, survivors) in self.funnel.iter().zip(stages) {
            counter.add(survivors);
        }
        self.sim_evals.add(stats.sim_evals);
        self.signature_cost
            .observe_secs(stats.signature_cost as f64);
    }

    /// Refreshes the uptime gauge (called at scrape time so the page
    /// matches what `/healthz` reports).
    pub fn set_uptime_secs(&self, secs: u64) {
        self.uptime.set(secs as i64);
    }

    /// A [`TelemetryHook`] to install on the durable store: each commit
    /// batch lands its write/fsync timings in the latency histograms,
    /// its record count and total duration in the group-commit
    /// families; snapshot and compaction events hit their counters. The
    /// hook captures clones of the cells, so the storage crate never
    /// sees the registry.
    pub fn storage_hook(&self) -> TelemetryHook {
        let append = self.wal_append.clone();
        let fsync = self.wal_fsync.clone();
        let batch_records = self.batch_records.clone();
        let batch_duration = self.batch_duration.clone();
        let snapshots = self.snapshots.clone();
        let compactions = self.auto_compactions.clone();
        let auto_snapshots = self.auto_snapshots.clone();
        TelemetryHook::new(move |event| match event {
            StoreEvent::CommitBatch {
                records,
                write,
                sync,
            } => {
                append.observe(write);
                fsync.observe(sync);
                batch_records.observe_secs(records as f64);
                batch_duration.observe(write + sync);
            }
            StoreEvent::Snapshot => snapshots.inc(),
            StoreEvent::AutoCompaction => compactions.inc(),
            StoreEvent::AutoSnapshot => auto_snapshots.inc(),
        })
    }

    /// Refreshes the replication families from a follower's status
    /// snapshot (called at scrape time on follower-role services).
    pub fn record_follower(&self, status: &FollowerStatus) {
        self.follower.record(status);
    }

    /// Sets the primary-side follower connection count.
    pub fn set_followers(&self, n: i64) {
        self.followers.set(n);
    }

    /// Renders the `/metrics` page.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_paths_collapse_to_other() {
        assert_eq!(canonical_route("/search"), "/search");
        assert_eq!(canonical_route("/search/"), "other");
        assert_eq!(canonical_route("/../etc/passwd"), "other");
    }

    #[test]
    fn collection_paths_share_one_route_label() {
        assert_eq!(canonical_route("/collections"), "/collections");
        assert_eq!(canonical_route("/collections/tenant-a"), "/collections");
        assert_eq!(
            canonical_route("/collections/tenant-a/search"),
            "/collections"
        );
        // No collection name may become its own route label.
        assert_eq!(canonical_route("/collectionsx"), "other");
    }

    #[test]
    fn for_collection_labels_tenant_families_and_shares_globals() {
        let base = ServiceMetrics::new();
        let tenant = ServiceMetrics::for_collection(base.registry(), "tenant-a");
        tenant.observe_request(canonical_route("/search"), 200, Duration::from_millis(1));
        tenant.observe_funnel(&PassStats {
            candidates: 7,
            ..Default::default()
        });
        let page = base.render();
        assert!(
            page.contains(
                "silkmoth_http_requests_total{route=\"/search\",status=\"200\",collection=\"tenant-a\"} 1"
            ),
            "{page}"
        );
        assert!(
            page.contains(
                "silkmoth_query_filter_survivors_total{stage=\"candidates\",collection=\"tenant-a\"} 7"
            ),
            "{page}"
        );
        // Globals stay unlabelled and shared: exactly one in-flight
        // gauge series even with two bundles registered.
        assert_eq!(
            page.matches("\nsilkmoth_http_inflight_requests ").count(),
            1,
            "{page}"
        );
        assert_eq!(tenant.collection(), Some("tenant-a"));
        assert_eq!(base.collection(), None);
    }

    #[test]
    fn every_family_renders_before_any_traffic() {
        let m = ServiceMetrics::new();
        let page = m.render();
        for family in [
            "silkmoth_http_requests_total",
            "silkmoth_http_request_duration_seconds",
            "silkmoth_build_info",
            "silkmoth_uptime_seconds",
            "silkmoth_http_inflight_requests",
            "silkmoth_query_phase_duration_seconds",
            "silkmoth_query_filter_survivors_total",
            "silkmoth_query_sim_evals_total",
            "silkmoth_query_signature_cost",
            "silkmoth_wal_append_duration_seconds",
            "silkmoth_wal_fsync_duration_seconds",
            "silkmoth_wal_commit_batch_records",
            "silkmoth_wal_commit_batch_duration_seconds",
            "silkmoth_storage_snapshots_total",
            "silkmoth_storage_auto_compactions_total",
            "silkmoth_storage_auto_snapshots_total",
            "silkmoth_replication_lag_records",
            "silkmoth_replication_connects_total",
            "silkmoth_replication_followers",
        ] {
            assert!(
                page.contains(&format!("# TYPE {family} ")),
                "{family} missing:\n{page}"
            );
        }
    }

    #[test]
    fn storage_hook_routes_events_to_the_right_cells() {
        let m = ServiceMetrics::new();
        let hook = m.storage_hook();
        hook.fire(StoreEvent::CommitBatch {
            records: 3,
            write: Duration::from_micros(20),
            sync: Duration::from_millis(2),
        });
        hook.fire(StoreEvent::Snapshot);
        hook.fire(StoreEvent::AutoCompaction);
        hook.fire(StoreEvent::AutoSnapshot);
        let page = m.render();
        assert!(
            page.contains("silkmoth_wal_append_duration_seconds_count 1"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_wal_fsync_duration_seconds_count 1"),
            "{page}"
        );
        // The batch size histogram buckets by record count: 3 records
        // land in le="4" but not le="2".
        assert!(
            page.contains("silkmoth_wal_commit_batch_records_count 1"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_wal_commit_batch_records_bucket{le=\"2\"} 0"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_wal_commit_batch_records_bucket{le=\"4\"} 1"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_wal_commit_batch_duration_seconds_count 1"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_storage_snapshots_total 1"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_storage_auto_compactions_total 1"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_storage_auto_snapshots_total 1"),
            "{page}"
        );
    }

    #[test]
    fn funnel_observation_sums_survivors_per_stage() {
        let m = ServiceMetrics::new();
        let stats = PassStats {
            candidates: 100,
            after_check: 40,
            after_nn: 12,
            verified: 12,
            results: 5,
            sim_evals: 310,
            signature_cost: 720,
            ..Default::default()
        };
        m.observe_funnel(&stats);
        m.observe_funnel(&stats);
        let page = m.render();
        for (stage, want) in [
            ("candidates", 200),
            ("after_check", 80),
            ("after_nn", 24),
            ("verified", 24),
            ("results", 10),
        ] {
            assert!(
                page.contains(&format!(
                    "silkmoth_query_filter_survivors_total{{stage=\"{stage}\"}} {want}"
                )),
                "{stage}:\n{page}"
            );
        }
        assert!(
            page.contains("silkmoth_query_sim_evals_total 620"),
            "{page}"
        );
        // 720 lands in the le="1000" decade but not le="100".
        assert!(
            page.contains("silkmoth_query_signature_cost_bucket{le=\"100\"} 0"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_query_signature_cost_bucket{le=\"1000\"} 2"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_query_signature_cost_count 2"),
            "{page}"
        );
    }

    #[test]
    fn build_info_and_uptime_render() {
        let m = ServiceMetrics::new();
        m.set_uptime_secs(42);
        let page = m.render();
        assert!(
            page.contains(&format!(
                "silkmoth_build_info{{version=\"{}\"}} 1",
                env!("CARGO_PKG_VERSION")
            )),
            "{page}"
        );
        assert!(page.contains("silkmoth_uptime_seconds 42"), "{page}");
    }

    #[test]
    fn request_observation_creates_bounded_series() {
        let m = ServiceMetrics::new();
        m.observe_request(canonical_route("/search"), 200, Duration::from_millis(1));
        m.observe_request(canonical_route("/nope"), 404, Duration::from_micros(30));
        let page = m.render();
        assert!(
            page.contains("silkmoth_http_requests_total{route=\"/search\",status=\"200\"} 1"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_http_requests_total{route=\"other\",status=\"404\"} 1"),
            "{page}"
        );
    }
}
