//! Hash-partitioned scatter-gather over per-shard [`Engine`]s.
//!
//! ## Why sharded output is identical to a single engine
//!
//! 1. Each shard's engine is **exact** (the SilkMoth guarantee): it
//!    returns precisely the sets of *its* partition whose relatedness to
//!    the reference clears the threshold, with exact scores. Signatures
//!    and filters only affect pruning, never results.
//! 2. A relatedness score depends only on the two sets' element strings:
//!    φ is a function of the per-pair token-equality classes (and, for
//!    edit similarity, the raw characters), both preserved by every
//!    shard's own dictionary encoding — unknown reference tokens get
//!    fresh ids that are consistent within the reference. The maximum
//!    matching is deterministic on an identical weight matrix, so scores
//!    are **bit-identical**, not merely approximately equal.
//! 3. The partition is disjoint and covering, so the union of shard
//!    results equals the unsharded result set; the gather step restores
//!    the single-engine ordering (ascending global id, or top-k rank via
//!    [`rank`](silkmoth_core::rank)). Per-shard `top_k` truncation is
//!    lossless for the global top-k: an item outside its own shard's
//!    top-k is outranked by k items globally too.

use std::sync::Arc;
use std::time::Instant;

use silkmoth_collection::{Collection, SetIdx, SetRecord, UpdateError};
use silkmoth_core::rank::merge_partitioned;
use silkmoth_core::{
    ConfigError, Engine, EngineConfig, PairExplanation, PassStats, PhaseTiming, QueryOutput,
    QuerySpec, RelatedPair, Update, UpdateOutcome,
};

/// A collection hash-partitioned across N [`Engine`] shards, answering
/// searches by scatter-gather with output identical to one unsharded
/// engine (see the module docs for the argument).
///
/// The engine shards are `Send + Sync`, so a `ShardedEngine` drops
/// straight into server state behind an [`Arc`].
///
/// ## Incremental updates
///
/// [`apply`](Self::apply) routes each mutation to the owning shard:
/// appended sets take the next free **global** ids (monotonic, never
/// reused) and land on the shard FNV-1a picks for that id — the same
/// partition function [`build`](Self::build) uses, so an
/// incrementally-grown sharded engine partitions exactly like a
/// freshly-built one over the same id space. Removals tombstone in the
/// owning shard. Global ids are stable across **every** update,
/// including [`Update::Compact`] (compaction rewrites each shard's
/// internal storage; the global id map just drops its dead entries).
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Engine>,
    /// Per shard: local set slot → global set id (ascending).
    global_ids: Vec<Vec<SetIdx>>,
    cfg: EngineConfig,
    /// Live (non-tombstoned) sets across all shards.
    live: usize,
    /// Next global id to assign; ids are never reused.
    next_gid: SetIdx,
}

/// Scatter-gather search output: results carry **global** set ids, and
/// per-shard pass stats ride along for observability.
#[derive(Debug, Clone)]
pub struct ShardedSearchOutput {
    /// Related sets `(global id, score)` in single-engine order.
    pub results: Vec<(SetIdx, f64)>,
    /// One [`PassStats`] per shard, indexed by shard id.
    pub shard_stats: Vec<PassStats>,
}

/// Scatter-gather [`QuerySpec`] execution output: the engine-level
/// [`QueryOutput`] with global set ids, plus per-shard pass stats.
#[derive(Debug, Clone)]
pub struct ShardedQueryOutput {
    /// Related sets `(global id, score)` in single-engine order
    /// (ascending id, or top-k rank when the spec asks for it).
    pub hits: Vec<(SetIdx, f64)>,
    /// One [`PassStats`] per shard, indexed by shard id.
    pub shard_stats: Vec<PassStats>,
    /// True when any shard's pass hit the spec's deadline: `hits` is a
    /// well-formed subset of the full answer.
    pub timed_out: bool,
    /// Per-hit diagnostics (global ids) when the spec asked for
    /// explanations: a positionally-aligned **prefix** of `hits` —
    /// the full list normally, shorter only when `timed_out` cut the
    /// explain phase short on some shard.
    pub explanations: Vec<(SetIdx, PairExplanation)>,
    /// One [`PhaseTiming`] per shard, indexed by shard id.
    pub shard_timings: Vec<PhaseTiming>,
}

impl ShardedQueryOutput {
    /// All shards' stats merged.
    pub fn merged_stats(&self) -> PassStats {
        merge_stats(&self.shard_stats)
    }

    /// All shards' phase timings merged — the element-wise **max**, i.e.
    /// the worst shard per phase, because shards run the phases
    /// concurrently and their wall times overlap (summing would
    /// overstate elapsed time by up to the shard count).
    pub fn merged_timing(&self) -> PhaseTiming {
        let mut total = PhaseTiming::default();
        for t in &self.shard_timings {
            total.max_merge(t);
        }
        total
    }
}

/// Scatter-gather discovery output with global set ids on the
/// collection side.
#[derive(Debug, Clone)]
pub struct ShardedDiscoveryOutput {
    /// All related pairs, sorted by `(r, s)` with `s` global.
    pub pairs: Vec<RelatedPair>,
    /// One [`PassStats`] per shard, indexed by shard id.
    pub shard_stats: Vec<PassStats>,
}

/// What [`ShardedEngine::capture`] hands back for a snapshot: the live
/// `(gid, element texts)` pairs (ascending), the tombstoned gids
/// (ascending), and the next gid to assign.
pub type CapturedState = (Vec<(SetIdx, Vec<String>)>, Vec<SetIdx>, SetIdx);

/// Merges per-shard stats into one (summing counters).
pub fn merge_stats(shard_stats: &[PassStats]) -> PassStats {
    let mut total = PassStats::default();
    for s in shard_stats {
        total.merge(s);
    }
    total
}

impl ShardedSearchOutput {
    /// All shards' stats merged.
    pub fn merged_stats(&self) -> PassStats {
        merge_stats(&self.shard_stats)
    }
}

impl ShardedDiscoveryOutput {
    /// All shards' stats merged.
    pub fn merged_stats(&self) -> PassStats {
        merge_stats(&self.shard_stats)
    }
}

/// FNV-1a over the set id's little-endian bytes — the partition function.
/// Deterministic and stable across runs, so a collection always shards
/// the same way.
fn shard_of(gid: SetIdx, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in gid.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Builds each shard's engine on scoped threads, in shard order —
/// collection/dictionary/index construction dominates startup and
/// recovery time and the shards are independent, so build and restore
/// parallelize the same way searches scatter.
fn build_shards_parallel<P, F>(parts: Vec<P>, build: F) -> Result<Vec<Engine>, ConfigError>
where
    P: Send,
    F: Fn(P) -> Result<Engine, ConfigError> + Sync,
{
    if parts.len() <= 1 {
        return parts.into_iter().map(build).collect();
    }
    let mut outputs = Vec::with_capacity(parts.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| scope.spawn(|| build(part)))
            .collect();
        for h in handles {
            outputs.push(h.join().expect("shard build worker panicked"));
        }
    });
    outputs.into_iter().collect()
}

impl ShardedEngine {
    /// Partitions `raw` sets across `shards` engines (FNV-1a on the
    /// global set id) and builds each shard's collection, dictionary,
    /// index, and engine. `shards` is clamped to at least 1; a shard may
    /// end up empty, which is harmless.
    ///
    /// The tokenization is derived from `cfg` (as the CLI does), so the
    /// per-shard collections always match the configuration.
    pub fn build<S: AsRef<str>>(
        raw: &[Vec<S>],
        cfg: EngineConfig,
        shards: usize,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = shards.max(1);
        let mut parts: Vec<Vec<Vec<&str>>> = vec![Vec::new(); n];
        let mut global_ids: Vec<Vec<SetIdx>> = vec![Vec::new(); n];
        for (gid, set) in raw.iter().enumerate() {
            let shard = shard_of(gid as SetIdx, n);
            parts[shard].push(set.iter().map(AsRef::as_ref).collect());
            global_ids[shard].push(gid as SetIdx);
        }
        let tokenization = cfg.tokenization();
        let shards = build_shards_parallel(parts, |part| {
            Engine::new(Collection::build(&part, tokenization), cfg)
        })?;
        Ok(Self {
            shards,
            global_ids,
            cfg,
            live: raw.len(),
            next_gid: raw.len() as SetIdx,
        })
    }

    /// Rebuilds a sharded engine from recovered durable state: the live
    /// sets with their stable **global** ids, the gids of tombstoned
    /// (not yet compacted) slots, and the next gid to assign — the
    /// [`EngineState`](silkmoth_storage::EngineState) a
    /// `silkmoth-storage` snapshot holds.
    ///
    /// Both id lists must be ascending; their merge recreates each
    /// shard's local slot order (which is always ascending-gid, for a
    /// built *or* incrementally-grown engine). Tombstoned slots, whose
    /// contents are gone for good, become empty placeholder sets —
    /// no tokens, no postings, re-tombstoned before the shard engine is
    /// built — so idempotent re-removal and per-shard compaction replay
    /// exactly as they did on the live engine. Search output is
    /// unaffected by the missing dead-set tokens: scores depend only on
    /// token-equality classes (the PR 3 equivalence argument).
    pub fn restore(
        live: Vec<(SetIdx, Vec<String>)>,
        dead: &[SetIdx],
        next_gid: SetIdx,
        cfg: EngineConfig,
        shards: usize,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = shards.max(1);
        let live_count = live.len();
        let mut parts: Vec<Vec<Vec<String>>> = vec![Vec::new(); n];
        let mut global_ids: Vec<Vec<SetIdx>> = vec![Vec::new(); n];
        let mut dead_locals: Vec<Vec<SetIdx>> = vec![Vec::new(); n];
        // Merge the two ascending id streams back into slot order.
        let mut live = live.into_iter().peekable();
        let mut dead = dead.iter().copied().peekable();
        loop {
            let take_dead = match (live.peek(), dead.peek()) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(&(lg, _)), Some(&dg)) => dg < lg,
            };
            let (gid, set) = if take_dead {
                (dead.next().expect("peeked"), Vec::new())
            } else {
                live.next().expect("peeked")
            };
            let shard = shard_of(gid, n);
            if take_dead {
                dead_locals[shard].push(global_ids[shard].len() as SetIdx);
            }
            parts[shard].push(set);
            global_ids[shard].push(gid);
        }
        let tokenization = cfg.tokenization();
        let work: Vec<(Vec<Vec<String>>, Vec<SetIdx>)> =
            parts.into_iter().zip(dead_locals).collect();
        let shards = build_shards_parallel(work, |(part, dead)| {
            let mut collection = Collection::build(&part, tokenization);
            collection
                .remove_sets(&dead)
                .expect("dead locals index the slots just built");
            Engine::new(collection, cfg)
        })?;
        Ok(Self {
            shards,
            global_ids,
            cfg,
            live: live_count,
            next_gid,
        })
    }

    /// The inverse of [`restore`](Self::restore): the live sets' raw
    /// element texts keyed by global id (ascending), the tombstoned
    /// gids (ascending), and the next gid.
    pub fn capture(&self) -> CapturedState {
        let mut live = Vec::with_capacity(self.live);
        let mut dead = Vec::new();
        for (shard, engine) in self.shards.iter().enumerate() {
            let collection = engine.collection();
            for local in 0..collection.len() {
                let gid = self.global_ids[shard][local];
                if collection.is_live(local as SetIdx) {
                    let texts = collection
                        .set(local as SetIdx)
                        .elements
                        .iter()
                        .map(|e| e.text.to_string())
                        .collect();
                    live.push((gid, texts));
                } else {
                    dead.push(gid);
                }
            }
        }
        live.sort_unstable_by_key(|&(gid, _)| gid);
        dead.sort_unstable();
        (live, dead, self.next_gid)
    }

    /// True when `gid` currently addresses a slot (live or tombstoned);
    /// compacted-away gids are gone for good.
    pub fn has_gid(&self, gid: SetIdx) -> bool {
        self.global_ids[shard_of(gid, self.shards.len())]
            .binary_search(&gid)
            .is_ok()
    }

    /// The global id the next appended set will take (ids are assigned
    /// sequentially and never reused) — with [`has_gid`](Self::has_gid),
    /// what batch validation needs to vet a group of updates against
    /// the engine state they will apply to.
    pub fn next_gid(&self) -> SetIdx {
        self.next_gid
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total set *slots* (live + tombstoned) across all shards — with
    /// [`len`](Self::len), the dead-slot ratio an auto-compaction
    /// policy watches.
    pub fn slot_count(&self) -> usize {
        self.shards.iter().map(|e| e.collection().len()).sum()
    }

    /// Live sets across all shards (tombstoned sets excluded).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the collection has no live sets.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The shared engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Live sets per shard, indexed by shard id.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|e| e.collection().live_len())
            .collect()
    }

    /// Bytes of element text across all **live** sets — what a
    /// per-collection byte quota meters. Computed by walking the live
    /// sets (no cached total), so callers should only pay for it when a
    /// quota is actually configured.
    pub fn text_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|e| {
                let coll = e.collection();
                coll.live_ids()
                    .map(|id| {
                        coll.set(id)
                            .elements
                            .iter()
                            .map(|el| el.text.len() as u64)
                            .sum::<u64>()
                    })
                    .sum::<u64>()
            })
            .sum()
    }

    /// Applies one mutation, routed to the owning shard(s); see the
    /// type-level docs for the id-stability guarantees. The returned
    /// [`UpdateOutcome`] carries **global** ids; `remap` is always
    /// `None` because compaction never renumbers global ids.
    pub fn apply(&mut self, update: Update) -> Result<UpdateOutcome, UpdateError> {
        let n = self.shards.len();
        match update {
            Update::Append(sets) => {
                let mut parts: Vec<Vec<Vec<String>>> = vec![Vec::new(); n];
                let mut appended = Vec::with_capacity(sets.len());
                for set in sets {
                    let gid = self.next_gid;
                    self.next_gid += 1;
                    let shard = shard_of(gid, n);
                    parts[shard].push(set);
                    self.global_ids[shard].push(gid);
                    appended.push(gid);
                }
                for (shard, part) in parts.into_iter().enumerate() {
                    if !part.is_empty() {
                        self.shards[shard]
                            .apply(Update::Append(part))
                            .expect("append cannot fail");
                    }
                }
                self.live += appended.len();
                Ok(UpdateOutcome {
                    appended,
                    removed: 0,
                    remap: None,
                })
            }
            Update::Remove(gids) => {
                // Resolve every global id to (shard, local slot) before
                // mutating anything, so an unknown id leaves the engine
                // untouched. A compacted-away gid no longer appears in
                // its shard's id map and is equally NoSuchSet.
                let mut per_shard: Vec<Vec<SetIdx>> = vec![Vec::new(); n];
                for &gid in &gids {
                    let shard = shard_of(gid, n);
                    let local = self.global_ids[shard]
                        .binary_search(&gid)
                        .map_err(|_| UpdateError::NoSuchSet(gid))?;
                    per_shard[shard].push(local as SetIdx);
                }
                let mut removed = 0;
                for (shard, locals) in per_shard.into_iter().enumerate() {
                    if !locals.is_empty() {
                        removed += self.shards[shard]
                            .apply(Update::Remove(locals))
                            .expect("locals were just resolved")
                            .removed;
                    }
                }
                self.live -= removed;
                Ok(UpdateOutcome {
                    appended: Vec::new(),
                    removed,
                    remap: None,
                })
            }
            Update::Compact => {
                for (shard, engine) in self.shards.iter_mut().enumerate() {
                    let out = engine.apply(Update::Compact)?;
                    let local_remap = out.remap.expect("compact returns a remap");
                    // Retained locals keep their relative order, so the
                    // global map compacts by dropping dead entries.
                    let old = std::mem::take(&mut self.global_ids[shard]);
                    self.global_ids[shard] = old
                        .into_iter()
                        .enumerate()
                        .filter(|&(local, _)| local_remap[local].is_some())
                        .map(|(_, gid)| gid)
                        .collect();
                }
                Ok(UpdateOutcome {
                    appended: Vec::new(),
                    removed: 0,
                    remap: None,
                })
            }
        }
    }

    /// The shard engines (for inspection; ids inside are shard-local).
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// RELATED SET SEARCH across all shards for a reference given as raw
    /// element strings, with the `k`/`floor` knobs. A convenience
    /// wrapper that builds the equivalent [`QuerySpec`] (where the floor
    /// is validated) and [`execute`](Self::execute)s it.
    pub fn search<S: AsRef<str> + Sync>(
        &self,
        elements: &[S],
        k: Option<usize>,
        floor: Option<f64>,
    ) -> Result<ShardedSearchOutput, ConfigError> {
        let mut spec = QuerySpec::new(elements.iter().map(|e| e.as_ref().to_owned()).collect());
        if let Some(k) = k {
            spec = spec.with_top_k(k);
        }
        if let Some(f) = floor {
            spec = spec.with_floor(f)?;
        }
        let out = self.execute(&spec);
        Ok(ShardedSearchOutput {
            results: out.hits,
            shard_stats: out.shard_stats,
        })
    }

    /// Executes one [`QuerySpec`] by scatter-gather: every shard runs
    /// [`Engine::execute`] (encoding the spec's reference against its
    /// own dictionary), and the gather merges to single-engine order
    /// with global ids — byte-identical to one unsharded engine
    /// executing the same spec, by the argument in the module docs.
    pub fn execute(&self, spec: &QuerySpec) -> ShardedQueryOutput {
        self.execute_until(spec, None)
    }

    /// [`execute`](Self::execute) with an additional absolute deadline
    /// `cap` (the server's whole-request budget). Each shard honors the
    /// earlier of `cap` and the spec's own budget; a timeout on any
    /// shard flags the merged output.
    pub fn execute_until(&self, spec: &QuerySpec, cap: Option<Instant>) -> ShardedQueryOutput {
        let per_shard = self
            .scatter(|engine| Ok(engine.execute_until(spec, cap)))
            .expect("spec execution is infallible");
        self.gather_query(spec, per_shard)
    }

    /// Executes a batch of specs with one scatter: each shard runs the
    /// whole batch in order (so a shard's worker thread is reused across
    /// queries), and each spec's outputs are gathered exactly like
    /// [`execute`](Self::execute) — batch answers are identical to the
    /// same specs executed one by one.
    pub fn execute_batch(&self, specs: &[QuerySpec]) -> Vec<ShardedQueryOutput> {
        self.execute_batch_until(specs, None)
    }

    /// [`execute_batch`](Self::execute_batch) with a shared absolute
    /// deadline bounding the whole batch.
    pub fn execute_batch_until(
        &self,
        specs: &[QuerySpec],
        cap: Option<Instant>,
    ) -> Vec<ShardedQueryOutput> {
        let per_shard = self
            .scatter(|engine| {
                Ok(specs
                    .iter()
                    .map(|spec| engine.execute_until(spec, cap))
                    .collect::<Vec<_>>())
            })
            .expect("spec execution is infallible");
        let mut columns: Vec<std::vec::IntoIter<QueryOutput>> =
            per_shard.into_iter().map(Vec::into_iter).collect();
        specs
            .iter()
            .map(|spec| {
                let row = columns
                    .iter_mut()
                    .map(|c| c.next().expect("one output per spec per shard"))
                    .collect();
                self.gather_query(spec, row)
            })
            .collect()
    }

    /// Merges one spec's per-shard [`QueryOutput`]s (shard order) into
    /// the single-engine answer with global ids.
    fn gather_query(&self, spec: &QuerySpec, per_shard: Vec<QueryOutput>) -> ShardedQueryOutput {
        let mut shard_stats = Vec::with_capacity(self.shards.len());
        let mut shard_timings = Vec::with_capacity(self.shards.len());
        let mut parts = Vec::with_capacity(self.shards.len());
        let mut timed_out = false;
        let mut pool: Vec<(SetIdx, PairExplanation)> = Vec::new();
        for (shard, out) in per_shard.into_iter().enumerate() {
            shard_stats.push(out.stats);
            shard_timings.push(out.timing);
            timed_out |= out.timed_out;
            pool.extend(
                out.explanations
                    .into_iter()
                    .map(|(sid, e)| (self.global_ids[shard][sid as usize], e)),
            );
            parts.push(self.globalize(shard, out.hits));
        }
        let hits = merge_partitioned(parts, spec.top_k());
        // Keep explanations only for the hits that survived the global
        // merge, as a positionally-aligned *prefix* of `hits`: a shard
        // whose deadline expired mid-explain contributes explanations
        // for only some of its hits, and stopping at the first
        // unexplained hit (rather than skipping it) keeps `zip(hits,
        // explanations)` sound — shorter only when `timed_out`.
        let mut explanations = Vec::new();
        if spec.want_explain() {
            for &(gid, _) in &hits {
                let Some(i) = pool.iter().position(|&(g, _)| g == gid) else {
                    break;
                };
                explanations.push(pool.swap_remove(i));
            }
        }
        ShardedQueryOutput {
            hits,
            shard_stats,
            timed_out,
            explanations,
            shard_timings,
        }
    }

    /// RELATED SET DISCOVERY across all shards for references given as
    /// raw element-string sets: one search pass per (reference, shard),
    /// gathered into globally-sorted pairs.
    pub fn discover<S: AsRef<str> + Sync>(&self, refs: &[Vec<S>]) -> ShardedDiscoveryOutput {
        let per_shard = self
            .scatter(|engine| {
                let encoded: Vec<SetRecord> = refs
                    .iter()
                    .map(|set| {
                        let strs: Vec<&str> = set.iter().map(AsRef::as_ref).collect();
                        engine.collection().encode_set(&strs)
                    })
                    .collect();
                Ok(engine.discover(&encoded))
            })
            .expect("discovery passes cannot fail");
        let mut shard_stats = Vec::with_capacity(self.shards.len());
        let mut pairs: Vec<RelatedPair> = Vec::new();
        for (shard, out) in per_shard.into_iter().enumerate() {
            shard_stats.push(out.stats);
            pairs.extend(out.pairs.into_iter().map(|p| RelatedPair {
                r: p.r,
                s: self.global_ids[shard][p.s as usize],
                score: p.score,
            }));
        }
        pairs.sort_unstable_by(|a, b| a.r.cmp(&b.r).then(a.s.cmp(&b.s)));
        ShardedDiscoveryOutput { pairs, shard_stats }
    }

    /// Runs `pass` once per shard — on scoped threads when there is more
    /// than one shard — and gathers the outputs in shard order.
    fn scatter<T, F>(&self, pass: F) -> Result<Vec<T>, ConfigError>
    where
        T: Send,
        F: Fn(&Engine) -> Result<T, ConfigError> + Sync,
    {
        if self.shards.len() == 1 {
            return Ok(vec![pass(&self.shards[0])?]);
        }
        let mut outputs = Vec::with_capacity(self.shards.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|engine| scope.spawn(|| pass(engine)))
                .collect();
            for h in handles {
                outputs.push(h.join().expect("shard worker panicked"));
            }
        });
        outputs.into_iter().collect()
    }

    /// Maps one shard's local result ids to global ids.
    fn globalize(&self, shard: usize, results: Vec<(SetIdx, f64)>) -> Vec<(SetIdx, f64)> {
        results
            .into_iter()
            .map(|(sid, score)| (self.global_ids[shard][sid as usize], score))
            .collect()
    }
}

/// A `ShardedEngine` is freely shareable across server workers.
#[allow(dead_code)]
fn _assert_send_sync(e: ShardedEngine) -> Arc<dyn Send + Sync> {
    Arc::new(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_core::RelatednessMetric;
    use silkmoth_text::SimilarityFunction;

    fn cfg(delta: f64) -> EngineConfig {
        EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Jaccard,
            delta,
            0.0,
        )
    }

    fn corpus(n: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 7, (i + j) % 5, i % 4))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn partition_is_disjoint_and_covering() {
        let raw = corpus(40);
        let sharded = ShardedEngine::build(&raw, cfg(0.6), 3).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.len(), 40);
        let mut seen: Vec<SetIdx> = sharded.global_ids.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 40);
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let raw = corpus(5);
        let sharded = ShardedEngine::build(&raw, cfg(0.6), 0).unwrap();
        assert_eq!(sharded.shard_count(), 1);
    }

    #[test]
    fn empty_shards_are_harmless() {
        // 3 sets over 7 shards: most shards are empty, searches still work.
        let raw = corpus(3);
        let sharded = ShardedEngine::build(&raw, cfg(0.5), 7).unwrap();
        let out = sharded.search(&raw[0], None, None).unwrap();
        assert!(out.results.iter().any(|&(gid, _)| gid == 0));
        assert_eq!(out.shard_stats.len(), 7);
    }

    #[test]
    fn invalid_config_rejected_at_build() {
        let raw = corpus(4);
        assert!(matches!(
            ShardedEngine::build(&raw, cfg(0.0), 2),
            Err(ConfigError::DeltaOutOfRange(_))
        ));
    }

    #[test]
    fn invalid_floor_propagates() {
        let raw = corpus(8);
        let sharded = ShardedEngine::build(&raw, cfg(0.6), 2).unwrap();
        assert!(matches!(
            sharded.search(&raw[0], None, Some(1.5)),
            Err(ConfigError::FloorOutOfRange(_))
        ));
    }

    #[test]
    fn incremental_append_partitions_like_a_fresh_build() {
        // Appending one set at a time must land every set on the same
        // shard a from-scratch build would choose (FNV-1a on the global
        // id), so incremental and fresh sharded engines agree exactly.
        let raw = corpus(30);
        let mut grown = ShardedEngine::build(&raw[..10], cfg(0.5), 3).unwrap();
        for set in &raw[10..] {
            let out = grown.apply(Update::Append(vec![set.clone()])).unwrap();
            assert_eq!(out.appended.len(), 1);
        }
        let fresh = ShardedEngine::build(&raw, cfg(0.5), 3).unwrap();
        assert_eq!(grown.len(), fresh.len());
        assert_eq!(grown.shard_sizes(), fresh.shard_sizes());
        assert_eq!(grown.global_ids, fresh.global_ids);
        for rid in [0usize, 12, 29] {
            let want = fresh.search(&raw[rid], None, None).unwrap().results;
            let got = grown.search(&raw[rid], None, None).unwrap().results;
            assert_eq!(got.len(), want.len(), "rid={rid}");
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.0, b.0, "rid={rid}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "rid={rid}");
            }
        }
    }

    #[test]
    fn remove_routes_to_owning_shard_and_validates_first() {
        let raw = corpus(20);
        let mut sharded = ShardedEngine::build(&raw, cfg(0.5), 3).unwrap();
        let out = sharded.apply(Update::Remove(vec![4, 4, 9])).unwrap();
        assert_eq!(out.removed, 2, "duplicate ids are idempotent");
        assert_eq!(sharded.len(), 18);
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 18);
        // Removed sets disappear from results.
        let hits = sharded
            .search(&raw[4], Some(30), Some(0.0))
            .unwrap()
            .results;
        assert!(hits.iter().all(|&(gid, _)| gid != 4 && gid != 9));
        // An unknown gid fails by name without touching anything.
        assert_eq!(
            sharded.apply(Update::Remove(vec![0, 99])),
            Err(UpdateError::NoSuchSet(99))
        );
        assert_eq!(sharded.len(), 18);
    }

    #[test]
    fn compact_keeps_global_ids_stable() {
        let raw = corpus(24);
        let mut sharded = ShardedEngine::build(&raw, cfg(0.5), 7).unwrap();
        sharded.apply(Update::Remove(vec![2, 3, 11, 17])).unwrap();
        let before = sharded.search(&raw[5], None, None).unwrap().results;
        let out = sharded.apply(Update::Compact).unwrap();
        assert_eq!(out.remap, None, "global ids never renumber");
        assert_eq!(sharded.len(), 20);
        let after = sharded.search(&raw[5], None, None).unwrap().results;
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // Appends after a compact continue the old numbering.
        let out = sharded.apply(Update::Append(vec![raw[0].clone()])).unwrap();
        assert_eq!(out.appended, vec![24]);
    }

    #[test]
    fn execute_matches_unsharded_engine_across_shard_counts() {
        let raw = corpus(60);
        let tokenization = cfg(0.5).tokenization();
        let single = Engine::new(Collection::build(&raw, tokenization), cfg(0.5)).unwrap();
        for shards in [1, 2, 7] {
            let sharded = ShardedEngine::build(&raw, cfg(0.5), shards).unwrap();
            for rid in [0usize, 17, 42] {
                for (k, floor) in [(None, None), (Some(5), Some(0.2)), (Some(3), Some(0.0))] {
                    let mut spec = QuerySpec::new(raw[rid].clone());
                    if let Some(k) = k {
                        spec = spec.with_top_k(k);
                    }
                    if let Some(f) = floor {
                        spec = spec.with_floor(f).unwrap();
                    }
                    let want = single.execute(&spec);
                    let got = sharded.execute(&spec);
                    assert_eq!(got.hits.len(), want.hits.len(), "shards={shards} rid={rid}");
                    for (a, b) in got.hits.iter().zip(&want.hits) {
                        assert_eq!(a.0, b.0, "shards={shards} rid={rid}");
                        assert_eq!(a.1.to_bits(), b.1.to_bits(), "shards={shards} rid={rid}");
                    }
                    assert!(!got.timed_out);
                }
            }
        }
    }

    #[test]
    fn execute_batch_equals_one_by_one() {
        let raw = corpus(40);
        let sharded = ShardedEngine::build(&raw, cfg(0.5), 3).unwrap();
        let specs: Vec<QuerySpec> = raw
            .iter()
            .step_by(5)
            .map(|set| {
                QuerySpec::new(set.clone())
                    .with_top_k(6)
                    .with_floor(0.1)
                    .unwrap()
            })
            .collect();
        let batch = sharded.execute_batch(&specs);
        assert_eq!(batch.len(), specs.len());
        for (spec, got) in specs.iter().zip(&batch) {
            let want = sharded.execute(spec);
            assert_eq!(got.hits.len(), want.hits.len());
            for (a, b) in got.hits.iter().zip(&want.hits) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            assert_eq!(got.shard_stats, want.shard_stats);
        }
    }

    #[test]
    fn execute_explanations_survive_the_global_merge() {
        let raw = corpus(24);
        let sharded = ShardedEngine::build(&raw, cfg(0.5), 3).unwrap();
        let spec = QuerySpec::new(raw[0].clone())
            .with_floor(0.0)
            .unwrap()
            .with_top_k(4)
            .with_explain(true);
        let out = sharded.execute(&spec);
        assert_eq!(out.hits.len(), 4);
        assert_eq!(out.explanations.len(), 4);
        for ((gid, score), (egid, expl)) in out.hits.iter().zip(&out.explanations) {
            assert_eq!(gid, egid, "explanations aligned with hits");
            assert!((expl.relatedness - score).abs() < 1e-12);
        }
    }

    #[test]
    fn search_matches_unsharded_engine() {
        let raw = corpus(60);
        let tokenization = cfg(0.5).tokenization();
        let single = Engine::new(Collection::build(&raw, tokenization), cfg(0.5)).unwrap();
        let sharded = ShardedEngine::build(&raw, cfg(0.5), 4).unwrap();
        for rid in [0usize, 17, 42] {
            let r = single.collection().set(rid as SetIdx).clone();
            let want = single.query(&r).run().unwrap().results;
            let got = sharded.search(&raw[rid], None, None).unwrap().results;
            assert_eq!(got.len(), want.len(), "rid={rid}");
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.0, b.0, "rid={rid}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "rid={rid}");
            }
        }
    }
}
