//! A minimal multi-threaded HTTP/1.1 server on [`std::net::TcpListener`]:
//! an acceptor thread feeds a fixed worker pool through a channel.
//! Connections are **time-sliced**: a worker serves requests while they
//! are arriving and hands an idle keep-alive connection back to the
//! queue, so N workers multiplex more than N connections without
//! starving anyone. Shutdown is graceful: the acceptor stops,
//! connections finish their in-flight request, and the pool drains
//! before [`HttpServer::shutdown`] returns.
//!
//! Implements the subset the service needs: request line + headers +
//! `Content-Length` bodies. Requests with `Transfer-Encoding` are
//! rejected with a 400 (never silently misframed). No TLS, no
//! `Expect: 100-continue`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Total request-head bytes (request line + headers) accepted.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest request body accepted.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Idle keep-alive connections are dropped after this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);
/// Cap on any single blocking read while receiving a request.
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Hard wall-clock budget for receiving one complete request (head +
/// body) once its first byte has arrived. Per-read timeouts reset on
/// every byte, so without this a client trickling one byte per few
/// seconds (slowloris) would pin a worker for hours.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);
/// How long an idle worker blocks waiting for queued work before
/// re-checking the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(20);
/// How long a worker's peek blocks waiting for a kept-alive connection's
/// next request to *start* arriving before handing the connection back
/// to the queue. Long enough that an active connection is served the
/// instant its bytes land (the read wakes on arrival), short enough that
/// cycling through C idle connections on W workers adds at most
/// ~C/W milliseconds of latency and never busy-spins.
const PEEK_TIMEOUT: Duration = Duration::from_millis(1);

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
    /// True for HTTP/1.0 requests (default close instead of keep-alive).
    http10: bool,
}

impl Request {
    /// Builds an HTTP/1.1 request directly — for exercising a handler
    /// without a socket.
    pub fn new(method: &str, path: &str, body: Vec<u8>) -> Self {
        Self {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body,
            http10: false,
        }
    }

    /// First header value by (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open.
    fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => !self.http10,
        }
    }
}

/// One HTTP response.
#[derive(Debug)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra headers beyond the framing ones (e.g. `Retry-After` on a
    /// 503). Names must be valid header names; values a single line.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A `Content-Type: application/json` response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            headers: Vec::new(),
        }
    }

    /// A plain-text response with an explicit `Content-Type` (e.g. the
    /// Prometheus exposition type for `/metrics`).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Self {
        Self {
            status,
            content_type,
            body: body.into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Adds one extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Re-arms the socket's read timeout to what is left of the request
/// deadline (capped at [`READ_TIMEOUT`]); errors with `TimedOut` once
/// the deadline has passed.
fn arm_deadline(stream: &TcpStream, deadline: Instant) -> io::Result<()> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "request deadline exceeded",
        ));
    }
    stream.set_read_timeout(Some(remaining.min(READ_TIMEOUT)))
}

/// Reads one `\n`-terminated head line, enforcing the remaining head
/// budget `cap` and the request deadline *while* reading — a line that
/// never terminates can neither buffer unboundedly nor trickle past the
/// deadline. `Ok(None)` means clean EOF before any byte.
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    cap: &mut usize,
    deadline: Instant,
) -> io::Result<Option<String>> {
    let mut bytes: Vec<u8> = Vec::new();
    loop {
        arm_deadline(reader.get_ref(), deadline)?;
        let (consumed, complete) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                if bytes.is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    bytes.extend_from_slice(&buf[..=pos]);
                    (pos + 1, true)
                }
                None => {
                    bytes.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if bytes.len() > *cap {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        if complete {
            *cap -= bytes.len();
            return String::from_utf8(bytes).map(Some).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 in request head")
            });
        }
    }
}

/// Reads exactly `len` body bytes under the request deadline.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    deadline: Instant,
) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        arm_deadline(reader.get_ref(), deadline)?;
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            }
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(body)
}

/// Reads one request off the connection. `Ok(None)` means the client
/// closed cleanly before sending another request; `InvalidData` errors
/// mean a malformed or oversized request (the caller answers 400 and
/// closes). The whole request must arrive within [`REQUEST_DEADLINE`]
/// of this call (the caller only invokes it once the first byte is
/// ready, so the clock effectively starts at the first byte).
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut cap = MAX_HEAD_BYTES;
    let Some(line) = read_head_line(reader, &mut cap, deadline)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "malformed request line");
    let method = parts.next().ok_or_else(bad)?.to_owned();
    let path = parts.next().ok_or_else(bad)?.to_owned();
    let version = parts.next().ok_or_else(bad)?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad());
    }
    let http10 = version == "HTTP/1.0";

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_head_line(reader, &mut cap, deadline)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        };
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
        http10,
    };
    // The only body framing implemented is Content-Length. Anything else
    // must be rejected (the caller closes the connection), never ignored:
    // treating a chunked body as "no body" would re-parse its bytes as
    // the next request on the keep-alive connection — a desync.
    if request.header("transfer-encoding").is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "transfer-encoding is not supported (use content-length)",
        ));
    }
    // Same desync hazard for conflicting duplicate Content-Length
    // headers (RFC 9112 §6.3): reject unless all agree.
    let mut lengths = request
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length");
    if let Some((_, first)) = lengths.next() {
        if lengths.any(|(_, other)| other != first) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "conflicting content-length headers",
            ));
        }
        let len: usize = first
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        if len > MAX_BODY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request body too large",
            ));
        }
        request.body = read_body(reader, len, deadline)?;
    }
    Ok(Some(request))
}

/// Reads one HTTP/1.1 response — status line, headers, `Content-Length`
/// body — off a blocking reader: the minimal client-side counterpart of
/// this server, shared by the load generator and the integration tests.
pub fn read_simple_response<R: BufRead>(reader: &mut R) -> io::Result<(u16, Vec<u8>)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v
                .trim()
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// One live connection with its buffered reader and the instant it last
/// completed a request (for the idle cutoff).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    idle_since: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Option<Self> {
        // Small request/response pairs on keep-alive connections are
        // exactly the pattern Nagle + delayed ACK punishes (~40 ms per
        // turn); the response is written in full, so there is nothing to
        // coalesce.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().ok()?;
        Some(Self {
            reader: BufReader::new(stream),
            writer,
            idle_since: Instant::now(),
        })
    }

    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(Some(timeout))
    }
}

/// Serves a connection for one time slice. Returns the connection when
/// it should go back to the queue (kept alive but currently idle), or
/// `None` when it is finished (closed, errored, timed out, or draining
/// for shutdown).
///
/// A worker never blocks longer than [`PEEK_TIMEOUT`] on an *idle*
/// connection — it peeks with `fill_buf` first, which consumes nothing,
/// and only commits to the request deadline once the next request has
/// started arriving. This is what lets a fixed pool of N workers
/// multiplex more than N keep-alive connections without starving anyone.
fn serve_slice<H>(mut conn: Conn, handler: &H, shutdown: &AtomicBool) -> Option<Conn>
where
    H: Fn(&Request) -> Response,
{
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        // Peek: has the next request started? fill_buf consumes nothing,
        // so handing the connection back here never loses bytes. The
        // blocking read wakes the moment bytes land, so an active
        // connection pays no peek latency at all.
        if conn.reader.buffer().is_empty() {
            if conn.set_read_timeout(PEEK_TIMEOUT).is_err() {
                return None;
            }
            match conn.reader.fill_buf() {
                Ok([]) => return None, // clean EOF
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    if conn.idle_since.elapsed() >= IDLE_TIMEOUT {
                        return None; // idle too long, drop it
                    }
                    return Some(conn); // requeue: let another connection run
                }
                Err(_) => return None,
            }
        }
        // A request is arriving: read it under the request deadline.
        match read_request(&mut conn.reader) {
            Ok(Some(request)) => {
                let response = handler(&request);
                // Draining: finish this request, then close instead of
                // waiting for another on the keep-alive connection.
                let close = shutdown.load(Ordering::SeqCst) || !request.keep_alive();
                if write_response(&mut conn.writer, &response, close).is_err() || close {
                    return None;
                }
                conn.idle_since = Instant::now();
            }
            Ok(None) => return None,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let resp = Response::json(400, format!("{{\"error\":\"{e}\"}}"));
                let _ = write_response(&mut conn.writer, &resp, true);
                return None;
            }
            // Timeouts, resets, truncated requests: just drop the
            // connection.
            Err(_) => return None,
        }
    }
}

/// A running server: the acceptor thread, the worker pool, and the
/// shutdown flag. Obtained from [`serve`].
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let every already-accepted
    /// connection finish its in-flight request, drain the pool, and join
    /// all threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        self.join_all();
    }

    /// Blocks until the server stops (i.e. forever, unless another
    /// handle triggers shutdown or the acceptor dies). Used by the CLI's
    /// `serve` command.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept(). A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim the dummy connection at loopback instead.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&target, Duration::from_secs(1));
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        // Dropping the handle without an explicit shutdown() still stops
        // the server instead of leaking detached threads.
        if self.acceptor.is_some() {
            self.begin_shutdown();
            self.join_all();
        }
    }
}

/// Binds `addr` and serves `handler` on a pool of `threads` workers
/// (clamped to ≥ 1). Returns immediately; the server runs on background
/// threads until [`HttpServer::shutdown`] (or drop).
pub fn serve<A, H>(addr: A, threads: usize, handler: H) -> io::Result<HttpServer>
where
    A: ToSocketAddrs,
    H: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let handler = Arc::new(handler);
    let (tx, rx) = mpsc::channel::<Conn>();
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let tx = tx.clone();
            let handler = Arc::clone(&handler);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || loop {
                // Holding the lock while blocked in recv_timeout is fine:
                // the first connection wakes exactly one worker, which
                // releases the lock before serving it (the book's pool
                // pattern, plus a timeout to observe the shutdown flag —
                // workers hold `tx` clones for requeueing, so the channel
                // never disconnects on its own).
                let work = rx
                    .lock()
                    .expect("dispatch lock poisoned")
                    .recv_timeout(SHUTDOWN_POLL);
                match work {
                    Ok(conn) => {
                        if let Some(conn) = serve_slice(conn, handler.as_ref(), &shutdown) {
                            // Still alive but idle: back of the queue.
                            // The bounded PEEK_TIMEOUT it just spent is
                            // what keeps this rotation from spinning hot.
                            let _ = tx.send(conn);
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            })
        })
        .collect();

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break; // wake-up connection (or racing client) dropped
                }
                match stream {
                    Ok(stream) => {
                        if let Some(conn) = Conn::new(stream) {
                            if tx.send(conn).is_err() {
                                break;
                            }
                        }
                    }
                    Err(_) => {
                        // Persistent accept errors (fd exhaustion —
                        // EMFILE/ENFILE) fail instantly; don't busy-spin,
                        // give in-flight connections a chance to close.
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    }
                }
            }
        })
    };

    Ok(HttpServer {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status: u16 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (status, body)
    }

    fn echo_server(threads: usize) -> HttpServer {
        serve("127.0.0.1:0", threads, |req: &Request| {
            Response::json(200, format!("{{\"path\":\"{}\"}}", req.path))
        })
        .unwrap()
    }

    #[test]
    fn serves_and_shuts_down() {
        let server = echo_server(2);
        let addr = server.addr();
        let (status, body) = get(addr, "/x");
        assert_eq!(status, 200);
        assert!(body.contains("\"/x\""));
        server.shutdown();
        // After shutdown the port no longer accepts requests.
        assert!(TcpStream::connect(addr).is_err() || get_best_effort(addr).is_none());
    }

    fn get_best_effort(addr: SocketAddr) -> Option<String> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .ok()?;
        write!(stream, "GET / HTTP/1.1\r\nHost: x\r\n\r\n").ok()?;
        let mut text = String::new();
        stream.read_to_string(&mut text).ok()?;
        if text.is_empty() {
            None
        } else {
            Some(text)
        }
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = echo_server(1);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3 {
            write!(stream, "GET /req{i} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let (status, body) = read_simple_response(&mut reader).unwrap();
            assert_eq!(status, 200, "req{i}");
            assert!(String::from_utf8(body)
                .unwrap()
                .contains(&format!("req{i}")));
        }
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn one_worker_multiplexes_many_keepalive_connections() {
        // Three keep-alive clients against a pool of ONE worker: without
        // connection time-slicing the second and third connections would
        // starve behind the first until it closed or idled out.
        let server = echo_server(1);
        let mut clients: Vec<(TcpStream, BufReader<TcpStream>)> = (0..3)
            .map(|_| {
                let stream = TcpStream::connect(server.addr()).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let reader = BufReader::new(stream.try_clone().unwrap());
                (stream, reader)
            })
            .collect();
        for round in 0..3 {
            for (cid, (stream, reader)) in clients.iter_mut().enumerate() {
                write!(stream, "GET /c{cid}r{round} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
                let (status, body) = read_simple_response(reader).unwrap();
                assert_eq!(status, 200, "c{cid}r{round}");
                assert!(
                    String::from_utf8(body)
                        .unwrap()
                        .contains(&format!("c{cid}r{round}")),
                    "c{cid}r{round}"
                );
            }
        }
        drop(clients);
        server.shutdown();
    }

    #[test]
    fn oversized_request_head_is_rejected_not_buffered() {
        let server = echo_server(1);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // A request line far past MAX_HEAD_BYTES with no newline: the
        // server must cut it off at the cap, not buffer until OOM. The
        // write may fail mid-stream once the server closes — fine.
        let chunk = vec![b'A'; 64 * 1024];
        let _ = stream.write_all(&chunk);
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        // Either an explicit 400 or an abrupt close is acceptable; what
        // is not acceptable is hanging while the server buffers forever.
        assert!(
            text.is_empty() || text.starts_with("HTTP/1.1 400"),
            "{text}"
        );
        server.shutdown();
    }

    #[test]
    fn transfer_encoding_is_rejected_not_misframed() {
        let server = echo_server(1);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST /x HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
             4\r\nbody\r\n0\r\n\r\n"
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        // 400 + close: the chunked payload must never be parsed as a
        // second request on this connection.
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert_eq!(text.matches("HTTP/1.1").count(), 1, "{text}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server(1);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        server.shutdown();
    }

    #[test]
    fn post_body_roundtrips() {
        let server = serve("127.0.0.1:0", 2, |req: &Request| {
            Response::json(200, String::from_utf8_lossy(&req.body).into_owned())
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = "{\"echo\":true}";
        write!(
            stream,
            "POST /e HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.ends_with(body), "{text}");
        server.shutdown();
    }
}
