//! The SilkMoth network service: HTTP routes over a [`ShardedEngine`] —
//! ephemeral, or durable behind a `silkmoth-storage` [`Store`].
//!
//! ## Endpoints
//!
//! | Route            | Body                                             | Response |
//! |------------------|--------------------------------------------------|----------|
//! | `POST /search`   | a [`QuerySpec`] object (see [`queryspec`](crate::queryspec)): `{"reference": [elem, …], "k"?, "floor"?, "deadline_ms"?, "stats"?, "explain"?}` | `{"results": [{"set", "score"}, …], "timed_out": b, "stats"?: {…}, "explain"?: […]}` |
//! | `POST /search/batch` | `{"queries": [spec, …]}`                     | `{"outputs": [one per spec, same shape as /search]}` |
//! | `POST /discover` | `{"references": [[elem, …], …]}`                 | `{"pairs": [{"r", "s", "score"}, …], "stats": {…}}` |
//! | `POST /sets`     | `{"sets": [[elem, …], …]}`                       | `{"appended": [id, …], "sets": n}` |
//! | `DELETE /sets`   | `{"ids": [id, …]}`                               | `{"removed": n, "sets": n}` |
//! | `POST /compact`  | —                                                | `{"sets": n}` |
//! | `POST /snapshot` | —                                                | `{"snapshot_seq": n}` (durable mode; 409 otherwise) |
//! | `POST /promote`  | —                                                | `{"role": "primary", "epoch", "update_seq"}` — follower failover (409 when already primary) |
//! | `GET /stats`     | —                                                | request counters, per-shard and merged [`PassStats`], and (durable) the storage generation |
//! | `GET /healthz`   | —                                                | `{"status": "ok", "durable": b, "role": "primary"\|"follower", "version", "uptime_secs", "update_seq", …}` |
//! | `GET /metrics`   | —                                                | the [`metrics`](crate::metrics) bundle in the Prometheus text exposition format |
//! | `GET /debug/traces` | optional `?route=`, `?min_ms=`, `?id=` filters | `{"version": 1, "traces": […]}` — the captured-trace ring, newest-last (see Observability) |
//!
//! Set ids in responses are **global** (the line number of the set in
//! the served input; appended sets continue the numbering), identical
//! to what one unsharded engine would report, and stable across every
//! update including compaction. `DELETE /sets` is idempotent per id
//! but rejects ids that were never assigned (404). Errors come back as
//! `{"error": "…"}` with a 4xx status.
//!
//! ## Durability
//!
//! In durable mode every update route is **WAL-logged and fsync'd
//! before it is acknowledged** — a 200 means the mutation survives
//! `kill -9`. Concurrent updates **group-commit**: they queue in front
//! of the store, and whichever request thread claims leadership
//! drains the queue and commits the whole batch with one buffered WAL
//! write and one fsync ([`Store::commit_batch`]), then applies it to
//! the engine in WAL order under the write lock — so N concurrent
//! writers pay ~1 fsync, not N. The WAL append itself runs under the
//! *shared* engine lock: searches keep executing through the fsync.
//! `POST /snapshot` forces a checkpoint + WAL rotation, and the
//! store's [`CompactionPolicy`] may compact/checkpoint automatically
//! after any update. A storage failure (disk full, fsync error) is a
//! 500 and the update is *not* acknowledged — with one deliberate
//! exception: when the update itself committed durably but the
//! *post-commit* policy maintenance (auto-compaction / auto-snapshot)
//! failed, the route still answers 200 with `"degraded": true` and
//! logs the maintenance error, because a 500 would invite a retry of
//! an update that already happened.
//!
//! ## Deadlines
//!
//! A per-query `deadline_ms` caps one query's wall-clock budget: on
//! expiry the engine stops cooperatively and answers `200` with
//! `"timed_out": true` and the results proven so far. A server-level
//! [`with_search_timeout`](SearchService::with_search_timeout)
//! (`serve --search-timeout-ms`) additionally bounds the **whole
//! request** (a batch counts as one request); exhausting it answers
//! `504` instead.
//!
//! ## Concurrency and backpressure
//!
//! Updates take the engine's write lock; searches share a read lock,
//! so an ingest waits for in-flight searches and vice versa, and every
//! search sees either all or none of an update. Updates waiting for
//! the write lock queue up; with
//! [`with_max_inflight_updates`](SearchService::with_max_inflight_updates)
//! the queue is bounded — excess updates are rejected immediately with
//! `503` + `Retry-After` instead of pinning workers.
//!
//! ## Observability
//!
//! Every request flows through an instrumented wrapper: a monotonic
//! request id, an in-flight gauge, and per-route counters + latency
//! histograms in the [`metrics`](crate::metrics) bundle served on
//! `GET /metrics`. Search routes additionally record per-phase query
//! timing (stage / verify / explain, worst shard per phase) and — when
//! the spec sets `"timing": true` — return the same numbers in the
//! response. [`with_log_format`](SearchService::with_log_format) turns
//! on one structured log line per request (text or JSON), and
//! [`with_slow_query_ms`](SearchService::with_slow_query_ms) logs the
//! full spec of any search slower than the threshold.
//!
//! Per-request **traces** ride the same wrapper: every response carries
//! its request id in an `X-Request-Id` header and the log line's
//! `trace` field, and a sampled request
//! ([`with_trace_sample`](SearchService::with_trace_sample), 1-in-N) or
//! any request at/over the slow-query threshold records a hierarchical
//! span tree — http → query → shard → stage/verify, plus WAL
//! write/fsync and group-commit spans in durable mode — with the
//! paper's filter-funnel survivor counts as span attributes, into a
//! bounded in-memory ring served at `GET /debug/traces`.

use std::io;
use std::net::ToSocketAddrs;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

use silkmoth_collection::{SetIdx, UpdateError};
use silkmoth_core::{CompactionPolicy, PassStats, QuerySpec, Update, UpdateOutcome};
use silkmoth_replica::{CommitSignal, FollowerShared};
use silkmoth_storage::{StorageError, Store, StoreEvent, TelemetryHook};
use silkmoth_telemetry::trace::{self, AttrValue, SpanId, TraceCollector, Tracer};

use crate::http::{self, HttpServer, Request, Response};
use crate::json::{obj, Json};
use crate::metrics::{canonical_route, ServiceMetrics};
use crate::queryspec::{explanation_json, spec_from_json, spec_to_json};
use crate::shard::{merge_stats, ShardedEngine, ShardedQueryOutput};

/// What the service serves: a bare engine, or an engine owned by a
/// durable store that WAL-logs every update.
//
// One Backend exists per service, so the size gap between the
// variants (the Store carries WAL + policy + hooks inline) costs
// nothing; boxing the durable side would only add a pointer chase to
// every update.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Backend {
    Ephemeral(ShardedEngine),
    Durable(Store<ShardedEngine>),
}

impl Backend {
    fn engine(&self) -> &ShardedEngine {
        match self {
            Self::Ephemeral(engine) => engine,
            Self::Durable(store) => store.engine(),
        }
    }
}

/// Read access to the served engine (returned by
/// [`SearchService::engine`]); dereferences to [`ShardedEngine`] and
/// holds the service's read lock while alive.
#[derive(Debug)]
pub struct EngineGuard<'a>(RwLockReadGuard<'a, Backend>);

impl Deref for EngineGuard<'_> {
    type Target = ShardedEngine;

    fn deref(&self) -> &ShardedEngine {
        self.0.engine()
    }
}

/// Decrements the in-flight update counter on drop (see
/// [`SearchService::with_max_inflight_updates`]).
struct InflightGuard<'a>(Option<&'a AtomicUsize>);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(counter) = self.0 {
            counter.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// The group-commit queue in front of the durable store. Concurrent
/// update requests enqueue here; whichever request thread finds no
/// leader active claims leadership, drains the queue **once**, and
/// commits everything drained as one batch (one WAL write + one
/// fsync), applies it to the engine, and delivers each update's
/// outcome into its slot. The other threads wait on the condvar —
/// crucially *without* queueing on a lock the leader holds, so a
/// writer whose update was acked by the previous leader can respond
/// and enqueue its next update while the current leader is still
/// inside its fsync. That is what lets batches grow: the fsync window
/// is exactly when the queue fills.
#[derive(Debug, Default)]
struct CommitQueue {
    /// Updates waiting for the next leader's drain.
    pending: Mutex<Vec<QueuedUpdate>>,
    /// True while a leader is inside its commit → apply → maintain
    /// cycle (or `/snapshot`/`/promote` holds leadership before the
    /// write lock) — so a WAL rotation can never interleave between a
    /// batch's durable commit and its engine apply (a snapshot cut
    /// there would record a seq the engine hasn't reached). Guarded by
    /// this mutex, handed over through `wakeup`.
    leading: Mutex<bool>,
    /// Signalled when the leader resigns: completed waiters pick up
    /// their results, and one of the rest becomes the next leader.
    wakeup: Condvar,
}

impl CommitQueue {
    /// Blocks until this thread holds batch leadership. While the
    /// guard lives, no group commit can sit between its durable-commit
    /// and engine-apply phases, and none can start.
    fn lead(&self) -> LeaderGuard<'_> {
        let mut leading = self.leading.lock().unwrap_or_else(PoisonError::into_inner);
        while *leading {
            leading = self
                .wakeup
                .wait(leading)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *leading = true;
        LeaderGuard { queue: self }
    }
}

/// Resigns leadership on drop (even on panic) and wakes every waiter.
struct LeaderGuard<'a> {
    queue: &'a CommitQueue,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        *self
            .queue
            .leading
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = false;
        self.queue.wakeup.notify_all();
    }
}

/// One enqueued update and the slot its outcome is delivered into.
#[derive(Debug)]
struct QueuedUpdate {
    update: Update,
    slot: Arc<UpdateSlot>,
}

/// Where a queued update's result lands. The completing leader fills
/// every drained slot before resigning, so a waiter woken by the
/// queue's condvar either finds its result here or becomes the next
/// leader.
#[derive(Debug, Default)]
struct UpdateSlot(Mutex<Option<Result<GroupReceipt, GroupCommitError>>>);

impl UpdateSlot {
    fn complete(&self, result: Result<GroupReceipt, GroupCommitError>) {
        *self.0.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
    }

    fn take(&self) -> Option<Result<GroupReceipt, GroupCommitError>> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).take()
    }
}

/// What one update gets back from its group commit.
#[derive(Debug)]
struct GroupReceipt {
    outcome: UpdateOutcome,
    /// Live sets after the whole batch applied.
    total: usize,
    /// The update is durably committed and applied, but post-commit
    /// policy maintenance failed — the route must still answer
    /// success, flagged degraded (see
    /// [`ApplyReceipt::maintenance_error`](silkmoth_storage::ApplyReceipt)).
    maintenance_error: Option<String>,
}

/// What an update route needs to render its response.
#[derive(Debug)]
struct AppliedUpdate {
    outcome: UpdateOutcome,
    /// Live sets after the update.
    total: usize,
    /// Durable mode: the update committed and applied but post-commit
    /// maintenance failed — rendered as `"degraded": true`, never as
    /// an error status (a retry would duplicate the update).
    degraded: bool,
}

/// Why a queued update failed.
#[derive(Debug)]
enum GroupCommitError {
    /// The update was invalid against the engine state it would have
    /// applied to. It was never WAL-logged; the rest of its batch is
    /// unaffected.
    Update(UpdateError),
    /// The batch's commit or apply failed — shared by every update in
    /// the batch, none of which was acknowledged.
    Storage(Arc<StorageError>),
}

/// How request log lines are rendered (`serve --log-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// `request id=42 route=/search status=200 duration_ms=1.234 …`
    Text,
    /// One JSON object per line, same fields.
    Json,
}

/// Where request log lines go. Defaults to stderr; tests inject a
/// capturing sink.
#[derive(Clone)]
struct LogSink(Arc<dyn Fn(&str) + Send + Sync>);

impl std::fmt::Debug for LogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LogSink(..)")
    }
}

impl Default for LogSink {
    fn default() -> Self {
        Self(Arc::new(|line| eprintln!("{line}")))
    }
}

/// What a handler reports back to the instrumented request wrapper:
/// the shard fan-out, whether any query timed out, and — only when
/// slow-query logging is armed — the parsed specs, for the slow-query
/// log line.
#[derive(Debug, Default)]
struct RequestInfo {
    /// Shards the request scattered across (search/discover routes).
    shards: Option<usize>,
    /// True when any query in the request timed out cooperatively.
    timed_out: bool,
    /// Specs rendered for slow-query logging (empty unless armed).
    specs: Vec<Json>,
    /// The request's span collector, present only when this request
    /// can end up in the trace ring (sampled, or slow-query capture is
    /// armed); handlers hang query/shard/phase spans off it.
    trace: Option<TraceCollector>,
}

/// Completed traces the ring retains (`GET /debug/traces`). At the
/// typical few-KB per trace this bounds the ring's memory near a
/// megabyte regardless of traffic.
const TRACE_RING_CAPACITY: usize = 256;

/// The service's place in a replication topology. Everything starts as
/// a standalone primary; `serve --replicate-from` flips to the
/// follower role ([`crate::replication::start_follower`]) and
/// `POST /promote` flips back.
#[derive(Debug)]
enum ReplicationRole {
    /// Accepts writes.
    Primary,
    /// Read-only: update routes answer `409` naming `primary`;
    /// replicated records land through the sink instead.
    Follower {
        primary: String,
        shared: Arc<FollowerShared>,
    },
}

/// Shared service state: the engine (plus its store, in durable mode)
/// and cumulative observability counters for `GET /stats`.
#[derive(Debug)]
pub struct SearchService {
    backend: RwLock<Backend>,
    /// Role in the replication topology (primary unless tailing).
    replication: Mutex<ReplicationRole>,
    /// Live connections on the attached replication log listener, when
    /// one is serving (`--replicate-addr`) — independent of role, so a
    /// chained follower reports its downstream count too.
    follower_gauge: Mutex<Option<Arc<AtomicUsize>>>,
    /// Notified at the durable store's commit point; what replication
    /// streamers block on instead of polling. Idle on ephemeral
    /// services.
    commit_signal: Arc<CommitSignal>,
    /// Group-commit queue for durable updates (idle on ephemeral
    /// services).
    commit_queue: CommitQueue,
    /// The WAL retention floor installed on the durable store, kept
    /// here so a bootstrap store replacement re-installs it.
    retention_hook: Mutex<Option<silkmoth_storage::RetentionHook>>,
    /// Ephemeral-mode auto-compaction (durable mode: the policy lives
    /// in the store's `StoreConfig` so auto-actions are WAL-logged).
    policy: CompactionPolicy,
    /// `Some(n)`: at most n updates admitted concurrently (holding or
    /// waiting for the write lock); the rest get 503.
    max_inflight_updates: Option<usize>,
    /// `Some(n)`: `POST /sets` answers a named 403 once the collection
    /// would hold more than n live sets (catalog quota).
    max_sets: Option<usize>,
    /// `Some(n)`: `POST /sets` answers a named 403 once live element
    /// text would exceed n bytes (catalog quota).
    max_bytes: Option<u64>,
    /// The catalog collection this service serves, when it is one of a
    /// catalog's tenants: query trace spans carry it as a `collection`
    /// attribute. `None` on a standalone (or default) service keeps
    /// those spans byte-identical to the single-tenant server's.
    collection: Option<String>,
    /// Whole-request wall-clock budget for `/search` and
    /// `/search/batch`: execution is capped cooperatively at this
    /// deadline and an expired request answers `504`.
    search_timeout: Option<Duration>,
    inflight_updates: AtomicUsize,
    searches: AtomicU64,
    discoveries: AtomicU64,
    updates: AtomicU64,
    /// Ephemeral-mode policy compactions (durable mode reports the
    /// store's own counter).
    auto_compactions: AtomicU64,
    /// Cumulative pass stats per shard, merged in after every request.
    shard_stats: Vec<Mutex<PassStats>>,
    /// The `/metrics` registry and its recording handles.
    metrics: ServiceMetrics,
    /// When the service started, for `/healthz` uptime.
    started: Instant,
    /// Monotonic request id source for log correlation.
    request_ids: AtomicU64,
    /// `Some`: one structured log line per request.
    log_format: Option<LogFormat>,
    /// `Some(ms)`: searches slower than this log their full specs.
    slow_query_ms: Option<u64>,
    log_sink: LogSink,
    /// The request-trace ring (`GET /debug/traces`): slow queries are
    /// always captured, `--trace-sample` captures 1-in-N of the rest.
    tracer: Arc<Tracer>,
}

impl SearchService {
    /// Wraps an engine in fresh ephemeral (in-memory only) service
    /// state.
    pub fn new(engine: ShardedEngine) -> Self {
        Self::with_backend(Backend::Ephemeral(engine))
    }

    /// Wraps a durable store: every update route WAL-logs before
    /// acknowledging, `POST /snapshot` checkpoints, and the store's
    /// own policy drives auto-compaction/auto-snapshots.
    pub fn durable(store: Store<ShardedEngine>) -> Self {
        Self::with_backend(Backend::Durable(store))
    }

    fn with_backend(mut backend: Backend) -> Self {
        let shard_stats = (0..backend.engine().shard_count())
            .map(|_| Mutex::new(PassStats::default()))
            .collect();
        let commit_signal = Arc::new(CommitSignal::new());
        let metrics = ServiceMetrics::new();
        if let Backend::Durable(store) = &mut backend {
            commit_signal.seed(store.status().update_seq);
            store.set_commit_hook(commit_signal.hook());
            store.set_telemetry_hook(store_telemetry_hook(&metrics));
        }
        Self {
            backend: RwLock::new(backend),
            replication: Mutex::new(ReplicationRole::Primary),
            follower_gauge: Mutex::new(None),
            commit_signal,
            commit_queue: CommitQueue::default(),
            retention_hook: Mutex::new(None),
            policy: CompactionPolicy::DISABLED,
            max_inflight_updates: None,
            max_sets: None,
            max_bytes: None,
            collection: None,
            search_timeout: None,
            inflight_updates: AtomicUsize::new(0),
            searches: AtomicU64::new(0),
            discoveries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            auto_compactions: AtomicU64::new(0),
            shard_stats,
            metrics,
            started: Instant::now(),
            request_ids: AtomicU64::new(0),
            log_format: None,
            slow_query_ms: None,
            log_sink: LogSink::default(),
            tracer: Arc::new(Tracer::new(TRACE_RING_CAPACITY)),
        }
    }

    /// Auto-compaction policy for the **ephemeral** backend (checked
    /// after every update). In durable mode set the policy in the
    /// store's `StoreConfig` instead, so policy actions are WAL-logged
    /// like any other update; a policy set here is then ignored.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bounds how many update requests may be in flight (applying, or
    /// queued on the engine write lock) at once; beyond `n` (clamped
    /// to ≥ 1), update routes answer `503` with a `Retry-After` header
    /// instead of queuing unboundedly.
    pub fn with_max_inflight_updates(mut self, n: usize) -> Self {
        self.max_inflight_updates = Some(n.max(1));
        self
    }

    /// Bounds how many live sets this collection may hold: a
    /// `POST /sets` that would push past `n` answers a named `403`
    /// without touching the engine (catalog `max_sets` quota).
    pub fn with_max_sets(mut self, n: usize) -> Self {
        self.max_sets = Some(n);
        self
    }

    /// Bounds the live element-text bytes this collection may hold:
    /// a `POST /sets` that would push past `n` bytes answers a named
    /// `403` (catalog `max_bytes` quota). The live total is only
    /// computed when this bound is set.
    pub fn with_max_bytes(mut self, n: u64) -> Self {
        self.max_bytes = Some(n);
        self
    }

    /// Swaps in a pre-built metric bundle — how a catalog gives each
    /// collection's service `collection`-labelled families on one
    /// shared registry ([`ServiceMetrics::for_collection`]). The
    /// bundle's collection name (if any) also becomes the `collection`
    /// attribute on query trace spans. On a durable backend the store's
    /// telemetry hook is re-wired to the new cells.
    pub fn with_metrics(mut self, metrics: ServiceMetrics) -> Self {
        if let Backend::Durable(store) = &mut *self
            .backend
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
        {
            store.set_telemetry_hook(store_telemetry_hook(&metrics));
        }
        self.collection = metrics.collection().map(str::to_owned);
        self.metrics = metrics;
        self
    }

    /// Bounds how long one `/search` or `/search/batch` request may
    /// run. The deadline is enforced cooperatively inside the engine's
    /// chunked filter/verify loop (capped together with any per-query
    /// `deadline_ms` the spec carries); a request that exhausts the
    /// whole budget answers `504` instead of partial results — a
    /// per-query `deadline_ms` that expires on its own still answers
    /// `200` with `"timed_out": true`.
    pub fn with_search_timeout(mut self, timeout: Duration) -> Self {
        self.search_timeout = Some(timeout);
        self
    }

    /// Turns on structured request logging: one line per request
    /// (`serve --log-format`). Off by default.
    pub fn with_log_format(mut self, format: LogFormat) -> Self {
        self.log_format = Some(format);
        self
    }

    /// Logs the full spec of any search request slower than `ms`
    /// milliseconds (`serve --slow-query-ms`). Independent of
    /// [`with_log_format`](Self::with_log_format); slow-query lines
    /// render as text unless a format says otherwise.
    pub fn with_slow_query_ms(mut self, ms: u64) -> Self {
        self.slow_query_ms = Some(ms);
        self
    }

    /// Redirects log lines (tests capture them; the default sink is
    /// stderr).
    pub fn with_log_sink(mut self, sink: impl Fn(&str) + Send + Sync + 'static) -> Self {
        self.log_sink = LogSink(Arc::new(sink));
        self
    }

    /// Samples 1-in-`n` requests into the trace ring served on
    /// `GET /debug/traces` (`serve --trace-sample`). `0` — the default
    /// — turns sampling off; requests at or over the
    /// [`with_slow_query_ms`](Self::with_slow_query_ms) threshold are
    /// captured regardless.
    pub fn with_trace_sample(self, n: u64) -> Self {
        self.tracer.set_sample(n);
        self
    }

    /// The service's metric bundle (what `GET /metrics` renders).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The request-trace ring (what `GET /debug/traces` serves).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Read access to the engine being served (shared with in-flight
    /// searches; blocks while an update holds the write lock).
    pub fn engine(&self) -> EngineGuard<'_> {
        EngineGuard(self.backend.read().expect("engine lock poisoned"))
    }

    /// Runs `f` against the durable store under the read lock; `None`
    /// on an ephemeral service.
    pub(crate) fn read_durable<R>(&self, f: impl FnOnce(&Store<ShardedEngine>) -> R) -> Option<R> {
        match &*self.backend.read().expect("engine lock poisoned") {
            Backend::Durable(store) => Some(f(store)),
            Backend::Ephemeral(_) => None,
        }
    }

    /// Runs `f` against the durable store under the **write** lock —
    /// how replicated records land without passing the follower
    /// read-only check; `None` on an ephemeral service.
    pub(crate) fn with_durable_store<R>(
        &self,
        f: impl FnOnce(&mut Store<ShardedEngine>) -> R,
    ) -> Option<R> {
        match &mut *self.backend.write().expect("engine lock poisoned") {
            Backend::Durable(store) => Some(f(store)),
            Backend::Ephemeral(_) => None,
        }
    }

    /// Swaps in a replacement durable store (a follower installing a
    /// bootstrap snapshot), rewiring the commit signal to it. False on
    /// an ephemeral service (nothing replaced).
    pub(crate) fn replace_durable_store(&self, mut store: Store<ShardedEngine>) -> bool {
        let mut backend = self.backend.write().expect("engine lock poisoned");
        if !matches!(&*backend, Backend::Durable(_)) {
            return false;
        }
        // Under the write lock no commit hook can fire concurrently,
        // so the unconditional reset is safe (the new store may sit at
        // a *lower* seq than a diverged local history did).
        self.commit_signal.reset(store.status().update_seq);
        store.set_commit_hook(self.commit_signal.hook());
        store.set_telemetry_hook(store_telemetry_hook(&self.metrics));
        if let Some(hook) = &*self
            .retention_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
        {
            store.set_retention_hook(hook.clone());
        }
        *backend = Backend::Durable(store);
        true
    }

    /// The signal notified at every durable commit (what replication
    /// streamers block on).
    pub(crate) fn commit_signal(&self) -> &Arc<CommitSignal> {
        &self.commit_signal
    }

    /// Installs the WAL segment retention floor on the durable store —
    /// sealed segments a replication cursor still needs are kept until
    /// the cursor moves past them. The hook survives a bootstrap store
    /// replacement (it is re-installed by `replace_durable_store`).
    /// No-op on an ephemeral service.
    pub fn set_wal_retention(&self, hook: silkmoth_storage::RetentionHook) {
        let mut backend = self.backend.write().expect("engine lock poisoned");
        if let Backend::Durable(store) = &mut *backend {
            store.set_retention_hook(hook.clone());
        }
        drop(backend);
        *self
            .retention_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(hook);
    }

    /// Marks this service a follower of `primary` (updates answer 409
    /// until [`POST /promote`](Self::promote)).
    pub(crate) fn set_role_follower(&self, primary: String, shared: Arc<FollowerShared>) {
        *self.replication.lock().expect("replication lock poisoned") =
            ReplicationRole::Follower { primary, shared };
    }

    /// Attaches the live follower-connection gauge of a replication
    /// log listener, so `/stats` can report it.
    pub fn set_follower_gauge(&self, gauge: Arc<AtomicUsize>) {
        *self.follower_gauge.lock().expect("gauge lock poisoned") = Some(gauge);
    }

    /// Admits one update, or `None` when the in-flight bound is
    /// reached.
    fn admit_update(&self) -> Option<InflightGuard<'_>> {
        let Some(max) = self.max_inflight_updates else {
            return Some(InflightGuard(None));
        };
        let mut current = self.inflight_updates.load(Ordering::Relaxed);
        loop {
            if current >= max {
                return None;
            }
            match self.inflight_updates.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(InflightGuard(Some(&self.inflight_updates))),
                Err(observed) => current = observed,
            }
        }
    }

    /// Routes one request. Pure request → response, so it is directly
    /// testable without a socket. Wraps the private route dispatch
    /// with the observability layer: request id, in-flight gauge,
    /// per-route counter + latency histogram, and (when configured) the
    /// structured log line.
    pub fn handle(&self, req: &Request) -> Response {
        let id = self.request_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let path = req.path.split('?').next().unwrap_or("");
        let route = canonical_route(path);
        let mut info = RequestInfo::default();
        // Capture decision up front: requests that can't end up in the
        // ring (not sampled, slow-query capture unarmed) never build a
        // collector — the whole cost of tracing for them is the one
        // fetch-add inside should_sample.
        let sampled = self.tracer.should_sample();
        let sink = if sampled || self.slow_query_ms.is_some() {
            info.trace = Some(TraceCollector::begin(id, route));
            Some(trace::install_sink())
        } else {
            None
        };
        let start = Instant::now();
        self.metrics.inflight().add(1);
        let resp = self.dispatch(req, path, &mut info);
        self.metrics.inflight().sub(1);
        let elapsed = start.elapsed();
        self.metrics.observe_request(route, resp.status, elapsed);
        let slow = self
            .slow_query_ms
            .is_some_and(|limit| elapsed.as_secs_f64() * 1e3 >= limit as f64);
        if let Some(mut collector) = info.trace.take() {
            if sampled || slow {
                if let Some(sink) = &sink {
                    // Storage/group-commit spans emitted on this thread
                    // during dispatch hang off the root.
                    for span in sink.drain() {
                        collector.add_pending(trace::ROOT, span);
                    }
                }
                self.tracer.record(collector.finish(resp.status, slow));
            }
        }
        drop(sink);
        self.log_request(id, route, resp.status, elapsed, &info);
        resp.with_header("X-Request-Id", id.to_string())
    }

    fn dispatch(&self, req: &Request, path: &str, info: &mut RequestInfo) -> Response {
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/stats") => self.stats(),
            ("GET", "/metrics") => self.metrics_page(),
            ("GET", "/debug/traces") => self.debug_traces(req),
            ("POST", "/search") => self.search(&req.body, info),
            ("POST", "/search/batch") => self.search_batch(&req.body, info),
            ("POST", "/discover") => self.discover(&req.body, info),
            ("POST", "/sets") => self.append(&req.body),
            ("DELETE", "/sets") => self.remove(&req.body),
            ("POST", "/compact") => self.compact(),
            ("POST", "/snapshot") => self.snapshot(),
            ("POST", "/promote") => self.promote(),
            (
                _,
                "/healthz" | "/stats" | "/metrics" | "/debug/traces" | "/search" | "/search/batch"
                | "/discover" | "/sets" | "/compact" | "/snapshot" | "/promote",
            ) => error_response(405, "method not allowed for this route"),
            _ => error_response(404, "no such route"),
        }
    }

    /// One structured line per request (when configured), plus the
    /// slow-query line carrying the full specs of a search that blew
    /// the `--slow-query-ms` budget.
    fn log_request(
        &self,
        id: u64,
        route: &str,
        status: u16,
        elapsed: Duration,
        info: &RequestInfo,
    ) {
        let ms = elapsed.as_secs_f64() * 1e3;
        if let Some(format) = self.log_format {
            // `trace` repeats the request id on purpose: it is the
            // correlation key shared with the `X-Request-Id` response
            // header and the trace ring, so grepping a client-reported
            // id hits logs and `/debug/traces?id=` alike.
            let line = match format {
                LogFormat::Text => format!(
                    "request id={id} trace={id} route={route} status={status} \
                     duration_ms={ms:.3} shards={} timed_out={}",
                    info.shards.map_or_else(|| "-".into(), |n| n.to_string()),
                    info.timed_out,
                ),
                LogFormat::Json => obj(vec![
                    ("event", Json::Str("request".into())),
                    ("id", Json::Num(id as f64)),
                    ("trace", Json::Num(id as f64)),
                    ("route", Json::Str(route.into())),
                    ("status", Json::Num(f64::from(status))),
                    ("duration_ms", Json::Num(ms)),
                    (
                        "shards",
                        info.shards.map_or(Json::Null, |n| Json::Num(n as f64)),
                    ),
                    ("timed_out", Json::Bool(info.timed_out)),
                ])
                .to_string(),
            };
            (self.log_sink.0)(&line);
        }
        let slow = self.slow_query_ms.is_some_and(|limit| ms >= limit as f64);
        if slow {
            for spec in &info.specs {
                let line = match self.log_format.unwrap_or(LogFormat::Text) {
                    LogFormat::Text => {
                        format!("slow_query id={id} route={route} duration_ms={ms:.3} spec={spec}")
                    }
                    LogFormat::Json => obj(vec![
                        ("event", Json::Str("slow_query".into())),
                        ("id", Json::Num(id as f64)),
                        ("route", Json::Str(route.into())),
                        ("duration_ms", Json::Num(ms)),
                        ("spec", spec.clone()),
                    ])
                    .to_string(),
                };
                (self.log_sink.0)(&line);
            }
        }
    }

    /// `GET /metrics`: refresh the poll-style families (replication
    /// status, follower count), then render the page.
    fn metrics_page(&self) -> Response {
        {
            let role = self
                .replication
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let ReplicationRole::Follower { shared, .. } = &*role {
                self.metrics.record_follower(&shared.status());
            }
        }
        if let Some(gauge) = self
            .follower_gauge
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            self.metrics
                .set_followers(gauge.load(Ordering::Relaxed) as i64);
        }
        self.metrics
            .set_uptime_secs(self.started.elapsed().as_secs());
        Response::text(200, silkmoth_telemetry::CONTENT_TYPE, self.metrics.render())
    }

    /// `GET /debug/traces`: the retained trace ring as JSON, oldest
    /// first, optionally filtered with `?route=/search`, `?min_ms=N`
    /// (whole-request duration floor), and `?id=N` (one request id).
    fn debug_traces(&self, req: &Request) -> Response {
        let query = req.path.split_once('?').map_or("", |(_, q)| q);
        let mut route_filter: Option<&str> = None;
        let mut min_us = 0u64;
        let mut id_filter: Option<u64> = None;
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match key {
                "route" => route_filter = Some(value),
                "min_ms" => match value.parse::<u64>() {
                    Ok(ms) => min_us = ms.saturating_mul(1000),
                    Err(_) => return error_response(400, "min_ms must be whole milliseconds"),
                },
                "id" => match value.parse::<u64>() {
                    Ok(id) => id_filter = Some(id),
                    Err(_) => return error_response(400, "id must be a request id"),
                },
                other => {
                    return error_response(
                        400,
                        &format!("unknown query parameter '{other}' (route, min_ms, id)"),
                    )
                }
            }
        }
        let traces: Vec<_> = self
            .tracer
            .snapshot()
            .into_iter()
            .filter(|t| {
                route_filter.is_none_or(|r| t.route == r)
                    && t.dur_us >= min_us
                    && id_filter.is_none_or(|id| t.id == id)
            })
            .collect();
        Response::json(200, trace::render_traces(&traces))
    }

    fn healthz(&self) -> Response {
        // Role first, backend second — promote locks in that order too
        // (never hold the backend lock while taking the role lock).
        let (role, follower_state) = {
            let role = self.replication.lock().expect("replication lock poisoned");
            match &*role {
                ReplicationRole::Primary => ("primary", None),
                ReplicationRole::Follower { shared, .. } => {
                    ("follower", Some(shared.status().state.as_str()))
                }
            }
        };
        let backend = self.backend.read().expect("engine lock poisoned");
        let engine = backend.engine();
        // Followers report the replicated store's seq, primaries their
        // own; ephemeral services (no WAL) report the request-level
        // update count instead so the field always moves on writes.
        let update_seq = match &*backend {
            Backend::Durable(store) => store.status().update_seq,
            Backend::Ephemeral(_) => self.updates.load(Ordering::Relaxed),
        };
        let mut fields = vec![
            ("status", Json::Str("ok".into())),
            ("version", Json::Str(env!("CARGO_PKG_VERSION").into())),
            (
                "uptime_secs",
                Json::Num(self.started.elapsed().as_secs() as f64),
            ),
            (
                "durable",
                Json::Bool(matches!(*backend, Backend::Durable(_))),
            ),
            ("role", Json::Str(role.into())),
            ("update_seq", Json::Num(update_seq as f64)),
            ("shards", Json::Num(engine.shard_count() as f64)),
            ("sets", Json::Num(engine.len() as f64)),
        ];
        if let Some(state) = follower_state {
            // Always 200: a follower retrying an unreachable primary is
            // alive and serving reads; the state says what it's doing.
            fields.push(("replication_state", Json::Str(state.into())));
        }
        Response::json(200, obj(fields).to_string())
    }

    /// The `replication` section of `/stats`: role, lag, and the log
    /// listener's live follower count when one is attached.
    fn replication_json(&self) -> Json {
        let followers = self
            .follower_gauge
            .lock()
            .expect("gauge lock poisoned")
            .as_ref()
            .map(|g| g.load(Ordering::Relaxed));
        let role = self.replication.lock().expect("replication lock poisoned");
        let mut fields = match &*role {
            ReplicationRole::Primary => vec![("role".to_owned(), Json::Str("primary".into()))],
            ReplicationRole::Follower { primary, shared } => {
                let st = shared.status();
                vec![
                    ("role".to_owned(), Json::Str("follower".into())),
                    ("primary".to_owned(), Json::Str(primary.clone())),
                    ("state".to_owned(), Json::Str(st.state.as_str().into())),
                    ("applied_seq".to_owned(), Json::Num(st.applied_seq as f64)),
                    ("primary_seq".to_owned(), Json::Num(st.primary_seq as f64)),
                    ("lag".to_owned(), Json::Num(st.lag() as f64)),
                    ("connects".to_owned(), Json::Num(st.connects as f64)),
                    ("bootstraps".to_owned(), Json::Num(st.bootstraps as f64)),
                    (
                        "last_error".to_owned(),
                        st.last_error.map_or(Json::Null, Json::Str),
                    ),
                ]
            }
        };
        if let Some(n) = followers {
            fields.push(("followers".to_owned(), Json::Num(n as f64)));
        }
        Json::Obj(fields)
    }

    fn stats(&self) -> Response {
        let replication = self.replication_json();
        // Recover from poison instead of panicking: PassStats is plain
        // counters, so the worst a poisoned merge leaves behind is one
        // request's missing increments — not worth failing /stats over.
        let per_shard: Vec<PassStats> = self
            .shard_stats
            .iter()
            .map(|m| *m.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let (sizes, total, slots, storage, auto_compactions) = {
            let backend = self.backend.read().expect("engine lock poisoned");
            let engine = backend.engine();
            let (storage, auto) = match &*backend {
                Backend::Ephemeral(_) => (None, self.auto_compactions.load(Ordering::Relaxed)),
                Backend::Durable(store) => {
                    let status = store.status();
                    let storage = obj(vec![
                        ("snapshot_seq", Json::Num(status.snapshot_seq as f64)),
                        ("wal_records", Json::Num(status.wal_records as f64)),
                        ("wal_segments", Json::Num(f64::from(status.wal_segments))),
                        ("update_seq", Json::Num(status.update_seq as f64)),
                        ("epoch", Json::Num(status.epoch as f64)),
                        ("last_fsync_ok", Json::Bool(status.last_fsync_ok)),
                        ("auto_snapshots", Json::Num(status.auto_snapshots as f64)),
                        (
                            "auto_compactions",
                            Json::Num(status.auto_compactions as f64),
                        ),
                    ]);
                    (Some(storage), status.auto_compactions)
                }
            };
            (
                engine.shard_sizes(),
                engine.len(),
                engine.slot_count(),
                storage,
                auto,
            )
        };
        let shards_json: Vec<Json> = per_shard
            .iter()
            .zip(&sizes)
            .map(|(stats, &sets)| {
                let mut o = stats_json_pairs(stats);
                o.insert(0, ("sets".to_owned(), Json::Num(sets as f64)));
                Json::Obj(o)
            })
            .collect();
        let mut fields = vec![
            (
                "requests",
                obj(vec![
                    (
                        "search",
                        Json::Num(self.searches.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "discover",
                        Json::Num(self.discoveries.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "update",
                        Json::Num(self.updates.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            ("sets", Json::Num(total as f64)),
            ("slots", Json::Num(slots as f64)),
            ("auto_compactions", Json::Num(auto_compactions as f64)),
        ];
        if let Some(storage) = storage {
            fields.push(("storage", storage));
        }
        fields.push(("replication", replication));
        fields.push(("shards", Json::Arr(shards_json)));
        fields.push((
            "merged",
            Json::Obj(stats_json_pairs(&merge_stats(&per_shard))),
        ));
        Response::json(200, obj(fields).to_string())
    }

    /// The whole-request deadline for a search arriving now, when
    /// `--search-timeout-ms` is configured.
    fn request_deadline(&self, start: Instant) -> Option<Instant> {
        self.search_timeout.map(|t| start + t)
    }

    /// True when the whole-request budget is exhausted: the response
    /// must be the `504`, not partial results.
    fn request_expired(&self, start: Instant) -> bool {
        self.search_timeout.is_some_and(|t| start.elapsed() >= t)
    }

    fn search(&self, body: &[u8], info: &mut RequestInfo) -> Response {
        let doc = match parse_body(body) {
            Ok(doc) => doc,
            Err(resp) => return resp,
        };
        let spec = match spec_from_json(&doc) {
            Ok(spec) => spec,
            Err(msg) => return error_response(400, &msg),
        };
        if self.slow_query_ms.is_some() {
            info.specs.push(spec_to_json(&spec));
        }
        let start = Instant::now();
        let trace_start = info.trace.as_ref().map(TraceCollector::now_us);
        let out = self
            .engine()
            .execute_until(&spec, self.request_deadline(start));
        let executed = start.elapsed();
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.accumulate(&out.shard_stats);
        self.metrics.observe_phases(&out.merged_timing());
        self.metrics.observe_funnel(&out.merged_stats());
        if let (Some(trace), Some(at)) = (info.trace.as_mut(), trace_start) {
            record_query_spans(trace, &out, at, executed, self.collection.as_deref());
        }
        info.shards = Some(out.shard_timings.len());
        info.timed_out = out.timed_out;
        if self.request_expired(start) {
            return search_timeout_response();
        }
        Response::json(200, query_output_json(&spec, &out).to_string())
    }

    fn search_batch(&self, body: &[u8], info: &mut RequestInfo) -> Response {
        let doc = match parse_body(body) {
            Ok(doc) => doc,
            Err(resp) => return resp,
        };
        let queries = match doc.get("queries").and_then(Json::as_array) {
            Some(q) if !q.is_empty() => q,
            _ => {
                return error_response(
                    400,
                    "'queries' must be a non-empty array of query spec objects",
                )
            }
        };
        let mut specs = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            match spec_from_json(q) {
                Ok(spec) => specs.push(spec),
                Err(msg) => return error_response(400, &format!("queries[{i}]: {msg}")),
            }
        }
        if self.slow_query_ms.is_some() {
            info.specs.extend(specs.iter().map(spec_to_json));
        }
        let start = Instant::now();
        let trace_start = info.trace.as_ref().map(TraceCollector::now_us);
        let outs = self
            .engine()
            .execute_batch_until(&specs, self.request_deadline(start));
        self.searches
            .fetch_add(specs.len() as u64, Ordering::Relaxed);
        for out in &outs {
            self.accumulate(&out.shard_stats);
            self.metrics.observe_phases(&out.merged_timing());
            self.metrics.observe_funnel(&out.merged_stats());
            info.timed_out |= out.timed_out;
            // The batch executes as one engine call, so per-query wall
            // windows are not observable here; each query span borrows
            // the batch's start and its own worst-shard phase sum.
            if let (Some(trace), Some(at)) = (info.trace.as_mut(), trace_start) {
                record_query_spans(
                    trace,
                    out,
                    at,
                    out.merged_timing().total(),
                    self.collection.as_deref(),
                );
            }
        }
        info.shards = outs.first().map(|out| out.shard_timings.len());
        if self.request_expired(start) {
            return search_timeout_response();
        }
        let outputs: Vec<Json> = specs
            .iter()
            .zip(&outs)
            .map(|(spec, out)| query_output_json(spec, out))
            .collect();
        Response::json(200, obj(vec![("outputs", Json::Arr(outputs))]).to_string())
    }

    fn discover(&self, body: &[u8], info: &mut RequestInfo) -> Response {
        let doc = match parse_body(body) {
            Ok(doc) => doc,
            Err(resp) => return resp,
        };
        let refs_json = match doc.get("references").and_then(Json::as_array) {
            Some(r) if !r.is_empty() => r,
            _ => {
                return error_response(
                    400,
                    "'references' must be a non-empty array of element-string arrays",
                )
            }
        };
        let mut references: Vec<Vec<String>> = Vec::with_capacity(refs_json.len());
        for (i, r) in refs_json.iter().enumerate() {
            match string_array(Some(r), "references") {
                Ok(set) => references.push(set),
                Err(_) => {
                    return error_response(
                        400,
                        &format!("references[{i}] must be a non-empty array of strings"),
                    )
                }
            }
        }
        let start = Instant::now();
        let trace_start = info.trace.as_ref().map(TraceCollector::now_us);
        let out = self.engine().discover(&references);
        let executed = start.elapsed();
        self.discoveries.fetch_add(1, Ordering::Relaxed);
        self.accumulate(&out.shard_stats);
        self.metrics.observe_funnel(&out.merged_stats());
        if let (Some(trace), Some(at)) = (info.trace.as_mut(), trace_start) {
            let stats = out.merged_stats();
            let span = trace.add_span(trace::ROOT, "discover", at, executed);
            funnel_attrs(trace, span, &stats);
        }
        info.shards = Some(out.shard_stats.len());
        let pairs: Vec<Json> = out
            .pairs
            .iter()
            .map(|p| {
                obj(vec![
                    ("r", Json::Num(f64::from(p.r))),
                    ("s", Json::Num(f64::from(p.s))),
                    ("score", Json::Num(p.score)),
                ])
            })
            .collect();
        Response::json(
            200,
            obj(vec![
                ("pairs", Json::Arr(pairs)),
                ("stats", Json::Obj(stats_json_pairs(&out.merged_stats()))),
            ])
            .to_string(),
        )
    }

    /// Applies one update through the backend — group-committed to the
    /// WAL first in durable mode, with the ephemeral compaction policy
    /// applied afterwards in ephemeral mode. Returns the outcome, the
    /// post-update live set count, and the maintenance-degraded flag,
    /// or the ready-to-send error response.
    fn apply_update(&self, update: Update) -> Result<AppliedUpdate, Response> {
        if let Some(resp) = self.reject_if_follower() {
            return Err(resp);
        }
        let Some(_admitted) = self.admit_update() else {
            return Err(overloaded_response());
        };
        let durable = matches!(
            &*self.backend.read().expect("engine lock poisoned"),
            Backend::Durable(_)
        );
        let applied = if durable {
            match self.group_commit(update) {
                Ok(receipt) => {
                    if let Some(why) = &receipt.maintenance_error {
                        // The update is durable and applied; only the
                        // policy's post-commit maintenance failed.
                        (self.log_sink.0)(&format!(
                            "maintenance_degraded update_committed=true error={why}"
                        ));
                    }
                    AppliedUpdate {
                        outcome: receipt.outcome,
                        total: receipt.total,
                        degraded: receipt.maintenance_error.is_some(),
                    }
                }
                Err(GroupCommitError::Update(e)) => return Err(update_error_response(e)),
                Err(GroupCommitError::Storage(e)) => return Err(storage_error_response(&e)),
            }
        } else {
            let mut backend = self.backend.write().expect("engine lock poisoned");
            let Backend::Ephemeral(engine) = &mut *backend else {
                unreachable!("a service never changes from ephemeral to durable");
            };
            let outcome = engine.apply(update).map_err(update_error_response)?;
            if self
                .policy
                .should_compact(engine.len(), engine.slot_count())
            {
                engine.apply(Update::Compact).expect("compact cannot fail");
                self.auto_compactions.fetch_add(1, Ordering::Relaxed);
            }
            AppliedUpdate {
                outcome,
                total: engine.len(),
                degraded: false,
            }
        };
        self.updates.fetch_add(1, Ordering::Relaxed);
        Ok(applied)
    }

    /// Commits one update through the group-commit queue, blocking
    /// until a leader (possibly this thread) has made it durable and
    /// applied it.
    fn group_commit(&self, update: Update) -> Result<GroupReceipt, GroupCommitError> {
        let enqueued = Instant::now();
        let slot = Arc::new(UpdateSlot::default());
        self.commit_queue
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(QueuedUpdate {
                update,
                slot: Arc::clone(&slot),
            });
        let mut leading = self
            .commit_queue
            .leading
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                // A previous leader batched this update in: the whole
                // enqueue→completion window was spent waiting on it.
                trace::emit("group_commit_wait", enqueued.elapsed(), Vec::new());
                return result;
            }
            if !*leading {
                *leading = true;
                drop(leading);
                let guard = LeaderGuard {
                    queue: &self.commit_queue,
                };
                let led = Instant::now();
                self.lead_commit();
                trace::emit("group_commit_lead", led.elapsed(), Vec::new());
                drop(guard); // resign + wake the batch's waiters
                return slot
                    .take()
                    .expect("the leader completes every drained slot");
            }
            leading = self
                .commit_queue
                .wakeup
                .wait(leading)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Drains the pending queue once (as the current leader) and
    /// commits it as one or more batches. [`Update::Compact`] is a
    /// batch barrier: the store requires it committed alone, and the
    /// updates behind it must be validated against the post-compaction
    /// engine (compaction drops tombstoned gids for good).
    fn lead_commit(&self) {
        // Classic group-commit window: give contending writers one
        // scheduler beat to enqueue before the drain. When nothing
        // else is runnable this is nearly free; when writers are
        // contending it grows the batch, and every update added here
        // rides an fsync that was being paid anyway.
        std::thread::yield_now();
        let drained = std::mem::take(
            &mut *self
                .commit_queue
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        let mut group: Vec<QueuedUpdate> = Vec::with_capacity(drained.len());
        for queued in drained {
            if matches!(queued.update, Update::Compact) {
                if !group.is_empty() {
                    self.commit_group(std::mem::take(&mut group));
                }
                self.commit_group(vec![queued]);
            } else {
                group.push(queued);
            }
        }
        if !group.is_empty() {
            self.commit_group(group);
        }
    }

    /// Commits one batch. Phase 1 under the **shared** engine lock:
    /// validate each update against the batch's virtual engine state
    /// and make the accepted ones durable with one WAL write + one
    /// fsync — searches keep executing through the fsync. Phase 2
    /// under the write lock: apply the committed records to the engine
    /// in WAL order, then run policy maintenance. The leader lock
    /// (held by the caller) keeps rotations and other batches from
    /// interleaving between the phases.
    fn commit_group(&self, group: Vec<QueuedUpdate>) {
        let fail_all = |slots: &[Arc<UpdateSlot>], e: StorageError| {
            let shared = Arc::new(e);
            for slot in slots {
                slot.complete(Err(GroupCommitError::Storage(Arc::clone(&shared))));
            }
        };
        // Phase 1: validate + durable commit, under the read lock.
        let (batch, slots) = {
            let backend = self.backend.read().expect("engine lock poisoned");
            let Backend::Durable(store) = &*backend else {
                let slots: Vec<_> = group.into_iter().map(|q| q.slot).collect();
                fail_all(
                    &slots,
                    StorageError::BadState("group commit on an ephemeral service".into()),
                );
                return;
            };
            let engine = store.engine();
            // Validate each update against the state it will apply to:
            // appends advance a virtual next-gid, so a Remove may name
            // a gid appended earlier in the same batch; engine removes
            // are idempotent per gid, so an earlier Remove never
            // invalidates a later one. A rejected update is never
            // logged and does not fail its batch.
            let engine_next = engine.next_gid();
            let mut virtual_next = engine_next;
            let mut updates = Vec::with_capacity(group.len());
            let mut slots = Vec::with_capacity(group.len());
            for queued in group {
                let valid = match &queued.update {
                    Update::Append(sets) => {
                        virtual_next += sets.len() as SetIdx;
                        Ok(())
                    }
                    Update::Remove(gids) => gids
                        .iter()
                        .find(|&&gid| {
                            gid >= virtual_next || (gid < engine_next && !engine.has_gid(gid))
                        })
                        .map_or(Ok(()), |&bad| Err(UpdateError::NoSuchSet(bad))),
                    Update::Compact => Ok(()),
                };
                match valid {
                    Ok(()) => {
                        updates.push(queued.update);
                        slots.push(queued.slot);
                    }
                    Err(e) => queued.slot.complete(Err(GroupCommitError::Update(e))),
                }
            }
            if updates.is_empty() {
                return;
            }
            match store.commit_batch(updates) {
                Ok(batch) => (batch, slots),
                Err(e) => {
                    fail_all(&slots, e);
                    return;
                }
            }
        };
        // Phase 2: apply + maintain, under the write lock.
        let mut backend = self.backend.write().expect("engine lock poisoned");
        let applied = {
            let Backend::Durable(store) = &mut *backend else {
                unreachable!("backend flavor cannot change while the leader lock is held");
            };
            match store.apply_committed(batch) {
                Ok(outcomes) => {
                    let report = store.maintain();
                    Ok((outcomes, report, store.engine().len()))
                }
                Err(e) => Err(e),
            }
        };
        drop(backend);
        match applied {
            Ok((outcomes, report, total)) => {
                for (slot, outcome) in slots.iter().zip(outcomes) {
                    slot.complete(Ok(GroupReceipt {
                        outcome,
                        total,
                        maintenance_error: report.error.clone(),
                    }));
                }
            }
            Err(e) => fail_all(&slots, e),
        }
    }

    fn append(&self, body: &[u8]) -> Response {
        let doc = match parse_body(body) {
            Ok(doc) => doc,
            Err(resp) => return resp,
        };
        let sets_json = match doc.get("sets").and_then(Json::as_array) {
            Some(s) if !s.is_empty() => s,
            _ => {
                return error_response(
                    400,
                    "'sets' must be a non-empty array of element-string arrays",
                )
            }
        };
        let mut sets: Vec<Vec<String>> = Vec::with_capacity(sets_json.len());
        for (i, s) in sets_json.iter().enumerate() {
            match string_array(Some(s), "sets") {
                Ok(set) => sets.push(set),
                Err(_) => {
                    return error_response(
                        400,
                        &format!("sets[{i}] must be a non-empty array of strings"),
                    )
                }
            }
        }
        if let Some(resp) = self.reject_over_quota(&sets) {
            return resp;
        }
        let done = match self.apply_update(Update::Append(sets)) {
            Ok(done) => done,
            Err(resp) => return resp,
        };
        let appended: Vec<Json> = done
            .outcome
            .appended
            .iter()
            .map(|&gid| Json::Num(f64::from(gid)))
            .collect();
        let mut fields = vec![
            ("appended", Json::Arr(appended)),
            ("sets", Json::Num(done.total as f64)),
        ];
        if done.degraded {
            fields.push(("degraded", Json::Bool(true)));
        }
        Response::json(200, obj(fields).to_string())
    }

    fn remove(&self, body: &[u8]) -> Response {
        let doc = match parse_body(body) {
            Ok(doc) => doc,
            Err(resp) => return resp,
        };
        let ids_json = match doc.get("ids").and_then(Json::as_array) {
            Some(ids) if !ids.is_empty() => ids,
            _ => return error_response(400, "'ids' must be a non-empty array of set ids"),
        };
        let mut ids = Vec::with_capacity(ids_json.len());
        for v in ids_json {
            match v.as_usize() {
                Some(id) if id <= u32::MAX as usize => ids.push(id as u32),
                _ => return error_response(400, "'ids' must contain non-negative set ids"),
            }
        }
        let done = match self.apply_update(Update::Remove(ids)) {
            Ok(done) => done,
            Err(resp) => return resp,
        };
        let mut fields = vec![
            ("removed", Json::Num(done.outcome.removed as f64)),
            ("sets", Json::Num(done.total as f64)),
        ];
        if done.degraded {
            fields.push(("degraded", Json::Bool(true)));
        }
        Response::json(200, obj(fields).to_string())
    }

    fn compact(&self) -> Response {
        let done = match self.apply_update(Update::Compact) {
            Ok(done) => done,
            Err(resp) => return resp,
        };
        let mut fields = vec![("sets", Json::Num(done.total as f64))];
        if done.degraded {
            fields.push(("degraded", Json::Bool(true)));
        }
        Response::json(200, obj(fields).to_string())
    }

    fn snapshot(&self) -> Response {
        let Some(_admitted) = self.admit_update() else {
            return overloaded_response();
        };
        // Leadership first: a rotation must never interleave between
        // a group's WAL commit and its engine apply — a snapshot cut
        // there would record a seq the engine hasn't reached.
        let _leader = self.commit_queue.lead();
        let mut backend = self.backend.write().expect("engine lock poisoned");
        match &mut *backend {
            Backend::Ephemeral(_) => error_response(
                409,
                "server is not durable; restart with --data-dir to enable snapshots",
            ),
            Backend::Durable(store) => match store.snapshot() {
                Ok(seq) => Response::json(
                    200,
                    obj(vec![("snapshot_seq", Json::Num(seq as f64))]).to_string(),
                ),
                Err(e) => storage_error_response(&e),
            },
        }
    }

    /// The catalog quota gate for `POST /sets`: a named `403` when the
    /// append would push the collection past its `max_sets` or
    /// `max_bytes` bound, `None` otherwise. Quotas are admission
    /// checks, not invariants — two concurrent appends may both pass
    /// and land the collection slightly over the line; the *next*
    /// append is then rejected, which is the boundedness a tenant quota
    /// is for.
    fn reject_over_quota(&self, sets: &[Vec<String>]) -> Option<Response> {
        if self.max_sets.is_none() && self.max_bytes.is_none() {
            return None;
        }
        let engine = self.engine();
        if let Some(max) = self.max_sets {
            let after = engine.len() + sets.len();
            if after > max {
                return Some(error_response(
                    403,
                    &format!(
                        "collection set quota exceeded: {after} live sets would pass the \
                         max_sets={max} bound"
                    ),
                ));
            }
        }
        if let Some(max) = self.max_bytes {
            let incoming: u64 = sets
                .iter()
                .flat_map(|s| s.iter())
                .map(|e| e.len() as u64)
                .sum();
            let after = engine.text_bytes() + incoming;
            if after > max {
                return Some(error_response(
                    403,
                    &format!(
                        "collection byte quota exceeded: {after} bytes of element text \
                         would pass the max_bytes={max} bound"
                    ),
                ));
            }
        }
        None
    }

    /// This collection's entry in the catalog's per-collection `/stats`
    /// and `/healthz` sections: live sets, slot count, shard count, the
    /// update sequence, and (durable backends) the storage status.
    /// Recovers from lock poison — a summary section must never take
    /// down the whole stats page over one tenant's panicked writer.
    pub(crate) fn collection_summary_json(&self) -> Json {
        let backend = self.backend.read().unwrap_or_else(PoisonError::into_inner);
        let engine = backend.engine();
        let update_seq = match &*backend {
            Backend::Durable(store) => store.status().update_seq,
            Backend::Ephemeral(_) => self.updates.load(Ordering::Relaxed),
        };
        let mut fields = vec![
            ("sets".to_owned(), Json::Num(engine.len() as f64)),
            ("slots".to_owned(), Json::Num(engine.slot_count() as f64)),
            ("shards".to_owned(), Json::Num(engine.shard_count() as f64)),
            ("update_seq".to_owned(), Json::Num(update_seq as f64)),
            (
                "durable".to_owned(),
                Json::Bool(matches!(*backend, Backend::Durable(_))),
            ),
        ];
        if let Backend::Durable(store) = &*backend {
            let status = store.status();
            fields.push((
                "storage".to_owned(),
                obj(vec![
                    ("snapshot_seq", Json::Num(status.snapshot_seq as f64)),
                    ("wal_records", Json::Num(status.wal_records as f64)),
                    ("wal_segments", Json::Num(f64::from(status.wal_segments))),
                    ("last_fsync_ok", Json::Bool(status.last_fsync_ok)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// The follower read-only rejection for external update routes
    /// (`None` in the primary role). Replicated records bypass this by
    /// landing through [`with_durable_store`](Self::with_durable_store).
    pub(crate) fn reject_if_follower(&self) -> Option<Response> {
        let role = self.replication.lock().expect("replication lock poisoned");
        match &*role {
            ReplicationRole::Primary => None,
            ReplicationRole::Follower { primary, .. } => Some(error_response(
                409,
                &format!(
                    "read-only follower; send writes to the primary replicating from {primary}"
                ),
            )),
        }
    }

    /// `POST /promote`: stop tailing, durably bump the store's
    /// failover epoch, and start accepting writes. 409 when already
    /// primary. The epoch bump is what prevents a stale follower of
    /// the *old* primary from silently resuming a diverged cursor
    /// against this server.
    fn promote(&self) -> Response {
        let mut role = self.replication.lock().expect("replication lock poisoned");
        let shared = match &*role {
            ReplicationRole::Primary => return error_response(409, "already primary"),
            ReplicationRole::Follower { shared, .. } => Arc::clone(shared),
        };
        shared.stop();
        if !shared.wait_exited(Duration::from_secs(10)) {
            return error_response(500, "follower loop did not stop in time; retry");
        }
        // Same order as group commit and /snapshot: leadership before
        // the write lock (the epoch bump rotates the WAL).
        let _leader = self.commit_queue.lead();
        let mut backend = self.backend.write().expect("engine lock poisoned");
        match &mut *backend {
            Backend::Durable(store) => match store.bump_epoch() {
                Ok(epoch) => {
                    let update_seq = store.status().update_seq;
                    drop(backend);
                    *role = ReplicationRole::Primary;
                    Response::json(
                        200,
                        obj(vec![
                            ("role", Json::Str("primary".into())),
                            ("epoch", Json::Num(epoch as f64)),
                            ("update_seq", Json::Num(update_seq as f64)),
                        ])
                        .to_string(),
                    )
                }
                Err(e) => storage_error_response(&e),
            },
            // Follower role implies a durable backend, but don't panic
            // on the impossible combination.
            Backend::Ephemeral(_) => {
                error_response(409, "service is not durable; nothing to promote")
            }
        }
    }

    fn accumulate(&self, per_shard: &[PassStats]) {
        for (mutex, stats) in self.shard_stats.iter().zip(per_shard) {
            mutex
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .merge(stats);
        }
    }
}

/// Binds `addr` and serves `engine` on `threads` HTTP workers; every
/// search request additionally scatters across the engine's shards on
/// scoped threads. Shut down gracefully with [`HttpServer::shutdown`]
/// or block with [`HttpServer::wait`].
pub fn serve<A: ToSocketAddrs>(
    engine: ShardedEngine,
    addr: A,
    threads: usize,
) -> io::Result<HttpServer> {
    serve_service(Arc::new(SearchService::new(engine)), addr, threads)
}

/// Binds `addr` and serves an already-configured service (durable
/// backend, backpressure bounds, policies) on `threads` HTTP workers.
pub fn serve_service<A: ToSocketAddrs>(
    service: Arc<SearchService>,
    addr: A,
    threads: usize,
) -> io::Result<HttpServer> {
    http::serve(addr, threads, move |req: &Request| service.handle(req))
}

pub(crate) fn parse_body(body: &[u8]) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| error_response(400, "request body is not UTF-8"))?;
    let doc = Json::parse(text).map_err(|e| error_response(400, &format!("request body: {e}")))?;
    if matches!(doc, Json::Obj(_)) {
        Ok(doc)
    } else {
        Err(error_response(400, "request body must be a JSON object"))
    }
}

fn string_array(v: Option<&Json>, field: &str) -> Result<Vec<String>, Response> {
    let items = v.and_then(Json::as_array).ok_or_else(|| {
        error_response(
            400,
            &format!("'{field}' must be a non-empty array of strings"),
        )
    })?;
    if items.is_empty() {
        return Err(error_response(
            400,
            &format!("'{field}' must be a non-empty array of strings"),
        ));
    }
    items
        .iter()
        .map(|e| e.as_str().map(str::to_owned))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| error_response(400, &format!("'{field}' must contain only strings")))
}

/// Renders one executed spec's output: `results`, the `timed_out`
/// flag, and — governed by the spec's `stats` / `explain` flags — the
/// merged pass counters and per-hit explanations.
fn query_output_json(spec: &QuerySpec, out: &ShardedQueryOutput) -> Json {
    let results: Vec<Json> = out
        .hits
        .iter()
        .map(|&(set, score)| {
            obj(vec![
                ("set", Json::Num(f64::from(set))),
                ("score", Json::Num(score)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("results", Json::Arr(results)),
        ("timed_out", Json::Bool(out.timed_out)),
    ];
    if spec.want_stats() {
        fields.push(("stats", Json::Obj(stats_json_pairs(&out.merged_stats()))));
    }
    if spec.want_explain() {
        let explain: Vec<Json> = out
            .explanations
            .iter()
            .map(|(set, expl)| explanation_json(*set, expl))
            .collect();
        fields.push(("explain", Json::Arr(explain)));
    }
    if spec.want_timing() {
        // Microsecond integers: per-phase worst shard (element-wise
        // max across shards — phases overlap in wall time, so summing
        // per-shard durations would overstate).
        let t = out.merged_timing();
        let us = |d: Duration| d.as_micros() as f64;
        // total is the sum of the three REPORTED integers, not a
        // separately truncated Duration sum — the invariant
        // total_us == stage_us + verify_us + explain_us must hold
        // exactly for whoever diffs the log against the page.
        fields.push((
            "timing",
            obj(vec![
                ("stage_us", Json::Num(us(t.stage))),
                ("verify_us", Json::Num(us(t.verify))),
                ("explain_us", Json::Num(us(t.explain))),
                (
                    "total_us",
                    Json::Num(us(t.stage) + us(t.verify) + us(t.explain)),
                ),
            ]),
        ));
    }
    obj(fields)
}

/// The whole-request expiry: the server-side `--search-timeout-ms`
/// budget ran out before the request finished.
fn search_timeout_response() -> Response {
    error_response(504, "search deadline exceeded (--search-timeout-ms)")
}

pub(crate) fn error_response(status: u16, msg: &str) -> Response {
    Response::json(
        status,
        obj(vec![("error", Json::Str(msg.into()))]).to_string(),
    )
}

/// The backpressure rejection: the client should retry shortly.
fn overloaded_response() -> Response {
    error_response(503, "too many updates in flight; retry shortly").with_header("Retry-After", "1")
}

fn update_error_response(e: UpdateError) -> Response {
    match e {
        UpdateError::NoSuchSet(_) => error_response(404, &e.to_string()),
    }
}

/// A storage failure means the update was NOT durably acknowledged.
fn storage_error_response(e: &StorageError) -> Response {
    error_response(500, &format!("storage: {e}"))
}

/// The one storage-layer hook, fanning each [`StoreEvent`] into the
/// metric cells *and* the calling thread's trace sink. The store keeps
/// exactly one hook, so both consumers must share it; the trace side is
/// a no-op on threads with no sink installed (unsampled requests,
/// background maintenance).
fn store_telemetry_hook(metrics: &ServiceMetrics) -> TelemetryHook {
    let cells = metrics.storage_hook();
    TelemetryHook::new(move |event| {
        cells.fire(event);
        match event {
            StoreEvent::CommitBatch {
                records,
                write,
                sync,
            } => {
                trace::emit(
                    "wal_write",
                    write,
                    vec![("records", AttrValue::U64(records))],
                );
                trace::emit("wal_fsync", sync, Vec::new());
            }
            StoreEvent::Snapshot | StoreEvent::AutoSnapshot => {
                trace::emit("snapshot", Duration::ZERO, Vec::new());
            }
            StoreEvent::AutoCompaction => trace::emit("compaction", Duration::ZERO, Vec::new()),
        }
    })
}

/// Attaches the paper's filter-funnel counters as span attributes —
/// the per-request twin of the `silkmoth_query_filter_survivors_total`
/// metric family.
fn funnel_attrs(trace: &mut TraceCollector, span: SpanId, stats: &PassStats) {
    trace.attr_u64(span, "candidates", stats.candidates as u64);
    trace.attr_u64(span, "after_check", stats.after_check as u64);
    trace.attr_u64(span, "after_nn", stats.after_nn as u64);
    trace.attr_u64(span, "verified", stats.verified as u64);
    trace.attr_u64(span, "results", stats.results as u64);
    trace.attr_u64(span, "sim_evals", stats.sim_evals);
    trace.attr_u64(span, "signature_cost", stats.signature_cost);
}

/// Places one executed query on the request's trace: a `query` span
/// carrying the merged filter-funnel attributes, a `shard` child per
/// shard, and `stage`/`verify`(/`explain`) grandchildren from that
/// shard's [`PhaseTiming`]. Phase starts are reconstructed
/// sequentially — stage → verify → explain is the engine's actual
/// execution order inside one shard.
fn record_query_spans(
    trace: &mut TraceCollector,
    out: &ShardedQueryOutput,
    start_us: u64,
    dur: Duration,
    collection: Option<&str>,
) {
    let stats = out.merged_stats();
    let query = trace.add_span(trace::ROOT, "query", start_us, dur);
    funnel_attrs(trace, query, &stats);
    if let Some(name) = collection {
        trace.attr(query, "collection", AttrValue::Str(name.to_owned()));
    }
    trace.attr(query, "timed_out", AttrValue::Bool(out.timed_out));
    for (id, (timing, stats)) in out.shard_timings.iter().zip(&out.shard_stats).enumerate() {
        let shard = trace.add_span(query, "shard", start_us, timing.total());
        trace.attr_u64(shard, "shard", id as u64);
        trace.attr_u64(shard, "candidates", stats.candidates as u64);
        trace.attr_u64(shard, "verified", stats.verified as u64);
        let verify_at = start_us + timing.stage.as_micros() as u64;
        trace.add_span(shard, "stage", start_us, timing.stage);
        trace.add_span(shard, "verify", verify_at, timing.verify);
        if !timing.explain.is_zero() {
            let explain_at = verify_at + timing.verify.as_micros() as u64;
            trace.add_span(shard, "explain", explain_at, timing.explain);
        }
    }
}

/// [`PassStats`] as ordered JSON object fields.
fn stats_json_pairs(stats: &PassStats) -> Vec<(String, Json)> {
    let num = |v: f64| Json::Num(v);
    vec![
        ("candidates".into(), num(stats.candidates as f64)),
        ("after_check".into(), num(stats.after_check as f64)),
        ("after_nn".into(), num(stats.after_nn as f64)),
        ("verified".into(), num(stats.verified as f64)),
        ("results".into(), num(stats.results as f64)),
        ("sim_evals".into(), num(stats.sim_evals as f64)),
        ("reduced_pairs".into(), num(stats.reduced_pairs as f64)),
        ("signature_cost".into(), num(stats.signature_cost as f64)),
        ("degenerate".into(), num(f64::from(stats.degenerate))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_core::{EngineConfig, RelatednessMetric};
    use silkmoth_storage::StoreConfig;
    use silkmoth_text::SimilarityFunction;

    fn corpus() -> Vec<Vec<String>> {
        (0..20)
            .map(|i| {
                (0..3)
                    .map(|j| format!("w{} w{} shared{}", (i * 3 + j) % 7, (i + j) % 5, i % 4))
                    .collect()
            })
            .collect()
    }

    fn engine_cfg() -> EngineConfig {
        EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Jaccard,
            0.5,
            0.0,
        )
    }

    fn service() -> SearchService {
        SearchService::new(ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap())
    }

    fn post(service: &SearchService, path: &str, body: &str) -> (u16, Json) {
        let req = Request::new("POST", path, body.as_bytes().to_vec());
        let resp = service.handle(&req);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, doc)
    }

    fn get(service: &SearchService, path: &str) -> (u16, Json) {
        let req = Request::new("GET", path, Vec::new());
        let resp = service.handle(&req);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, doc)
    }

    #[test]
    fn healthz_reports_shape() {
        let s = service();
        let (status, doc) = get(&s, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("durable"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("shards").and_then(Json::as_usize), Some(3));
        assert_eq!(doc.get("sets").and_then(Json::as_usize), Some(20));
        assert_eq!(
            doc.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(doc.get("uptime_secs").and_then(Json::as_usize).is_some());
        // Ephemeral services count request-level updates as their seq.
        assert_eq!(doc.get("update_seq").and_then(Json::as_usize), Some(0));
        post(&s, "/sets", r#"{"sets": [["seq marker"]]}"#);
        let (_, doc) = get(&s, "/healthz");
        assert_eq!(doc.get("update_seq").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn metrics_page_matches_golden_file() {
        // A fresh service's first scrape is fully deterministic: the
        // declared HTTP families are header-only (the scrape itself is
        // observed after rendering), the in-flight gauge reads 1 (this
        // request), and every histogram is empty. Pinning the whole
        // page pins family order, HELP text, bucket bounds, and the
        // exposition syntax at once. Regenerate with
        // `BLESS_GOLDEN_METRICS=1 cargo test -p silkmoth-server`.
        let s = service();
        let req = Request::new("GET", "/metrics", Vec::new());
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, silkmoth_telemetry::CONTENT_TYPE);
        let body = std::str::from_utf8(&resp.body).unwrap();
        let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/src/golden_metrics.txt");
        if std::env::var_os("BLESS_GOLDEN_METRICS").is_some() {
            std::fs::write(golden_path, body).unwrap();
        }
        assert_eq!(
            body,
            include_str!("golden_metrics.txt"),
            "exposition format drifted; re-bless with BLESS_GOLDEN_METRICS=1 if intended"
        );
        // The page must also satisfy the same parser + lint CI runs.
        let families = silkmoth_telemetry::expo::parse_text(body).expect("page parses");
        assert_eq!(
            silkmoth_telemetry::expo::lint(None, &families),
            Vec::<String>::new()
        );
    }

    #[test]
    fn metrics_track_requests_phases_and_lint_clean_across_scrapes() {
        let s = service();
        post(&s, "/search", r#"{"reference": ["w0 w1 shared0"]}"#);
        post(&s, "/nope", "");
        let first = {
            let resp = s.handle(&Request::new("GET", "/metrics", Vec::new()));
            String::from_utf8(resp.body).unwrap()
        };
        assert!(
            first.contains("silkmoth_http_requests_total{route=\"/search\",status=\"200\"} 1"),
            "{first}"
        );
        assert!(
            first.contains("silkmoth_http_requests_total{route=\"other\",status=\"404\"} 1"),
            "{first}"
        );
        assert!(
            first.contains("silkmoth_query_phase_duration_seconds_count{phase=\"stage\"} 1"),
            "{first}"
        );
        // A second scrape (after more traffic) must pass the
        // two-scrape lint: counters only move forward.
        post(&s, "/search", r#"{"reference": ["w2 w3 shared1"]}"#);
        let second = {
            let resp = s.handle(&Request::new("GET", "/metrics", Vec::new()));
            String::from_utf8(resp.body).unwrap()
        };
        let prev = silkmoth_telemetry::expo::parse_text(&first).unwrap();
        let cur = silkmoth_telemetry::expo::parse_text(&second).unwrap();
        assert_eq!(
            silkmoth_telemetry::expo::lint(Some(&prev), &cur),
            Vec::<String>::new()
        );
    }

    #[test]
    fn phase_timings_fit_inside_the_route_histogram() {
        // With one shard the three phases are disjoint slices of the
        // query's wall time, and the route histogram brackets the whole
        // request — so summed phase seconds can never exceed summed
        // /search seconds. (Multi-shard timings are per-phase maxima
        // across overlapping shards, where this inequality is not
        // guaranteed; hence the 1-shard service.)
        let s = SearchService::new(ShardedEngine::build(&corpus(), engine_cfg(), 1).unwrap());
        for _ in 0..5 {
            let (status, _) = post(&s, "/search", r#"{"reference": ["w0 w1 shared0"], "k": 5}"#);
            assert_eq!(status, 200);
        }
        let page = s.metrics().render();
        let families = silkmoth_telemetry::expo::parse_text(&page).unwrap();
        let sum_of = |family: &str, sample: &str| -> f64 {
            families
                .iter()
                .find(|f| f.name == family)
                .unwrap_or_else(|| panic!("{family} missing"))
                .samples
                .iter()
                .filter(|s| s.name == sample)
                .map(|s| s.value)
                .sum()
        };
        let phases = sum_of(
            "silkmoth_query_phase_duration_seconds",
            "silkmoth_query_phase_duration_seconds_sum",
        );
        let route = sum_of(
            "silkmoth_http_request_duration_seconds",
            "silkmoth_http_request_duration_seconds_sum",
        );
        assert!(phases > 0.0, "no phase time recorded:\n{page}");
        assert!(
            phases <= route,
            "phase seconds {phases} exceed route seconds {route}:\n{page}"
        );
    }

    #[test]
    fn request_logging_emits_one_line_per_request_and_slow_specs() {
        let lines = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&lines);
        let s = SearchService::new(ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap())
            .with_log_format(LogFormat::Json)
            .with_slow_query_ms(0) // everything is "slow": specs always log
            .with_log_sink(move |line| sink.lock().unwrap().push(line.to_owned()));
        post(&s, "/search", r#"{"reference": ["w0 w1 shared0"], "k": 2}"#);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2, "{lines:?}");
        let request = Json::parse(&lines[0]).expect("request line is JSON");
        assert_eq!(request.get("event").and_then(Json::as_str), Some("request"));
        assert_eq!(request.get("id").and_then(Json::as_usize), Some(1));
        assert_eq!(request.get("trace").and_then(Json::as_usize), Some(1));
        assert_eq!(request.get("route").and_then(Json::as_str), Some("/search"));
        assert_eq!(request.get("status").and_then(Json::as_usize), Some(200));
        assert_eq!(request.get("shards").and_then(Json::as_usize), Some(3));
        assert_eq!(request.get("timed_out"), Some(&Json::Bool(false)));
        assert!(request.get("duration_ms").and_then(Json::as_f64).is_some());
        let slow = Json::parse(&lines[1]).expect("slow-query line is JSON");
        assert_eq!(slow.get("event").and_then(Json::as_str), Some("slow_query"));
        let spec = slow.get("spec").expect("slow line carries the full spec");
        assert_eq!(spec.get("k").and_then(Json::as_usize), Some(2));
    }

    #[test]
    fn text_logging_renders_one_line_and_respects_the_slow_threshold() {
        let lines = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&lines);
        let s = SearchService::new(ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap())
            .with_log_format(LogFormat::Text)
            .with_slow_query_ms(60_000) // nothing in this test is slow
            .with_log_sink(move |line| sink.lock().unwrap().push(line.to_owned()));
        post(&s, "/search", r#"{"reference": ["w0 w1 shared0"]}"#);
        get(&s, "/healthz");
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].starts_with("request id=1 trace=1 route=/search status=200 duration_ms="),
            "{}",
            lines[0]
        );
        assert!(
            lines[0].ends_with("shards=3 timed_out=false"),
            "{}",
            lines[0]
        );
        // Routes without a fan-out log a placeholder, not a fake count.
        assert!(lines[1].contains("route=/healthz"), "{}", lines[1]);
        assert!(lines[1].contains("shards=-"), "{}", lines[1]);
    }

    #[test]
    fn timing_section_appears_only_when_asked() {
        let s = service();
        let (status, doc) = post(&s, "/search", r#"{"reference": ["w0 w1 shared0"]}"#);
        assert_eq!(status, 200);
        assert!(doc.get("timing").is_none());
        let (status, doc) = post(
            &s,
            "/search",
            r#"{"reference": ["w0 w1 shared0"], "timing": true}"#,
        );
        assert_eq!(status, 200, "{doc}");
        let timing = doc.get("timing").expect("timing section");
        let total = timing.get("total_us").and_then(Json::as_usize).unwrap();
        let parts: usize = ["stage_us", "verify_us", "explain_us"]
            .iter()
            .map(|f| timing.get(f).and_then(Json::as_usize).unwrap())
            .sum();
        assert_eq!(total, parts);
    }

    #[test]
    fn search_roundtrip_and_stats_accumulate() {
        let s = service();
        let (status, doc) = post(
            &s,
            "/search",
            r#"{"reference": ["w0 w1 shared0", "w3 w4 shared0"], "k": 5, "floor": 0.2}"#,
        );
        assert_eq!(status, 200, "{doc}");
        let results = doc.get("results").and_then(Json::as_array).unwrap();
        assert!(!results.is_empty());
        // Scores are sorted descending under k.
        let scores: Vec<f64> = results
            .iter()
            .map(|r| r.get("score").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        // /stats saw the pass.
        let (_, stats) = get(&s, "/stats");
        assert_eq!(
            stats
                .get("requests")
                .and_then(|r| r.get("search"))
                .and_then(Json::as_usize),
            Some(1)
        );
        let merged = stats.get("merged").unwrap();
        assert!(merged.get("candidates").and_then(Json::as_usize).unwrap() > 0);
        assert_eq!(
            stats.get("shards").and_then(Json::as_array).map(<[_]>::len),
            Some(3)
        );
        // Ephemeral services report no storage section.
        assert!(stats.get("storage").is_none());
        assert_eq!(stats.get("slots").and_then(Json::as_usize), Some(20));
    }

    #[test]
    fn discover_roundtrip() {
        let s = service();
        let (status, doc) = post(
            &s,
            "/discover",
            r#"{"references": [["w0 w1 shared0", "w3 w4 shared0"], ["nothing matches this"]]}"#,
        );
        assert_eq!(status, 200, "{doc}");
        let pairs = doc.get("pairs").and_then(Json::as_array).unwrap();
        assert!(pairs
            .iter()
            .all(|p| p.get("r").is_some() && p.get("s").is_some() && p.get("score").is_some()));
    }

    #[test]
    fn bad_requests_get_400() {
        let s = service();
        for (path, body) in [
            ("/search", "not json"),
            ("/search", "[1,2,3]"),
            ("/search", r#"{"reference": []}"#),
            ("/search", r#"{"reference": [42]}"#),
            ("/search", r#"{"reference": ["a"], "k": -1}"#),
            ("/search", r#"{"reference": ["a"], "k": 1.5}"#),
            ("/search", r#"{"reference": ["a"], "floor": "x"}"#),
            ("/search", r#"{"reference": ["a"], "floor": 1.5}"#),
            ("/discover", r#"{"references": []}"#),
            ("/discover", r#"{"references": [[]]}"#),
            ("/discover", r#"{"references": [["a"], [3]]}"#),
        ] {
            let (status, doc) = post(&s, path, body);
            assert_eq!(status, 400, "{path} {body} → {doc}");
            assert!(doc.get("error").is_some(), "{path} {body}");
        }
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = service();
        assert_eq!(get(&s, "/nope").0, 404);
        assert_eq!(post(&s, "/healthz", "").0, 405);
        assert_eq!(get(&s, "/search").0, 405);
        assert_eq!(get(&s, "/sets").0, 405);
        assert_eq!(get(&s, "/compact").0, 405);
        assert_eq!(get(&s, "/snapshot").0, 405);
        assert_eq!(post(&s, "/metrics", "").0, 405);
        // Query strings are ignored for routing.
        assert_eq!(get(&s, "/healthz?verbose=1").0, 200);
    }

    #[test]
    fn update_routes_mutate_and_validate() {
        let s = service();
        // Malformed update bodies are 400s.
        for (method, body) in [
            ("POST", "not json"),
            ("POST", r#"{"sets": []}"#),
            ("POST", r#"{"sets": [[]]}"#),
            ("POST", r#"{"sets": [["a"], [1]]}"#),
            ("DELETE", r#"{"ids": []}"#),
            ("DELETE", r#"{"ids": [-1]}"#),
            ("DELETE", r#"{"ids": ["x"]}"#),
            ("DELETE", r#"{"ids": [1.5]}"#),
        ] {
            let req = Request::new(method, "/sets", body.as_bytes().to_vec());
            let resp = s.handle(&req);
            assert_eq!(resp.status, 400, "{method} {body}");
        }

        // Append, then search for the new set.
        let (status, doc) = post(&s, "/sets", r#"{"sets": [["unique marker element"]]}"#);
        assert_eq!(status, 200, "{doc}");
        assert_eq!(
            doc.get("appended").and_then(Json::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(doc.get("sets").and_then(Json::as_usize), Some(21));
        let (_, found) = post(
            &s,
            "/search",
            r#"{"reference": ["unique marker element"], "floor": 0.9}"#,
        );
        let hits = found.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("set").and_then(Json::as_usize), Some(20));

        // Remove it again; unknown ids are a named 404.
        let req = Request::new("DELETE", "/sets", br#"{"ids": [20]}"#.to_vec());
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200);
        let req = Request::new("DELETE", "/sets", br#"{"ids": [555]}"#.to_vec());
        let resp = s.handle(&req);
        assert_eq!(resp.status, 404);

        // /stats reflects the update count and the live set count.
        let (_, stats) = get(&s, "/stats");
        assert_eq!(
            stats
                .get("requests")
                .and_then(|r| r.get("update"))
                .and_then(Json::as_usize),
            Some(2)
        );
        assert_eq!(stats.get("sets").and_then(Json::as_usize), Some(20));
    }

    #[test]
    fn search_reports_timed_out_and_batch_matches_one_by_one() {
        let s = service();
        // One-by-one answers…
        let bodies = [
            r#"{"reference": ["w0 w1 shared0"], "k": 4, "floor": 0.1}"#,
            r#"{"reference": ["w2 w3 shared1", "w4 w0 shared2"], "floor": 0.0, "k": 3}"#,
            r#"{"reference": ["nothing matches this"]}"#,
        ];
        let singles: Vec<Json> = bodies
            .iter()
            .map(|b| {
                let (status, doc) = post(&s, "/search", b);
                assert_eq!(status, 200, "{doc}");
                assert_eq!(doc.get("timed_out"), Some(&Json::Bool(false)));
                doc.get("results").unwrap().clone()
            })
            .collect();
        // …must equal the batch answers for the same specs.
        let batch_body = format!(r#"{{"queries": [{}]}}"#, bodies.join(","));
        let (status, doc) = post(&s, "/search/batch", &batch_body);
        assert_eq!(status, 200, "{doc}");
        let outputs = doc.get("outputs").and_then(Json::as_array).unwrap();
        assert_eq!(outputs.len(), singles.len());
        for (out, single) in outputs.iter().zip(&singles) {
            assert_eq!(out.get("results"), Some(single));
            assert_eq!(out.get("timed_out"), Some(&Json::Bool(false)));
        }
        // The batch counted one search per query.
        let (_, stats) = get(&s, "/stats");
        assert_eq!(
            stats
                .get("requests")
                .and_then(|r| r.get("search"))
                .and_then(Json::as_usize),
            Some(2 * bodies.len())
        );
    }

    #[test]
    fn spec_flags_control_the_response_shape() {
        let s = service();
        // stats off: no stats object in the response.
        let (status, doc) = post(
            &s,
            "/search",
            r#"{"reference": ["w0 w1 shared0"], "stats": false}"#,
        );
        assert_eq!(status, 200, "{doc}");
        assert!(doc.get("stats").is_none());
        assert!(doc.get("results").is_some());
        // explain on: one explanation per hit, aligned.
        let (status, doc) = post(
            &s,
            "/search",
            r#"{"reference": ["w0 w1 shared0"], "k": 3, "floor": 0.0, "explain": true}"#,
        );
        assert_eq!(status, 200, "{doc}");
        let results = doc.get("results").and_then(Json::as_array).unwrap();
        let explain = doc.get("explain").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), explain.len());
        assert!(!results.is_empty());
        for (r, e) in results.iter().zip(explain) {
            assert_eq!(r.get("set"), e.get("set"));
            assert_eq!(e.get("related"), Some(&Json::Bool(true)));
        }
    }

    #[test]
    fn unsupported_spec_version_and_bad_batch_bodies_are_400s() {
        let s = service();
        let (status, doc) = post(&s, "/search", r#"{"v": 2, "reference": ["a"]}"#);
        assert_eq!(status, 400);
        assert!(doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("version 2"));
        for body in [
            "not json",
            r#"{}"#,
            r#"{"queries": []}"#,
            r#"{"queries": "x"}"#,
            r#"{"queries": [{"reference": []}]}"#,
            r#"{"queries": [{"reference": ["a"]}, {"reference": ["b"], "floor": 7}]}"#,
        ] {
            let (status, doc) = post(&s, "/search/batch", body);
            assert_eq!(status, 400, "{body} → {doc}");
        }
        // The error names the offending batch entry.
        let (_, doc) = post(
            &s,
            "/search/batch",
            r#"{"queries": [{"reference": ["a"]}, {"reference": ["b"], "floor": 7}]}"#,
        );
        assert!(doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("queries[1]"));
    }

    #[test]
    fn per_query_deadline_answers_200_with_timed_out() {
        let s = service();
        // A zero budget expires before any verification: still a 200,
        // with well-formed (empty-prefix) results and the flag set.
        let (status, doc) = post(
            &s,
            "/search",
            r#"{"reference": ["w0 w1 shared0"], "floor": 0.0, "deadline_ms": 0}"#,
        );
        assert_eq!(status, 200, "{doc}");
        assert_eq!(doc.get("timed_out"), Some(&Json::Bool(true)));
        assert!(doc.get("results").and_then(Json::as_array).is_some());
    }

    #[test]
    fn whole_request_timeout_is_a_504() {
        let s = SearchService::new(ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap())
            .with_search_timeout(Duration::ZERO);
        let (status, doc) = post(&s, "/search", r#"{"reference": ["w0 w1 shared0"]}"#);
        assert_eq!(status, 504, "{doc}");
        assert!(doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("--search-timeout-ms"));
        let (status, _) = post(
            &s,
            "/search/batch",
            r#"{"queries": [{"reference": ["w0 w1 shared0"]}]}"#,
        );
        assert_eq!(status, 504);
        // A generous budget answers normally.
        let s = SearchService::new(ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap())
            .with_search_timeout(Duration::from_secs(60));
        let (status, doc) = post(&s, "/search", r#"{"reference": ["w0 w1 shared0"]}"#);
        assert_eq!(status, 200, "{doc}");
        assert_eq!(doc.get("timed_out"), Some(&Json::Bool(false)));
    }

    #[test]
    fn search_batch_rejects_other_methods() {
        let s = service();
        assert_eq!(get(&s, "/search/batch").0, 405);
    }

    #[test]
    fn snapshot_on_ephemeral_service_is_a_409() {
        let s = service();
        let (status, doc) = post(&s, "/snapshot", "");
        assert_eq!(status, 409, "{doc}");
        assert!(doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("--data-dir"));
    }

    #[test]
    fn ephemeral_policy_compacts_automatically() {
        let raw = corpus();
        let s = SearchService::new(ShardedEngine::build(&raw, engine_cfg(), 3).unwrap())
            .with_policy(CompactionPolicy::default().compact_at_dead_ratio(0.2));
        // Removing 4/20 sets crosses the 0.2 dead ratio: the service
        // compacts on its own and /stats shows dense slots again.
        let (status, _) = {
            let req = Request::new("DELETE", "/sets", br#"{"ids": [1, 5, 9, 13]}"#.to_vec());
            let resp = s.handle(&req);
            (resp.status, ())
        };
        assert_eq!(status, 200);
        let (_, stats) = get(&s, "/stats");
        assert_eq!(stats.get("sets").and_then(Json::as_usize), Some(16));
        assert_eq!(
            stats.get("slots").and_then(Json::as_usize),
            Some(16),
            "auto-compaction dropped the tombstones"
        );
        assert_eq!(
            stats.get("auto_compactions").and_then(Json::as_usize),
            Some(1)
        );
        // Global ids survive the auto-compaction (stable-gid guarantee).
        let (status, _) = {
            let req = Request::new("DELETE", "/sets", br#"{"ids": [19]}"#.to_vec());
            (s.handle(&req).status, ())
        };
        assert_eq!(status, 200);
    }

    #[test]
    fn durable_service_logs_snapshots_and_reports_storage_stats() {
        let dir =
            std::env::temp_dir().join(format!("silkmoth-service-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap();
        let store = Store::create(&dir, engine, StoreConfig::default()).unwrap();
        let s = SearchService::durable(store);

        let (status, doc) = get(&s, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(doc.get("durable"), Some(&Json::Bool(true)));

        let (status, doc) = post(&s, "/sets", r#"{"sets": [["durable marker"]]}"#);
        assert_eq!(status, 200, "{doc}");
        let (_, stats) = get(&s, "/stats");
        let storage = stats.get("storage").expect("durable stats section");
        assert_eq!(
            storage.get("snapshot_seq").and_then(Json::as_usize),
            Some(0)
        );
        assert_eq!(storage.get("wal_records").and_then(Json::as_usize), Some(1));
        assert_eq!(storage.get("last_fsync_ok"), Some(&Json::Bool(true)));

        // Forcing a checkpoint rotates the generation and empties the WAL.
        let (status, doc) = post(&s, "/snapshot", "");
        assert_eq!(status, 200, "{doc}");
        assert_eq!(doc.get("snapshot_seq").and_then(Json::as_usize), Some(1));
        let (_, stats) = get(&s, "/stats");
        let storage = stats.get("storage").unwrap();
        assert_eq!(
            storage.get("snapshot_seq").and_then(Json::as_usize),
            Some(1)
        );
        assert_eq!(storage.get("wal_records").and_then(Json::as_usize), Some(0));

        // Unknown removes stay named 404s through the durable path (and
        // are not logged: the WAL count is unchanged).
        let req = Request::new("DELETE", "/sets", br#"{"ids": [999]}"#.to_vec());
        assert_eq!(s.handle(&req).status, 404);
        let (_, stats) = get(&s, "/stats");
        let storage = stats.get("storage").unwrap();
        assert_eq!(storage.get("wal_records").and_then(Json::as_usize), Some(0));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_on_a_plain_primary_is_a_409() {
        let s = service();
        let (status, doc) = post(&s, "/promote", "");
        assert_eq!(status, 409, "{doc}");
        assert!(doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("already primary"));
    }

    #[test]
    fn follower_rejects_writes_until_promoted() {
        use crate::replication::{follower_store_config, start_follower};
        use crate::ShardSpec;
        use silkmoth_replica::FollowerConfig;

        let dir =
            std::env::temp_dir().join(format!("silkmoth-service-follower-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap();
        let store = Store::create(&dir, engine, StoreConfig::default()).unwrap();
        let s = Arc::new(SearchService::durable(store));

        // Point the follower loop at a primary that refuses connections:
        // it must retry with backoff and stay alive, not exit.
        let runtime = start_follower(
            Arc::clone(&s),
            "127.0.0.1:9".to_string(),
            ShardSpec {
                cfg: engine_cfg(),
                shards: 3,
            },
            follower_store_config(StoreConfig::default()),
            FollowerConfig {
                backoff_min: Duration::from_millis(2),
                backoff_max: Duration::from_millis(20),
                ..FollowerConfig::default()
            },
        );

        // Health stays 200 with the role and loop state visible.
        let (status, doc) = get(&s, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(doc.get("role").and_then(Json::as_str), Some("follower"));
        assert!(doc.get("replication_state").is_some());

        // Writes are rejected naming the primary; reads still work.
        let (status, doc) = post(&s, "/sets", r#"{"sets": [["nope"]]}"#);
        assert_eq!(status, 409, "{doc}");
        let err = doc.get("error").and_then(Json::as_str).unwrap();
        assert!(err.contains("read-only follower") && err.contains("127.0.0.1:9"));
        let (status, _) = post(&s, "/search", r#"{"reference": ["w0 w1 shared0"]}"#);
        assert_eq!(status, 200);

        let (_, stats) = get(&s, "/stats");
        let repl = stats.get("replication").expect("replication stats");
        assert_eq!(repl.get("role").and_then(Json::as_str), Some("follower"));
        assert_eq!(
            repl.get("primary").and_then(Json::as_str),
            Some("127.0.0.1:9")
        );
        assert!(repl.get("lag").is_some());

        // Promote: the loop stops, the epoch bumps durably, writes open.
        let (status, doc) = post(&s, "/promote", "");
        assert_eq!(status, 200, "{doc}");
        assert_eq!(doc.get("role").and_then(Json::as_str), Some("primary"));
        assert_eq!(doc.get("epoch").and_then(Json::as_usize), Some(1));
        runtime.handle.join().unwrap();

        let (_, doc) = get(&s, "/healthz");
        assert_eq!(doc.get("role").and_then(Json::as_str), Some("primary"));
        let (status, doc) = post(&s, "/sets", r#"{"sets": [["now writable"]]}"#);
        assert_eq!(status, 200, "{doc}");
        let (_, stats) = get(&s, "/stats");
        let storage = stats.get("storage").unwrap();
        assert_eq!(storage.get("epoch").and_then(Json::as_usize), Some(1));
        let (status, doc) = post(&s, "/promote", "");
        assert_eq!(status, 409, "{doc}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
        resp.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn every_response_carries_a_request_id_header() {
        let s = service();
        let cases = [
            Request::new("POST", "/search", br#"{"reference": ["w0"]}"#.to_vec()),
            Request::new("GET", "/no/such/route", Vec::new()),
            Request::new("GET", "/search", Vec::new()), // 405
            Request::new("POST", "/search", b"not json".to_vec()), // 400
        ];
        for (i, req) in cases.into_iter().enumerate() {
            let resp = s.handle(&req);
            assert_eq!(
                header(&resp, "X-Request-Id"),
                Some((i + 1).to_string().as_str()),
                "request {} (status {})",
                i + 1,
                resp.status
            );
        }
    }

    #[test]
    fn timeout_504_header_matches_its_log_line() {
        let lines = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&lines);
        let s = SearchService::new(ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap())
            .with_search_timeout(Duration::ZERO)
            .with_log_format(LogFormat::Text)
            .with_log_sink(move |line| sink.lock().unwrap().push(line.to_owned()));
        let req = Request::new("POST", "/search", br#"{"reference": ["w0"]}"#.to_vec());
        let resp = s.handle(&req);
        assert_eq!(resp.status, 504);
        let id = header(&resp, "X-Request-Id").expect("504 carries the id");
        let lines = lines.lock().unwrap();
        let line = lines
            .iter()
            .find(|l| l.contains("status=504"))
            .expect("the 504 was logged");
        assert!(
            line.contains(&format!("id={id} ")) && line.contains(&format!("trace={id} ")),
            "header id {id} missing from log line: {line}"
        );
    }

    /// The acceptance-criteria pin: a slow-query-captured `/search`
    /// trace shows ≥ 5 distinct span kinds and its funnel attributes
    /// equal that query's `PassStats` from the response; a durable
    /// update's trace carries the WAL write/fsync and group-commit
    /// spans.
    #[test]
    fn slow_query_trace_pins_span_kinds_and_funnel() {
        let dir =
            std::env::temp_dir().join(format!("silkmoth-service-traces-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = ShardedEngine::build(&corpus(), engine_cfg(), 3).unwrap();
        let store = Store::create(&dir, engine, StoreConfig::default()).unwrap();
        let s = SearchService::durable(store).with_slow_query_ms(0); // every request is "slow"

        let sets_req = Request::new("POST", "/sets", br#"{"sets": [["w0 w1 traced"]]}"#.to_vec());
        let sets_resp = s.handle(&sets_req);
        assert_eq!(sets_resp.status, 200);
        let sets_id: u64 = header(&sets_resp, "X-Request-Id").unwrap().parse().unwrap();

        let search_req = Request::new(
            "POST",
            "/search",
            br#"{"reference": ["w0 w1 shared0", "w3 w4 shared0"], "floor": 0.2}"#.to_vec(),
        );
        let search_resp = s.handle(&search_req);
        assert_eq!(search_resp.status, 200);
        let search_id: u64 = header(&search_resp, "X-Request-Id")
            .unwrap()
            .parse()
            .unwrap();
        let search_doc = Json::parse(std::str::from_utf8(&search_resp.body).unwrap()).unwrap();
        let stats = search_doc.get("stats").expect("stats in the response");

        let (status, page) = get(&s, "/debug/traces");
        assert_eq!(status, 200);
        assert_eq!(page.get("version").and_then(Json::as_usize), Some(1));
        let traces = page.get("traces").and_then(Json::as_array).unwrap();
        let by_id = |id: u64| {
            traces
                .iter()
                .find(|t| t.get("id").and_then(Json::as_usize) == Some(id as usize))
                .unwrap_or_else(|| panic!("trace {id} captured"))
        };

        // The search trace: root "http" span + ≥ 5 distinct kinds.
        let trace = by_id(search_id);
        assert_eq!(trace.get("route").and_then(Json::as_str), Some("/search"));
        assert_eq!(trace.get("slow"), Some(&Json::Bool(true)));
        let spans = trace.get("spans").and_then(Json::as_array).unwrap();
        assert_eq!(spans[0].get("kind").and_then(Json::as_str), Some("http"));
        assert_eq!(spans[0].get("parent"), Some(&Json::Null));
        let kinds: std::collections::BTreeSet<&str> = spans
            .iter()
            .filter_map(|sp| sp.get("kind").and_then(Json::as_str))
            .collect();
        for kind in ["http", "query", "shard", "stage", "verify"] {
            assert!(kinds.contains(kind), "missing span kind {kind}: {kinds:?}");
        }
        assert!(kinds.len() >= 5, "{kinds:?}");

        // The query span's funnel attributes equal the response stats.
        let query = spans
            .iter()
            .find(|sp| sp.get("kind").and_then(Json::as_str) == Some("query"))
            .unwrap();
        let attrs = query.get("attrs").unwrap();
        for field in [
            "candidates",
            "after_check",
            "after_nn",
            "verified",
            "results",
            "sim_evals",
            "signature_cost",
        ] {
            assert_eq!(
                attrs.get(field).and_then(Json::as_usize),
                stats.get(field).and_then(Json::as_usize),
                "funnel attr {field} diverges from PassStats"
            );
        }

        // The durable update's trace shows the storage side channel.
        let spans = by_id(sets_id)
            .get("spans")
            .and_then(Json::as_array)
            .unwrap();
        let kinds: std::collections::BTreeSet<&str> = spans
            .iter()
            .filter_map(|sp| sp.get("kind").and_then(Json::as_str))
            .collect();
        for kind in ["wal_write", "wal_fsync", "group_commit_lead"] {
            assert!(kinds.contains(kind), "missing span kind {kind}: {kinds:?}");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn debug_traces_filters_by_route_duration_and_id() {
        let s = service().with_trace_sample(1); // capture everything
        post(&s, "/search", r#"{"reference": ["w0 w1 shared0"]}"#);
        get(&s, "/healthz");
        post(&s, "/search", r#"{"reference": ["w3 w4 shared0"]}"#);

        let routes = |doc: &Json| -> Vec<String> {
            doc.get("traces")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|t| t.get("route").and_then(Json::as_str).unwrap().to_owned())
                .collect()
        };
        let (status, doc) = get(&s, "/debug/traces");
        assert_eq!(status, 200);
        assert_eq!(routes(&doc).len(), 3); // the listing itself isn't in yet
        let (_, doc) = get(&s, "/debug/traces?route=/search");
        assert_eq!(routes(&doc), ["/search", "/search"]);
        let (_, doc) = get(&s, "/debug/traces?id=2");
        let traces = doc.get("traces").and_then(Json::as_array).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].get("route").and_then(Json::as_str),
            Some("/healthz")
        );
        // An hour-long floor filters everything out but stays valid JSON.
        let (_, doc) = get(&s, "/debug/traces?min_ms=3600000");
        assert_eq!(routes(&doc).len(), 0);

        assert_eq!(get(&s, "/debug/traces?min_ms=abc").0, 400);
        assert_eq!(get(&s, "/debug/traces?id=x").0, 400);
        assert_eq!(get(&s, "/debug/traces?bogus=1").0, 400);
        assert_eq!(post(&s, "/debug/traces", "").0, 405);
    }

    /// The differential guarantee: tracing captures observations, it
    /// never changes results. Same corpus + same requests with tracing
    /// at sample=1 vs fully disabled must produce byte-identical
    /// bodies.
    #[test]
    fn tracing_on_vs_off_is_byte_identical() {
        let traced = service().with_trace_sample(1);
        let plain = service();
        let requests = [
            (
                "POST",
                "/search",
                r#"{"reference": ["w0 w1 shared0", "w3 w4 shared0"], "k": 5, "floor": 0.2}"#,
            ),
            (
                "POST",
                "/search/batch",
                r#"{"queries": [{"reference": ["w0 w1 shared0"]}, {"reference": ["w2 w3 shared1"], "k": 3}]}"#,
            ),
            (
                "POST",
                "/discover",
                r#"{"references": [["w0 w1 shared0"], ["w3 w4 shared0"]]}"#,
            ),
            ("GET", "/stats", ""),
        ];
        for (method, path, body) in requests {
            let req = Request::new(method, path, body.as_bytes().to_vec());
            let a = traced.handle(&req);
            let b = plain.handle(&req);
            assert_eq!(a.status, b.status, "{path}");
            assert_eq!(a.body, b.body, "{path}: tracing changed the response body");
        }
        assert!(traced.tracer().recorded() >= 4);
        assert_eq!(plain.tracer().recorded(), 0);
    }

    /// `/debug/traces` JSON survives a hostile reader: the full page
    /// round-trips through the parser, and no truncation or injected
    /// garbage can make parsing panic.
    #[test]
    fn trace_json_roundtrips_and_survives_truncation_fuzz() {
        let mut collector = TraceCollector::begin(7, "/search");
        let query = collector.add_span(trace::ROOT, "query", 5, Duration::from_micros(90));
        collector.attr_u64(query, "candidates", 12);
        collector.attr(query, "note", AttrValue::Str("quote\" slash\\ nl\n".into()));
        collector.attr(query, "ratio", AttrValue::F64(f64::NAN));
        collector.attr(query, "timed_out", AttrValue::Bool(false));
        let trace = Arc::new(collector.finish(200, true));
        let page = trace::render_traces(&[trace]);

        let doc = Json::parse(&page).expect("the page is valid JSON");
        let traces = doc.get("traces").and_then(Json::as_array).unwrap();
        assert_eq!(traces[0].get("id").and_then(Json::as_usize), Some(7));
        let spans = traces[0].get("spans").and_then(Json::as_array).unwrap();
        let attrs = spans[1].get("attrs").unwrap();
        assert_eq!(
            attrs.get("note").and_then(Json::as_str),
            Some("quote\" slash\\ nl\n")
        );
        assert_eq!(attrs.get("ratio"), Some(&Json::Null)); // NaN → null
        assert_eq!(attrs.get("candidates").and_then(Json::as_usize), Some(12));

        // Truncation at every char boundary: Err is fine, panic is not.
        for cut in 0..=page.len() {
            if page.is_char_boundary(cut) {
                let _ = Json::parse(&page[..cut]);
            }
        }
        // Injected garbage at a few positions, same rule.
        for (pos, junk) in [
            (0, "\u{0}"),
            (1, "}}]]"),
            (page.len() / 2, "\\u12"),
            (page.len(), "garbage"),
        ] {
            let mut broken = page.clone();
            broken.insert_str(pos, junk);
            let _ = Json::parse(&broken);
        }
    }
}
