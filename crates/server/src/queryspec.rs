//! JSON encoding of [`QuerySpec`] — the wire form `POST /search` and
//! `POST /search/batch` accept, mirroring `silkmoth_core::wire`'s
//! binary form.
//!
//! ## Format (version 1)
//!
//! ```json
//! {
//!   "v": 1,                      // optional; omitted means 1
//!   "reference": ["elem", …],    // required, non-empty
//!   "k": 10,                     // optional top-k
//!   "floor": 0.3,                // optional threshold override in [0,1]
//!   "deadline_ms": 50,           // optional wall-clock budget
//!   "stats": true,               // optional; default true
//!   "explain": false,            // optional; default false
//!   "timing": false              // optional; default false
//! }
//! ```
//!
//! Per the storage-layer format rule, the encoding is versioned: the
//! optional `"v"` field defaults to 1 (so pre-QuerySpec request bodies
//! keep working unchanged) and any other value is rejected by name.
//! Floors go through [`QuerySpec::with_floor`] — the single floor
//! validation point in the codebase — so the JSON layer cannot admit a
//! threshold the engine would refuse. Deadlines carry millisecond
//! granularity here (the binary form carries microseconds).

use silkmoth_core::{PairExplanation, QuerySpec};
use std::time::Duration;

use crate::json::{obj, Json};

/// The JSON encoding version this module reads and writes.
pub const QUERY_SPEC_JSON_VERSION: u64 = 1;

/// Parses a [`QuerySpec`] from a request-body object. Errors are
/// ready-to-send 400 messages.
pub fn spec_from_json(doc: &Json) -> Result<QuerySpec, String> {
    match doc.get("v") {
        None => {}
        Some(v) => match v.as_usize() {
            Some(1) => {}
            Some(other) => {
                return Err(format!(
                    "unsupported query spec version {other} \
                     (this server speaks {QUERY_SPEC_JSON_VERSION})"
                ))
            }
            None => return Err("'v' must be a positive integer".into()),
        },
    }
    let reference = match doc.get("reference").and_then(Json::as_array) {
        Some(items) if !items.is_empty() => items
            .iter()
            .map(|e| e.as_str().map(str::to_owned))
            .collect::<Option<Vec<_>>>()
            .ok_or("'reference' must contain only strings")?,
        _ => return Err("'reference' must be a non-empty array of strings".into()),
    };
    let mut spec = QuerySpec::new(reference);
    match doc.get("k") {
        None | Some(Json::Null) => {}
        Some(v) => match v.as_usize() {
            Some(k) => spec = spec.with_top_k(k),
            None => return Err("'k' must be a non-negative integer".into()),
        },
    }
    match doc.get("floor") {
        None | Some(Json::Null) => {}
        Some(v) => match v.as_f64() {
            Some(f) => spec = spec.with_floor(f).map_err(|e| e.to_string())?,
            None => return Err("'floor' must be a number".into()),
        },
    }
    match doc.get("deadline_ms") {
        None | Some(Json::Null) => {}
        Some(v) => match v.as_usize() {
            Some(ms) => spec = spec.with_deadline(Duration::from_millis(ms as u64)),
            None => return Err("'deadline_ms' must be a non-negative integer".into()),
        },
    }
    for field in ["stats", "explain", "timing"] {
        match doc.get(field) {
            None | Some(Json::Null) => {}
            Some(Json::Bool(b)) => {
                spec = match field {
                    "stats" => spec.with_stats(*b),
                    "explain" => spec.with_explain(*b),
                    _ => spec.with_timing(*b),
                };
            }
            Some(_) => return Err(format!("'{field}' must be a boolean")),
        }
    }
    Ok(spec)
}

/// Renders a [`QuerySpec`] as the version-1 JSON object
/// [`spec_from_json`] parses: `spec_from_json(spec_to_json(s)) == s`
/// for every spec with a non-empty reference and a whole-millisecond
/// deadline. (An empty reference is representable in core and on the
/// binary wire — it executes harmlessly — but [`spec_from_json`]
/// rejects it, keeping the HTTP boundary's long-standing 400 for
/// `"reference": []`.)
pub fn spec_to_json(spec: &QuerySpec) -> Json {
    let mut fields = vec![
        ("v", Json::Num(QUERY_SPEC_JSON_VERSION as f64)),
        (
            "reference",
            Json::Arr(
                spec.reference()
                    .iter()
                    .map(|e| Json::Str(e.clone()))
                    .collect(),
            ),
        ),
    ];
    if let Some(k) = spec.top_k() {
        fields.push(("k", Json::Num(k as f64)));
    }
    if let Some(f) = spec.floor() {
        fields.push(("floor", Json::Num(f)));
    }
    if let Some(budget) = spec.deadline() {
        fields.push(("deadline_ms", Json::Num(budget.as_millis() as f64)));
    }
    fields.push(("stats", Json::Bool(spec.want_stats())));
    fields.push(("explain", Json::Bool(spec.want_explain())));
    fields.push(("timing", Json::Bool(spec.want_timing())));
    obj(fields)
}

/// Renders one per-hit [`PairExplanation`] as a compact JSON object
/// (the filter-pipeline verdicts and scores; per-element detail stays
/// in-process).
pub fn explanation_json(set: u32, expl: &PairExplanation) -> Json {
    obj(vec![
        ("set", Json::Num(f64::from(set))),
        ("related", Json::Bool(expl.related)),
        ("relatedness", Json::Num(expl.relatedness)),
        ("matching_score", Json::Num(expl.matching_score)),
        ("theta", Json::Num(expl.theta)),
        ("candidate", Json::Bool(expl.is_candidate)),
        ("check_filter", Json::Bool(expl.passes_check_filter)),
        ("nn_filter", Json::Bool(expl.passes_nn_filter)),
        ("nn_upper_bound", Json::Num(expl.nn_upper_bound)),
        (
            "degenerate_signature",
            Json::Bool(expl.degenerate_signature),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<QuerySpec, String> {
        spec_from_json(&Json::parse(text).unwrap())
    }

    #[test]
    fn minimal_body_parses_with_defaults() {
        let spec = parse(r#"{"reference": ["a b", "c"]}"#).unwrap();
        assert_eq!(spec.reference(), ["a b".to_owned(), "c".to_owned()]);
        assert_eq!(spec.top_k(), None);
        assert_eq!(spec.floor(), None);
        assert_eq!(spec.deadline(), None);
        assert!(spec.want_stats());
        assert!(!spec.want_explain());
    }

    #[test]
    fn full_body_parses_every_field() {
        let spec = parse(
            r#"{"v": 1, "reference": ["a"], "k": 5, "floor": 0.25,
                "deadline_ms": 40, "stats": false, "explain": true}"#,
        )
        .unwrap();
        assert_eq!(spec.top_k(), Some(5));
        assert_eq!(spec.floor(), Some(0.25));
        assert_eq!(spec.deadline(), Some(Duration::from_millis(40)));
        assert!(!spec.want_stats());
        assert!(spec.want_explain());
    }

    #[test]
    fn json_roundtrip_preserves_the_spec() {
        let specs = [
            QuerySpec::new(vec!["héllo \"wörld\"\n".into(), String::new()]),
            QuerySpec::new(vec!["a".into()])
                .with_top_k(3)
                .with_floor(0.5)
                .unwrap()
                .with_deadline(Duration::from_millis(25))
                .with_stats(false)
                .with_explain(true)
                .with_timing(true),
        ];
        for spec in specs {
            // Through the text form too, so escaping is exercised.
            let text = spec_to_json(&spec).to_string();
            let back = spec_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn unknown_version_rejected_by_name() {
        let err = parse(r#"{"v": 2, "reference": ["a"]}"#).unwrap_err();
        assert!(err.contains("version 2"), "{err}");
        assert!(parse(r#"{"v": "x", "reference": ["a"]}"#).is_err());
        // Omitted and explicit v=1 both parse.
        assert!(parse(r#"{"v": 1, "reference": ["a"]}"#).is_ok());
    }

    #[test]
    fn floor_validation_is_the_specs() {
        let err = parse(r#"{"reference": ["a"], "floor": 1.5}"#).unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");
        let err = parse(r#"{"reference": ["a"], "floor": -0.5}"#).unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn malformed_fields_rejected() {
        for bad in [
            r#"{}"#,
            r#"{"reference": []}"#,
            r#"{"reference": [1]}"#,
            r#"{"reference": "a"}"#,
            r#"{"reference": ["a"], "k": -1}"#,
            r#"{"reference": ["a"], "k": 1.5}"#,
            r#"{"reference": ["a"], "floor": "x"}"#,
            r#"{"reference": ["a"], "deadline_ms": -5}"#,
            r#"{"reference": ["a"], "deadline_ms": "soon"}"#,
            r#"{"reference": ["a"], "stats": 1}"#,
            r#"{"reference": ["a"], "explain": "yes"}"#,
            r#"{"reference": ["a"], "timing": 0}"#,
        ] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }
}
