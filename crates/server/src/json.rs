//! Hand-rolled JSON for the wire format, in the spirit of the `vendor/`
//! stand-ins: no crates.io access, so this module implements exactly the
//! subset the service needs and documents it.
//!
//! **Supported subset** (a strict subset of RFC 8259):
//!
//! * Values: `null`, `true`/`false`, finite numbers, strings, arrays,
//!   objects.
//! * String escapes on input: `\" \\ \/ \b \f \n \r \t` and `\uXXXX`
//!   (including surrogate pairs).
//! * Numbers parse via [`str::parse::<f64>`] after syntax validation;
//!   integers up to 2⁵³ round-trip exactly.
//! * Objects preserve insertion order and allow duplicate keys
//!   ([`Json::get`] returns the first).
//!
//! **Encoding is newline-safe**: control characters (including `\n`) are
//! always escaped, so one encoded document never spans lines — a document
//! per line is a valid framing. Non-finite numbers encode as `null`
//! (they never occur in the wire format; scores are finite by
//! construction).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Shorthand for building an object value.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: deeper documents are rejected rather than risking
/// stack exhaustion on hostile input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so any byte run cut at ASCII boundaries
            // is valid UTF-8.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        b => return Err(self.err(format!("unknown escape '\\{}'", b as char))),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // `f64::from_str` saturates huge magnitudes (e.g. `1e999`) to
        // infinity rather than failing; reject those here so a parsed
        // document never carries a non-finite number.
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-3.25),
            Json::Num(1e9),
            Json::Str("plain".into()),
            Json::Str("with \"quotes\" and \\ and \n tab\t".into()),
            Json::Str("unicode: ωβ 🚀".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = obj(vec![
            ("k", Json::Num(10.0)),
            ("floor", Json::Num(0.35)),
            (
                "reference",
                Json::Arr(vec![Json::Str("77 Mass Ave".into()), Json::Str("".into())]),
            ),
            ("nested", obj(vec![("deep", Json::Arr(vec![Json::Null]))])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn encoding_is_newline_safe() {
        let v = Json::Str("line1\nline2\rline3\u{85}".into());
        assert!(!v.to_string().contains('\n'));
        assert!(!v.to_string().contains('\r'));
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""Aé🚀""#).unwrap(), Json::Str("Aé🚀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired high
        assert!(Json::parse(r#""\udc00""#).is_err()); // lone low is invalid
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x", "a": 9}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(3)); // first wins
        assert_eq!(v.get("b").and_then(Json::as_array).map(<[_]>::len), Some(2));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }

    #[test]
    fn malformed_documents_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "1e",
            "-",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[1] trailing",
            "nan",
            "+1",
            "01e", // digits parse, then junk
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[_]>::len), Some(2));
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
