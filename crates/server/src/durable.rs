//! Durability glue: [`ShardedEngine`] as a
//! [`StoreEngine`], so the service can
//! run over a [`Store`](silkmoth_storage::Store) — every update
//! WAL-logged before it is acknowledged, recovery via snapshot +
//! replay (`silkmoth serve --data-dir`).
//!
//! The sharded engine is the easy case for durable recovery: global
//! ids are **stable across every update including compaction** (PR 3),
//! so snapshots store gids verbatim, `planned_remap` is always `None`,
//! and replay never renumbers.

use silkmoth_collection::{SetIdx, UpdateError};
use silkmoth_core::{ConfigError, EngineConfig, Update, UpdateOutcome};
use silkmoth_storage::{EngineState, StorageError, StoreEngine};

use crate::shard::ShardedEngine;

/// Everything a snapshot does not store about a sharded engine: the
/// serving configuration and the shard count. Supplied at
/// [`Store::open`](silkmoth_storage::Store::open) from the CLI flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// The engine configuration to serve with.
    pub cfg: EngineConfig,
    /// How many shards to partition across (clamped to ≥ 1). The shard
    /// count is free to differ between runs: partitioning is a pure
    /// function of the stable gids, and scatter-gather output is
    /// provably independent of it.
    pub shards: usize,
}

impl StoreEngine for ShardedEngine {
    type Spec = ShardSpec;

    fn restore(spec: &Self::Spec, state: EngineState) -> Result<Self, StorageError> {
        state.validate()?;
        let need = spec.cfg.tokenization();
        if state.tokenization != need {
            return Err(StorageError::Config(ConfigError::TokenizationMismatch {
                have: state.tokenization,
                need,
            }));
        }
        ShardedEngine::restore(
            state.live,
            &state.dead,
            state.next_id,
            spec.cfg,
            spec.shards,
        )
        .map_err(StorageError::Config)
    }

    fn capture(&self) -> EngineState {
        let (live, dead, next_id) = self.capture();
        EngineState {
            live,
            dead,
            next_id,
            tokenization: self.config().tokenization(),
        }
    }

    fn check_update(&self, update: &Update) -> Result<(), UpdateError> {
        if let Update::Remove(gids) = update {
            if let Some(&bad) = gids.iter().find(|&&gid| !self.has_gid(gid)) {
                return Err(UpdateError::NoSuchSet(bad));
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, update: Update) -> Result<UpdateOutcome, UpdateError> {
        self.apply(update)
    }

    fn planned_remap(&self) -> Option<Vec<Option<SetIdx>>> {
        None // global ids never renumber
    }

    fn live_len(&self) -> usize {
        self.len()
    }

    fn slot_len(&self) -> usize {
        self.slot_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silkmoth_core::RelatednessMetric;
    use silkmoth_text::SimilarityFunction;

    fn cfg() -> EngineConfig {
        EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Jaccard,
            0.5,
            0.0,
        )
    }

    fn corpus(n: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| vec![format!("w{} w{} shared{}", i % 7, (i + 1) % 5, i % 4)])
            .collect()
    }

    /// capture → restore round-trips a mutated engine into one with
    /// byte-identical search behavior, across shard counts — including
    /// a *different* shard count than the engine was captured at.
    #[test]
    fn capture_restore_roundtrip_is_byte_identical() {
        let raw = corpus(30);
        for &(from_shards, to_shards) in &[(1usize, 1usize), (2, 2), (7, 7), (3, 5)] {
            let mut engine = ShardedEngine::build(&raw, cfg(), from_shards).unwrap();
            engine
                .apply(Update::Append(vec![vec!["brand new".into()]]))
                .unwrap();
            engine.apply(Update::Remove(vec![2, 11, 30])).unwrap();
            let state = StoreEngine::capture(&engine);
            let spec = ShardSpec {
                cfg: cfg(),
                shards: to_shards,
            };
            let back = <ShardedEngine as StoreEngine>::restore(&spec, state).unwrap();
            assert_eq!(back.len(), engine.len());
            assert_eq!(back.slot_count(), engine.slot_count());
            for probe in [&raw[0], &raw[12]] {
                let want = engine.search(probe, None, None).unwrap().results;
                let got = back.search(probe, None, None).unwrap().results;
                assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.0, b.0, "{from_shards}→{to_shards}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "{from_shards}→{to_shards}");
                }
            }
            // The restored engine keeps evolving identically: appended
            // gids continue the same numbering, dead gids stay
            // re-removable, unknown gids stay named errors.
            let mut back = back;
            let out = back
                .apply(Update::Append(vec![vec!["after restore".into()]]))
                .unwrap();
            assert_eq!(out.appended, vec![31]);
            assert_eq!(back.apply(Update::Remove(vec![2])).unwrap().removed, 0);
            assert!(back.apply(Update::Remove(vec![99])).is_err());
        }
    }

    #[test]
    fn check_update_matches_apply_acceptance() {
        let raw = corpus(12);
        let mut engine = ShardedEngine::build(&raw, cfg(), 3).unwrap();
        engine.apply(Update::Remove(vec![4])).unwrap();
        // Tombstoned gid: still addressable (idempotent remove).
        assert!(engine.check_update(&Update::Remove(vec![4])).is_ok());
        assert_eq!(
            engine.check_update(&Update::Remove(vec![3, 44])),
            Err(UpdateError::NoSuchSet(44))
        );
        // After compaction the dead gid is gone for good.
        engine.apply(Update::Compact).unwrap();
        assert_eq!(
            engine.check_update(&Update::Remove(vec![4])),
            Err(UpdateError::NoSuchSet(4))
        );
        assert!(engine.check_update(&Update::Compact).is_ok());
        assert!(engine
            .check_update(&Update::Append(vec![vec!["x".into()]]))
            .is_ok());
    }

    #[test]
    fn tokenization_mismatch_is_a_named_config_error() {
        let engine = ShardedEngine::build(&corpus(4), cfg(), 2).unwrap();
        let state = StoreEngine::capture(&engine);
        let edit_spec = ShardSpec {
            cfg: EngineConfig::full(
                RelatednessMetric::Similarity,
                SimilarityFunction::Eds { q: 2 },
                0.5,
                0.0,
            ),
            shards: 2,
        };
        assert!(matches!(
            <ShardedEngine as StoreEngine>::restore(&edit_spec, state),
            Err(StorageError::Config(
                ConfigError::TokenizationMismatch { .. }
            ))
        ));
    }
}
