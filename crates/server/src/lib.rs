//! # silkmoth-server
//!
//! The SilkMoth network service: a sharded, multi-threaded HTTP front
//! over the owned, `Send + Sync` [`Engine`](silkmoth_core::Engine),
//! built entirely on `std` (no crates.io access — the wire format uses
//! the in-crate [`json`] subset, the transport the in-crate [`http`]
//! server).
//!
//! Three layers:
//!
//! * [`shard`] — [`ShardedEngine`]: the collection hash-partitioned
//!   across N engines, scatter-gather search/discovery with output
//!   **provably identical** to one unsharded engine (global ids, global
//!   top-k rank, bit-identical scores — see the module docs for why);
//! * [`http`] — an HTTP/1.1 server on [`std::net::TcpListener`] with a
//!   fixed worker pool, keep-alive, and graceful drain on shutdown;
//! * [`service`] — the routes: `POST /search`, `POST /discover`,
//!   `GET /stats` (cumulative per-shard [`PassStats`] merged),
//!   `GET /healthz`, and `GET /metrics` (the [`metrics`] bundle in the
//!   Prometheus text exposition format).
//!
//! ## Example
//!
//! ```
//! use silkmoth_core::{EngineConfig, RelatednessMetric};
//! use silkmoth_text::SimilarityFunction;
//! use silkmoth_server::{serve, ShardedEngine};
//!
//! let raw = vec![
//!     vec!["77 Mass Ave Boston MA", "5th St 02115 Seattle WA"],
//!     vec!["77 Massachusetts Avenue Boston MA", "Fifth Street Seattle WA 02115"],
//! ];
//! let cfg = EngineConfig::full(
//!     RelatednessMetric::Similarity,
//!     SimilarityFunction::Jaccard,
//!     0.25,
//!     0.0,
//! );
//! let engine = ShardedEngine::build(&raw, cfg, 2).unwrap();
//!
//! // Scatter-gather directly…
//! let out = engine.search(&["77 Mass Ave Boston MA"], Some(1), Some(0.2)).unwrap();
//! assert_eq!(out.results.len(), 1);
//!
//! // …or over HTTP: bind an ephemeral port, then shut down gracefully.
//! let server = serve(engine, "127.0.0.1:0", 2).unwrap();
//! let addr = server.addr();
//! server.shutdown();
//! ```
//!
//! [`PassStats`]: silkmoth_core::PassStats

pub mod catalog;
pub mod durable;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queryspec;
pub mod replication;
pub mod service;
pub mod shard;

pub use catalog::{serve_catalog, CatalogConfig, CatalogError, CatalogService};
pub use durable::ShardSpec;
pub use http::{read_simple_response, HttpServer, Request, Response};
pub use json::{Json, JsonError};
pub use metrics::{canonical_route, ServiceMetrics};
pub use queryspec::{spec_from_json, spec_to_json, QUERY_SPEC_JSON_VERSION};
pub use replication::{
    dir_needs_fresh_store, follower_store_config, serve_log, start_follower, FollowerConfig,
    FollowerRuntime, ReplicaServer, ServiceSink, ServiceSource, StreamerConfig,
};
pub use service::{serve, serve_service, EngineGuard, LogFormat, SearchService};
pub use shard::{
    merge_stats, ShardedDiscoveryOutput, ShardedEngine, ShardedQueryOutput, ShardedSearchOutput,
};
