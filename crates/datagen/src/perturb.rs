//! Dirty-data perturbations: typos and word drops, used to plant related
//! (but not identical) set pairs — the "robust to small dissimilarities"
//! scenario that motivates the maximum-matching metric (§1, Table 1).

use rand::Rng;

/// Applies one random character edit (substitution, insertion, or
/// deletion) to a word. Deletion is skipped for single-character words.
pub fn typo<R: Rng + ?Sized>(word: &str, rng: &mut R) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.is_empty() {
        return word.to_owned();
    }
    let op = rng.random_range(0..3u8);
    let pos = rng.random_range(0..chars.len());
    let mut rand_char = (b'a' + rng.random_range(0..26u8)) as char;
    let mut out = chars.clone();
    match op {
        1 => out.insert(pos, rand_char), // insertion
        _ if op == 2 && out.len() > 1 => {
            out.remove(pos); // deletion
        }
        _ => {
            // Substitution must actually change the character, or the
            // result would not be one edit away.
            while rand_char == out[pos] {
                rand_char = (b'a' + rng.random_range(0..26u8)) as char;
            }
            out[pos] = rand_char;
        }
    }
    out.into_iter().collect()
}

/// Perturbs a phrase: each word gets a typo with probability `typo_prob`
/// and is dropped with probability `drop_prob` (at least one word always
/// survives).
pub fn perturb_phrase<R: Rng + ?Sized>(
    words: &[&str],
    typo_prob: f64,
    drop_prob: f64,
    rng: &mut R,
) -> Vec<String> {
    let mut out = Vec::with_capacity(words.len());
    for &w in words {
        if out.len() + 1 < words.len() && rng.random::<f64>() < drop_prob {
            continue;
        }
        if rng.random::<f64>() < typo_prob {
            out.push(typo(w, rng));
        } else {
            out.push(w.to_owned());
        }
    }
    if out.is_empty() {
        out.push(words[0].to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use silkmoth_text::lev::levenshtein;

    #[test]
    fn typo_is_one_edit() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let t = typo("database", &mut rng);
            assert_eq!(levenshtein("database", &t), 1, "{t}");
        }
    }

    #[test]
    fn typo_single_char_never_empties() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            assert!(!typo("x", &mut rng).is_empty());
        }
    }

    #[test]
    fn perturb_keeps_most_words() {
        let mut rng = StdRng::seed_from_u64(13);
        let words = ["finding", "related", "sets", "with", "constraints"];
        let out = perturb_phrase(&words, 0.2, 0.1, &mut rng);
        assert!(!out.is_empty());
        assert!(out.len() <= words.len());
    }

    #[test]
    fn perturb_never_empties() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            assert!(!perturb_phrase(&["solo"], 1.0, 1.0, &mut rng).is_empty());
        }
    }
}
