//! # silkmoth-datagen
//!
//! Deterministic synthetic workload generators mirroring the SilkMoth
//! evaluation datasets (§8.1, Table 3).
//!
//! The paper evaluates on DBLP (100K publication titles) and WebTable
//! (500K HTML tables), neither of which ships with this repository. These
//! generators synthesize corpora with the same *shape* — Zipf-skewed token
//! frequencies, matching set/element/token size distributions, and planted
//! clusters of truly related sets — because those three properties are
//! what drive signature selectivity, filter effectiveness, and
//! verification cost. See DESIGN.md §5 for the substitution rationale.
//!
//! Three application presets:
//!
//! * [`dblp_titles`] — **string matching**: set = publication title,
//!   element = word, tokens = q-grams (Table 3 row 1: ~9 elems/set).
//! * [`webtable_schemas`] — **schema matching**: set = schema, element =
//!   attribute (its values concatenated), tokens = value words (row 2:
//!   ~3 elems/set, ~11.3 tokens/elem).
//! * [`webtable_columns`] — **inclusion dependency**: set = column,
//!   element = cell value, tokens = words (row 3: ~22 elems/set,
//!   ~2.2 tokens/elem).
//!
//! All generators take an explicit seed and are fully deterministic.

mod perturb;
mod vocab;
mod zipf;

pub use perturb::{perturb_phrase, typo};
pub use vocab::{vocabulary, Vocabulary};
pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Raw corpus: each set is a list of element strings. Build a
/// `silkmoth_collection::Collection` from it with the tokenization the
/// application needs.
pub type RawCorpus = Vec<Vec<String>>;

/// Configuration for the DBLP-like string-matching corpus.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of sets (titles).
    pub num_sets: usize,
    /// RNG seed.
    pub seed: u64,
    /// Distinct words in the vocabulary.
    pub vocab_size: usize,
    /// Zipf exponent for word frequencies.
    pub zipf_exponent: f64,
    /// Words per title, inclusive range (paper mean ≈ 9).
    pub words_per_set: (usize, usize),
    /// Fraction of titles generated as near-duplicates of an earlier title.
    pub cluster_fraction: f64,
    /// Per-word probability of a single-character typo in near-duplicates.
    pub typo_prob: f64,
    /// Per-word probability of dropping the word in near-duplicates.
    pub drop_prob: f64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            num_sets: 2_000,
            seed: 42,
            vocab_size: 4_000,
            zipf_exponent: 1.05,
            words_per_set: (4, 14),
            cluster_fraction: 0.35,
            typo_prob: 0.15,
            drop_prob: 0.03,
        }
    }
}

/// Generates a DBLP-like corpus: each set is one publication title, each
/// element one word.
pub fn dblp_titles(cfg: &DblpConfig) -> RawCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let vocab = vocabulary(cfg.vocab_size, 4, 10, &mut rng);
    let zipf = Zipf::new(cfg.vocab_size, cfg.zipf_exponent);
    let mut corpus: RawCorpus = Vec::with_capacity(cfg.num_sets);
    for _ in 0..cfg.num_sets {
        let near_dup = !corpus.is_empty() && rng.random::<f64>() < cfg.cluster_fraction;
        if near_dup {
            let base = &corpus[rng.random_range(0..corpus.len())];
            let words: Vec<&str> = base.iter().map(String::as_str).collect();
            corpus.push(perturb_phrase(
                &words,
                cfg.typo_prob,
                cfg.drop_prob,
                &mut rng,
            ));
        } else {
            let n = rng.random_range(cfg.words_per_set.0..=cfg.words_per_set.1);
            let title: Vec<String> = (0..n)
                .map(|_| vocab.word(zipf.sample(&mut rng)).to_owned())
                .collect();
            corpus.push(title);
        }
    }
    corpus
}

/// Configuration for the WebTable-like schema-matching corpus.
#[derive(Debug, Clone)]
pub struct SchemaConfig {
    /// Number of sets (schemas).
    pub num_sets: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of attribute "domains" (value pools).
    pub num_domains: usize,
    /// Values per domain pool.
    pub domain_pool: usize,
    /// Attributes per schema, inclusive range (paper mean = 3).
    pub attrs_per_set: (usize, usize),
    /// Value words per attribute, inclusive range (paper mean ≈ 11.3).
    pub values_per_attr: (usize, usize),
    /// Zipf exponent for value frequencies within a domain.
    pub zipf_exponent: f64,
    /// Fraction of schemas generated as near-duplicates of an earlier one.
    pub cluster_fraction: f64,
    /// Per-value probability of replacement in near-duplicates.
    pub replace_prob: f64,
}

impl Default for SchemaConfig {
    fn default() -> Self {
        Self {
            num_sets: 2_000,
            seed: 43,
            num_domains: 40,
            domain_pool: 400,
            attrs_per_set: (2, 4),
            values_per_attr: (8, 15),
            zipf_exponent: 0.9,
            cluster_fraction: 0.35,
            replace_prob: 0.12,
        }
    }
}

/// Generates a WebTable-like schema corpus: each set is one schema, each
/// element one attribute rendered as its whitespace-joined values.
pub fn webtable_schemas(cfg: &SchemaConfig) -> RawCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Per-domain pools of single-word values.
    let pools: Vec<Vocabulary> = (0..cfg.num_domains)
        .map(|_| vocabulary(cfg.domain_pool, 3, 9, &mut rng))
        .collect();
    let zipf = Zipf::new(cfg.domain_pool, cfg.zipf_exponent);
    let mut corpus: RawCorpus = Vec::with_capacity(cfg.num_sets);
    // Remember each schema's domain assignment for perturbation.
    let mut domains_of: Vec<Vec<usize>> = Vec::with_capacity(cfg.num_sets);
    for _ in 0..cfg.num_sets {
        let near_dup = !corpus.is_empty() && rng.random::<f64>() < cfg.cluster_fraction;
        if near_dup {
            let idx = rng.random_range(0..corpus.len());
            let base = corpus[idx].clone();
            let base_domains = domains_of[idx].clone();
            let perturbed: Vec<String> = base
                .iter()
                .zip(&base_domains)
                .map(|(attr, &dom)| {
                    let words: Vec<String> = attr
                        .split_whitespace()
                        .map(|w| {
                            if rng.random::<f64>() < cfg.replace_prob {
                                pools[dom].word(zipf.sample(&mut rng)).to_owned()
                            } else {
                                w.to_owned()
                            }
                        })
                        .collect();
                    words.join(" ")
                })
                .collect();
            corpus.push(perturbed);
            domains_of.push(base_domains);
        } else {
            let n_attrs = rng.random_range(cfg.attrs_per_set.0..=cfg.attrs_per_set.1);
            let mut attrs = Vec::with_capacity(n_attrs);
            let mut doms = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                let dom = rng.random_range(0..cfg.num_domains);
                let n_vals = rng.random_range(cfg.values_per_attr.0..=cfg.values_per_attr.1);
                let vals: Vec<&str> = (0..n_vals)
                    .map(|_| pools[dom].word(zipf.sample(&mut rng)))
                    .collect();
                attrs.push(vals.join(" "));
                doms.push(dom);
            }
            corpus.push(attrs);
            domains_of.push(doms);
        }
    }
    corpus
}

/// Configuration for the WebTable-like column corpus (inclusion
/// dependency).
#[derive(Debug, Clone)]
pub struct ColumnsConfig {
    /// Number of sets (columns).
    pub num_sets: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of entity pools ("dictionary columns" the data is drawn
    /// from).
    pub num_pools: usize,
    /// Entities per pool.
    pub pool_size: usize,
    /// Values per column, inclusive range (paper mean ≈ 22).
    pub values_per_set: (usize, usize),
    /// Words per value, inclusive range (paper mean ≈ 2.2).
    pub words_per_value: (usize, usize),
    /// Fraction of columns generated as dirty subsets of an earlier,
    /// larger column (the planted containment pairs).
    pub containment_fraction: f64,
    /// Per-value probability of a typo in contained columns.
    pub typo_prob: f64,
}

impl Default for ColumnsConfig {
    fn default() -> Self {
        Self {
            num_sets: 4_000,
            seed: 44,
            num_pools: 60,
            pool_size: 500,
            values_per_set: (10, 34),
            words_per_value: (1, 4),
            containment_fraction: 0.3,
            typo_prob: 0.1,
        }
    }
}

/// Generates a WebTable-like column corpus: each set is one column, each
/// element one cell value of 1–4 words.
pub fn webtable_columns(cfg: &ColumnsConfig) -> RawCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Entity pools: multi-word entities per pool.
    let word_vocab = vocabulary(3_000, 3, 9, &mut rng);
    let word_zipf = Zipf::new(3_000, 0.8);
    let pools: Vec<Vec<String>> = (0..cfg.num_pools)
        .map(|_| {
            (0..cfg.pool_size)
                .map(|_| {
                    let n = rng.random_range(cfg.words_per_value.0..=cfg.words_per_value.1);
                    (0..n)
                        .map(|_| word_vocab.word(word_zipf.sample(&mut rng)))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        })
        .collect();
    let mut corpus: RawCorpus = Vec::with_capacity(cfg.num_sets);
    for _ in 0..cfg.num_sets {
        let contained = !corpus.is_empty() && rng.random::<f64>() < cfg.containment_fraction;
        if contained {
            // Sample a subset of an existing column, lightly dirtied: the
            // base column then (approximately) contains this one.
            let base = &corpus[rng.random_range(0..corpus.len())];
            let take = rng
                .random_range(cfg.values_per_set.0..=cfg.values_per_set.1)
                .min(base.len());
            let start = rng.random_range(0..=base.len() - take);
            let vals: Vec<String> = base[start..start + take]
                .iter()
                .map(|v| {
                    if rng.random::<f64>() < cfg.typo_prob {
                        let words: Vec<&str> = v.split_whitespace().collect();
                        perturb_phrase(&words, 0.5, 0.0, &mut rng).join(" ")
                    } else {
                        v.clone()
                    }
                })
                .collect();
            corpus.push(vals);
        } else {
            let pool = &pools[rng.random_range(0..cfg.num_pools)];
            let n = rng.random_range(cfg.values_per_set.0..=cfg.values_per_set.1);
            let vals: Vec<String> = (0..n)
                .map(|_| pool[rng.random_range(0..pool.len())].clone())
                .collect();
            corpus.push(vals);
        }
    }
    corpus
}

/// Draws `count` distinct reference-set indices for search-mode
/// experiments (§8.1 picks 1000 columns at random), preferring sets with
/// more than `min_elems` distinct values ("less likely to be categorical
/// variables").
pub fn pick_references(
    corpus: &RawCorpus,
    count: usize,
    min_elems: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..corpus.len())
        .filter(|&i| {
            let mut distinct: Vec<&String> = corpus[i].iter().collect();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.len() > min_elems
        })
        .collect();
    let mut picked = Vec::with_capacity(count.min(pool.len()));
    while picked.len() < count && !pool.is_empty() {
        let j = rng.random_range(0..pool.len());
        picked.push(pool.swap_remove(j));
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_deterministic() {
        let cfg = DblpConfig {
            num_sets: 50,
            ..DblpConfig::default()
        };
        assert_eq!(dblp_titles(&cfg), dblp_titles(&cfg));
        let other = DblpConfig {
            seed: 7,
            ..cfg.clone()
        };
        assert_ne!(dblp_titles(&cfg), dblp_titles(&other));
    }

    #[test]
    fn dblp_shape_matches_table3() {
        let cfg = DblpConfig {
            num_sets: 500,
            ..DblpConfig::default()
        };
        let corpus = dblp_titles(&cfg);
        assert_eq!(corpus.len(), 500);
        let avg: f64 = corpus.iter().map(Vec::len).sum::<usize>() as f64 / 500.0;
        assert!((6.0..=12.0).contains(&avg), "elems/set = {avg}, want ≈ 9");
        // Every element is a single word (string-matching application).
        assert!(corpus
            .iter()
            .all(|t| t.iter().all(|w| !w.contains(char::is_whitespace))));
    }

    #[test]
    fn schemas_shape_matches_table3() {
        let cfg = SchemaConfig {
            num_sets: 400,
            ..SchemaConfig::default()
        };
        let corpus = webtable_schemas(&cfg);
        let elems: usize = corpus.iter().map(Vec::len).sum();
        let avg_elems = elems as f64 / corpus.len() as f64;
        assert!((2.0..=4.0).contains(&avg_elems), "elems/set = {avg_elems}");
        let tokens: usize = corpus
            .iter()
            .flat_map(|s| s.iter())
            .map(|a| a.split_whitespace().count())
            .sum();
        let avg_tokens = tokens as f64 / elems as f64;
        assert!(
            (8.0..=15.0).contains(&avg_tokens),
            "tokens/elem = {avg_tokens}"
        );
    }

    #[test]
    fn columns_shape_matches_table3() {
        let cfg = ColumnsConfig {
            num_sets: 400,
            ..ColumnsConfig::default()
        };
        let corpus = webtable_columns(&cfg);
        let elems: usize = corpus.iter().map(Vec::len).sum();
        let avg_elems = elems as f64 / corpus.len() as f64;
        assert!(
            (15.0..=30.0).contains(&avg_elems),
            "elems/set = {avg_elems}"
        );
        let tokens: usize = corpus
            .iter()
            .flat_map(|s| s.iter())
            .map(|v| v.split_whitespace().count())
            .sum();
        let avg_tokens = tokens as f64 / elems as f64;
        assert!(
            (1.5..=3.2).contains(&avg_tokens),
            "tokens/elem = {avg_tokens}"
        );
    }

    #[test]
    fn corpora_contain_related_pairs() {
        // The planted clusters must actually produce related pairs, or the
        // benchmarks would measure an empty result set.
        use silkmoth_collection::{Collection, Tokenization};
        use silkmoth_core::{brute, EngineConfig, RelatednessMetric};
        use silkmoth_text::SimilarityFunction;

        let corpus = webtable_schemas(&SchemaConfig {
            num_sets: 120,
            ..SchemaConfig::default()
        });
        let c = Collection::build(&corpus, Tokenization::Whitespace);
        let cfg = EngineConfig::full(
            RelatednessMetric::Similarity,
            SimilarityFunction::Jaccard,
            0.7,
            0.0,
        );
        let pairs = brute::discover_self(&c, &cfg);
        assert!(!pairs.is_empty(), "no related schema pairs planted");
    }

    #[test]
    fn columns_contain_containment_pairs() {
        use silkmoth_collection::{Collection, Tokenization};
        use silkmoth_core::{brute, EngineConfig, RelatednessMetric};
        use silkmoth_text::SimilarityFunction;

        let corpus = webtable_columns(&ColumnsConfig {
            num_sets: 80,
            ..ColumnsConfig::default()
        });
        let c = Collection::build(&corpus, Tokenization::Whitespace);
        let cfg = EngineConfig::full(
            RelatednessMetric::Containment,
            SimilarityFunction::Jaccard,
            0.7,
            0.0,
        );
        let pairs = brute::discover_self(&c, &cfg);
        assert!(!pairs.is_empty(), "no containment pairs planted");
    }

    #[test]
    fn pick_references_distinct_and_deterministic() {
        let corpus = webtable_columns(&ColumnsConfig {
            num_sets: 200,
            ..ColumnsConfig::default()
        });
        let refs = pick_references(&corpus, 30, 4, 1);
        assert_eq!(refs.len(), 30);
        let mut sorted = refs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), refs.len());
        assert_eq!(refs, pick_references(&corpus, 30, 4, 1));
    }
}
