//! Zipf-distributed sampling over ranks `0..n`.

use rand::Rng;

/// A Zipf(n, s) sampler: rank `k` (0-based) is drawn with probability
/// proportional to `1/(k+1)^s`. Sampling is a binary search over the
/// precomputed CDF — `O(log n)` per draw, fully deterministic given the
/// RNG.
///
/// Real token-frequency distributions (DBLP words, WebTable values) are
/// close to Zipfian; the skew is what gives SilkMoth's cost/value greedy
/// something to optimize (rare tokens have short inverted lists).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n ≥ 1` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against float residue at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no ranks (never: construction requires n ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 should dominate noticeably under s = 1.2.
        assert!(counts[0] as f64 > 0.1 * 20_000.0 * 0.5);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
