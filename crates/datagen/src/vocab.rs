//! Random word vocabularies.

use rand::Rng;
use std::collections::HashSet;

/// A fixed list of distinct lowercase words, indexable by Zipf rank.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
}

impl Vocabulary {
    /// The word at a rank.
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// All words.
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

/// Generates `size` distinct random words of `min_len..=max_len` lowercase
/// ASCII letters.
pub fn vocabulary<R: Rng + ?Sized>(
    size: usize,
    min_len: usize,
    max_len: usize,
    rng: &mut R,
) -> Vocabulary {
    assert!(min_len >= 1 && max_len >= min_len);
    let mut seen: HashSet<String> = HashSet::with_capacity(size);
    let mut words = Vec::with_capacity(size);
    while words.len() < size {
        let len = rng.random_range(min_len..=max_len);
        let w: String = (0..len)
            .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
            .collect();
        if seen.insert(w.clone()) {
            words.push(w);
        }
    }
    Vocabulary { words }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distinct_words_of_right_length() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = vocabulary(500, 3, 8, &mut rng);
        assert_eq!(v.len(), 500);
        let mut uniq: Vec<&String> = v.words().iter().collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 500);
        for w in v.words() {
            assert!((3..=8).contains(&w.len()));
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_given_rng() {
        let a = vocabulary(50, 3, 6, &mut StdRng::seed_from_u64(9));
        let b = vocabulary(50, 3, 6, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.words(), b.words());
    }
}
