//! Request-scoped tracing: one [`Trace`] per captured request, made of
//! hierarchical [`SpanRecord`]s with monotonic offsets, durations, and
//! typed attributes, retained in a bounded ring of completed traces.
//!
//! Aggregate metrics (the [`Registry`](crate::Registry)) answer "how is
//! the service doing"; a trace answers "why was *this* request slow" —
//! which filter stage ate the time, which shard straggled, what the WAL
//! fsync cost, how far the candidate set survived the check/NN funnel.
//!
//! ## Capture model
//!
//! A [`TraceCollector`] is cheap enough to build per request: it holds
//! the trace id, one `Instant`, and a span `Vec`. The service decides
//! *before* dispatch whether this request can be captured at all
//! (sampling says yes, or slow-query logging is armed and the request
//! might exceed the threshold); requests that can't be captured skip
//! the collector entirely, so the disabled path costs one atomic
//! fetch-add in [`Tracer::should_sample`] and nothing else. At the end
//! of the request the collector [`finish`](TraceCollector::finish)es
//! into an immutable [`Trace`] and — if the sample decision or the
//! slow-query threshold says keep it — is [`Tracer::record`]ed.
//!
//! ## The ring
//!
//! Completed traces land in a fixed-capacity ring. The slot claim is a
//! lock-free `fetch_add` on the write cursor; publishing into the
//! claimed slot takes that slot's own mutex for the duration of one
//! `Arc` store, so producers on different slots never contend and a
//! reader ([`Tracer::snapshot`]) can never observe a torn trace — it
//! sees the whole previous `Arc<Trace>` or the whole new one. When the
//! ring wraps, the oldest trace is dropped; a slot keeps the write with
//! the highest sequence if two wrapped producers ever race on it.
//!
//! ## Side-channel spans
//!
//! Storage events fire through a hook installed once per store, on
//! whatever thread commits — there is no request context at the hook.
//! [`install_sink`] puts a thread-local span sink in place for the
//! duration of one request; [`emit`] appends to it (and is a no-op —
//! one thread-local read — when no sink is installed). The request
//! wrapper drains the sink into the collector before finishing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter-like values (funnel counts, byte sizes, seqs).
    U64(u64),
    /// Floating-point values (scores, ratios).
    F64(f64),
    /// Short descriptive strings.
    Str(String),
    /// Flags.
    Bool(bool),
}

impl AttrValue {
    /// Renders the value as a JSON fragment.
    fn render_json(&self, out: &mut String) {
        match self {
            Self::U64(v) => out.push_str(&v.to_string()),
            Self::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            // JSON has no NaN/Inf literal; a null is still valid JSON.
            Self::F64(_) => out.push_str("null"),
            Self::Str(s) => push_json_string(out, s),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// Index of a span inside its trace (the root is always index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

/// The root span every [`TraceCollector`] starts with.
pub const ROOT: SpanId = SpanId(0);

/// One completed span: a named slice of its trace's timeline, linked to
/// a parent span, with typed attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span kind — a small closed vocabulary (`http`, `shard`,
    /// `stage`, `verify`, `explain`, `wal_write`, `wal_fsync`,
    /// `group_commit_wait`, `group_commit_lead`, `snapshot`,
    /// `compaction`, `apply`, …), never request data.
    pub kind: &'static str,
    /// Parent span index; `None` only for the root.
    pub parent: Option<u32>,
    /// Start offset from the trace's start, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Typed attributes (funnel counts, shard index, record counts…).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// One captured request: an id (the service's request id, echoed as
/// `X-Request-Id`), the route, the response status, and the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace id — identical to the request id in logs and the
    /// `X-Request-Id` response header.
    pub id: u64,
    /// Canonical route label of the request.
    pub route: &'static str,
    /// HTTP status the request answered with.
    pub status: u16,
    /// True when the trace was kept because the request met the
    /// slow-query threshold (as opposed to 1-in-N sampling).
    pub slow: bool,
    /// Whole-request duration in microseconds (the root span's).
    pub dur_us: u64,
    /// Spans, root first; `parent` indices point into this vector.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Renders the trace as one JSON object (the `/debug/traces`
    /// element format, version 1).
    pub fn render_json(&self, out: &mut String) {
        out.push_str(&format!("{{\"id\":{},\"route\":", self.id,));
        push_json_string(out, self.route);
        out.push_str(&format!(
            ",\"status\":{},\"slow\":{},\"duration_us\":{},\"spans\":[",
            self.status, self.slow, self.dur_us
        ));
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            push_json_string(out, span.kind);
            match span.parent {
                Some(p) => out.push_str(&format!(",\"parent\":{p}")),
                None => out.push_str(",\"parent\":null"),
            }
            out.push_str(&format!(
                ",\"start_us\":{},\"duration_us\":{},\"attrs\":{{",
                span.start_us, span.dur_us
            ));
            for (j, (key, value)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(out, key);
                out.push(':');
                value.render_json(out);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
    }
}

/// Renders a page of traces as the `/debug/traces` JSON document:
/// `{"version":1,"traces":[…]}`, oldest first.
pub fn render_traces(traces: &[Arc<Trace>]) -> String {
    let mut out = String::with_capacity(64 + traces.len() * 256);
    out.push_str("{\"version\":1,\"traces\":[");
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        trace.render_json(&mut out);
    }
    out.push_str("]}");
    out
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds one request's span tree. Created at the top of the request
/// wrapper, carried through the handler, finished into a [`Trace`].
///
/// Spans come in two flavors: *live* spans bracket code that is about
/// to run ([`start_span`](Self::start_span) / [`end_span`](Self::end_span)),
/// and *retroactive* spans record work whose duration was measured
/// elsewhere — per-shard `PhaseTiming`-style checkpoints, storage hook
/// events — via [`add_span`](Self::add_span).
#[derive(Debug)]
pub struct TraceCollector {
    id: u64,
    route: &'static str,
    t0: Instant,
    spans: Vec<SpanRecord>,
}

impl TraceCollector {
    /// Starts a trace: the root span (kind `http`) opens now.
    pub fn begin(id: u64, route: &'static str) -> Self {
        Self {
            id,
            route,
            t0: Instant::now(),
            spans: vec![SpanRecord {
                kind: "http",
                parent: None,
                start_us: 0,
                dur_us: 0,
                attrs: Vec::new(),
            }],
        }
    }

    /// Microseconds elapsed since the trace began.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// Opens a live span starting now; close it with
    /// [`end_span`](Self::end_span).
    pub fn start_span(&mut self, parent: SpanId, kind: &'static str) -> SpanId {
        let start_us = self.now_us();
        self.push(SpanRecord {
            kind,
            parent: Some(parent.0),
            start_us,
            dur_us: 0,
            attrs: Vec::new(),
        })
    }

    /// Closes a live span: duration = now − its start.
    pub fn end_span(&mut self, span: SpanId) {
        let now = self.now_us();
        if let Some(record) = self.spans.get_mut(span.0 as usize) {
            record.dur_us = now.saturating_sub(record.start_us);
        }
    }

    /// Records a span whose timing was measured elsewhere.
    pub fn add_span(
        &mut self,
        parent: SpanId,
        kind: &'static str,
        start_us: u64,
        dur: Duration,
    ) -> SpanId {
        self.push(SpanRecord {
            kind,
            parent: Some(parent.0),
            start_us,
            dur_us: dur.as_micros() as u64,
            attrs: Vec::new(),
        })
    }

    /// Attaches one typed attribute to a span.
    pub fn attr(&mut self, span: SpanId, key: &'static str, value: AttrValue) {
        if let Some(record) = self.spans.get_mut(span.0 as usize) {
            record.attrs.push((key, value));
        }
    }

    /// Shorthand for the most common attribute type.
    pub fn attr_u64(&mut self, span: SpanId, key: &'static str, value: u64) {
        self.attr(span, key, AttrValue::U64(value));
    }

    /// Places a side-channel span on this trace's timeline: the
    /// emission instant is the span's end, so start = end − duration
    /// (clamped into the trace).
    pub fn add_pending(&mut self, parent: SpanId, span: PendingSpan) -> SpanId {
        let end_us = span.at.saturating_duration_since(self.t0).as_micros() as u64;
        let dur_us = span.dur.as_micros() as u64;
        self.push(SpanRecord {
            kind: span.kind,
            parent: Some(parent.0),
            start_us: end_us.saturating_sub(dur_us),
            dur_us,
            attrs: span.attrs,
        })
    }

    /// Closes the root span and freezes the trace.
    pub fn finish(mut self, status: u16, slow: bool) -> Trace {
        let dur_us = self.now_us();
        self.spans[0].dur_us = dur_us;
        Trace {
            id: self.id,
            route: self.route,
            status,
            slow,
            dur_us,
            spans: self.spans,
        }
    }

    fn push(&mut self, record: SpanRecord) -> SpanId {
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(record);
        id
    }
}

/// One ring slot: the sequence number of the write it holds, so a
/// wrapped racing producer with an older claim never clobbers a newer
/// trace, and snapshots can order slots by recency.
#[derive(Debug, Default)]
struct Slot {
    seq: u64,
    trace: Option<Arc<Trace>>,
}

/// The process-wide trace sink: sampling state plus the bounded ring of
/// completed traces. One per service; handles are shared by `Arc`.
#[derive(Debug)]
pub struct Tracer {
    slots: Box<[Mutex<Slot>]>,
    cursor: AtomicU64,
    /// 1-in-N sampling; 0 disables sampling (slow-query capture still
    /// records).
    sample: AtomicU64,
    ticks: AtomicU64,
    recorded: AtomicU64,
}

impl Tracer {
    /// A tracer retaining up to `capacity` completed traces (clamped to
    /// ≥ 1), with sampling off.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(Slot::default())).collect(),
            cursor: AtomicU64::new(0),
            sample: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Sets 1-in-`n` sampling (`0` turns sampling off; slow-query
    /// capture is independent of this).
    pub fn set_sample(&self, n: u64) {
        self.sample.store(n, Ordering::Relaxed);
    }

    /// The current 1-in-N sampling rate (0 = off).
    pub fn sample(&self) -> u64 {
        self.sample.load(Ordering::Relaxed)
    }

    /// Draws this request's sampling decision: true for every Nth
    /// request under 1-in-N sampling. One relaxed fetch-add — the whole
    /// cost of tracing for a request that won't be captured.
    pub fn should_sample(&self) -> bool {
        let n = self.sample.load(Ordering::Relaxed);
        if n == 0 {
            return false;
        }
        self.ticks.fetch_add(1, Ordering::Relaxed).is_multiple_of(n)
    }

    /// Total traces ever recorded (snapshots expose it so eviction is
    /// observable: `recorded − capacity` traces have been dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Number of traces the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publishes one completed trace, evicting the oldest when full.
    /// The slot claim is a lock-free fetch-add; the publish itself
    /// takes only the claimed slot's lock (producers on different slots
    /// never contend).
    pub fn record(&self, trace: Trace) {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let seq = n + 1; // 0 marks an empty slot
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let mut slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
        // A producer that stalled a full ring-lap behind a racing one
        // must not replace the newer trace with its older claim.
        if seq > slot.seq {
            slot.seq = seq;
            slot.trace = Some(Arc::new(trace));
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// The retained traces, oldest first. Each slot is locked just long
    /// enough to clone its `Arc`, so a snapshot never tears a trace and
    /// never blocks producers for longer than one clone.
    pub fn snapshot(&self) -> Vec<Arc<Trace>> {
        let mut entries: Vec<(u64, Arc<Trace>)> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
                slot.trace.as_ref().map(|t| (slot.seq, Arc::clone(t)))
            })
            .collect();
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, t)| t).collect()
    }
}

/// A span recorded through the thread-local side channel before its
/// trace position is known; drained into the collector with
/// [`TraceCollector::add_pending`].
#[derive(Debug)]
pub struct PendingSpan {
    /// Span kind (same vocabulary as [`SpanRecord::kind`]).
    pub kind: &'static str,
    /// When the span was emitted — hooks fire *after* the work they
    /// describe, so this is the span's **end**; the collector derives
    /// the start as `at − dur`.
    pub at: Instant,
    /// Duration of the work the span describes.
    pub dur: Duration,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

thread_local! {
    static SINK: RefCell<Option<Vec<PendingSpan>>> = const { RefCell::new(None) };
}

/// Installs the thread-local span sink for the current request; spans
/// [`emit`]ted on this thread accumulate until the guard is drained or
/// dropped. Nested installs are not supported: the inner guard would
/// steal the outer's spans, so the previous sink (if any) is replaced
/// and restored empty.
pub fn install_sink() -> SinkGuard {
    SINK.with(|sink| *sink.borrow_mut() = Some(Vec::new()));
    SinkGuard(())
}

/// Records one span into the thread-local sink; a no-op (one
/// thread-local read) when no sink is installed — which is why
/// unconditional `emit` calls on hot paths are safe.
pub fn emit(kind: &'static str, dur: Duration, attrs: Vec<(&'static str, AttrValue)>) {
    SINK.with(|sink| {
        if let Some(pending) = sink.borrow_mut().as_mut() {
            pending.push(PendingSpan {
                kind,
                at: Instant::now(),
                dur,
                attrs,
            });
        }
    });
}

/// Uninstalls the thread-local sink on drop; [`drain`](Self::drain)
/// takes the collected spans first.
#[derive(Debug)]
pub struct SinkGuard(());

impl SinkGuard {
    /// Takes everything emitted since the sink was installed.
    pub fn drain(&self) -> Vec<PendingSpan> {
        SINK.with(|sink| {
            sink.borrow_mut()
                .as_mut()
                .map(std::mem::take)
                .unwrap_or_default()
        })
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SINK.with(|sink| *sink.borrow_mut() = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace(id: u64) -> Trace {
        let mut c = TraceCollector::begin(id, "/search");
        let shard = c.add_span(ROOT, "shard", 0, Duration::from_micros(50));
        c.attr_u64(shard, "shard", 0);
        c.add_span(shard, "stage", 0, Duration::from_micros(20));
        c.finish(200, false)
    }

    #[test]
    fn collector_builds_a_parented_tree() {
        let mut c = TraceCollector::begin(7, "/search");
        let live = c.start_span(ROOT, "dispatch");
        let child = c.add_span(live, "stage", 3, Duration::from_micros(11));
        c.attr(child, "candidates", AttrValue::U64(42));
        c.end_span(live);
        let trace = c.finish(200, true);
        assert_eq!(trace.id, 7);
        assert!(trace.slow);
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].kind, "http");
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[2].parent, Some(1));
        assert_eq!(trace.spans[2].dur_us, 11);
        assert_eq!(
            trace.spans[2].attrs,
            vec![("candidates", AttrValue::U64(42))]
        );
        // The root duration is the whole trace's.
        assert_eq!(trace.dur_us, trace.spans[0].dur_us);
    }

    #[test]
    fn sampling_is_one_in_n() {
        let tracer = Tracer::new(8);
        assert!(!tracer.should_sample(), "sampling defaults to off");
        tracer.set_sample(3);
        let hits = (0..9).filter(|_| tracer.should_sample()).count();
        assert_eq!(hits, 3);
        tracer.set_sample(1);
        assert!(tracer.should_sample(), "1-in-1 samples everything");
    }

    #[test]
    fn ring_evicts_oldest_and_orders_snapshots() {
        let tracer = Tracer::new(4);
        for id in 1..=10 {
            tracer.record(tiny_trace(id));
        }
        let kept: Vec<u64> = tracer.snapshot().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![7, 8, 9, 10], "newest 4 survive, in order");
        assert_eq!(tracer.recorded(), 10);
        assert_eq!(tracer.capacity(), 4);
    }

    #[test]
    fn ring_hammer_never_tears_and_stays_bounded() {
        // Writers race on a ring smaller than the write volume while a
        // reader snapshots continuously. Every observed trace must be
        // internally consistent (its spans encode its id), the ring
        // must never exceed capacity, and snapshot order must be
        // non-decreasing in recency.
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 300;
        let tracer = Arc::new(Tracer::new(16));
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let tracer = Arc::clone(&tracer);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let id = w * PER_WRITER + i;
                        let mut c = TraceCollector::begin(id, "/search");
                        let shard = c.add_span(ROOT, "shard", 0, Duration::from_micros(id));
                        c.attr_u64(shard, "echo", id);
                        tracer.record(c.finish(200, false));
                    }
                });
            }
            let tracer = Arc::clone(&tracer);
            scope.spawn(move || {
                for _ in 0..200 {
                    let snap = tracer.snapshot();
                    assert!(snap.len() <= 16, "ring exceeded capacity: {}", snap.len());
                    for t in &snap {
                        // Torn-trace check: the span attribute must
                        // echo the trace id it was built with.
                        assert_eq!(t.spans.len(), 2);
                        assert_eq!(
                            t.spans[1].attrs,
                            vec![("echo", AttrValue::U64(t.id))],
                            "trace {} holds another trace's spans",
                            t.id
                        );
                        assert_eq!(t.spans[1].dur_us, t.id);
                    }
                }
            });
        });
        assert_eq!(tracer.recorded(), WRITERS * PER_WRITER);
        assert_eq!(tracer.snapshot().len(), 16);
    }

    #[test]
    fn json_rendering_is_wellformed_and_escapes() {
        let mut c = TraceCollector::begin(3, "/search");
        let span = c.add_span(ROOT, "shard", 1, Duration::from_micros(9));
        c.attr(
            span,
            "note",
            AttrValue::Str("say \"hi\"\n\tdone\u{1}".into()),
        );
        c.attr(span, "ratio", AttrValue::F64(0.5));
        c.attr(span, "nan", AttrValue::F64(f64::NAN));
        c.attr(span, "ok", AttrValue::Bool(true));
        let page = render_traces(&[Arc::new(c.finish(200, false))]);
        assert!(page.starts_with("{\"version\":1,\"traces\":["), "{page}");
        assert!(page.contains("\"kind\":\"shard\""), "{page}");
        assert!(page.contains("\\\"hi\\\"\\n\\tdone\\u0001"), "{page}");
        assert!(page.contains("\"nan\":null"), "{page}");
        assert!(page.contains("\"ok\":true"), "{page}");
        // Balanced braces/brackets outside string literals — a cheap
        // well-formedness proxy the fuzz test in the server crate
        // strengthens with a real parser.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for c in page.chars() {
            if escape {
                escape = false;
                continue;
            }
            match c {
                '\\' if in_str => escape = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "{page}");
    }

    #[test]
    fn sink_collects_only_while_installed() {
        emit("wal_write", Duration::from_micros(5), Vec::new());
        let guard = install_sink();
        emit(
            "wal_write",
            Duration::from_micros(7),
            vec![("records", AttrValue::U64(2))],
        );
        emit("wal_fsync", Duration::from_micros(11), Vec::new());
        let pending = guard.drain();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].kind, "wal_write");
        assert_eq!(pending[0].attrs, vec![("records", AttrValue::U64(2))]);
        assert_eq!(pending[1].dur, Duration::from_micros(11));
        drop(guard);
        emit("wal_write", Duration::from_micros(13), Vec::new());
        let guard = install_sink();
        assert!(guard.drain().is_empty(), "a fresh sink starts empty");
    }
}
