//! # silkmoth-telemetry
//!
//! The metrics core for the SilkMoth stack, in the spirit of the
//! `vendor/` stand-ins and `server::json`: no crates.io access, so this
//! crate hand-rolls exactly the subset of a metrics library the stack
//! needs — atomic counters, gauges, fixed-bucket histograms — behind a
//! [`Registry`] that renders the Prometheus **text exposition format
//! version 0.0.4** ([`TEXT_FORMAT_VERSION`]).
//!
//! ## Design
//!
//! * Every metric handle ([`Counter`], [`Gauge`], [`Histogram`]) is a
//!   cheap `Clone` around `Arc<Atomic…>` state: recording is lock-free
//!   (`Relaxed` fetch-adds — each cell is an independent statistical
//!   counter, no cross-cell ordering is promised), so instrumentation
//!   never blocks or reorders the code it observes.
//! * Histograms use **fixed, log-scaled bucket bounds**
//!   ([`LATENCY_BUCKETS`]: ×2 per bucket from 10 µs to ~5.2 s) with one
//!   `AtomicU64` bin per bucket plus an overflow bin; the observation
//!   count is *derived* as the bin sum, so a concurrent
//!   [`Histogram::snapshot`] can never see a count that disagrees with
//!   its bins (no torn read between a count cell and the bins).
//! * Snapshots ([`HistogramSnapshot`]) are plain data and
//!   [mergeable](HistogramSnapshot::merge) — shard- or thread-local
//!   histograms fold into one.
//! * Registration is get-or-create by `(name, labels)`: handles for the
//!   same series share state. Re-registering a name with a different
//!   kind, help text, or bucket layout panics — that is a programming
//!   error, caught at startup, never a runtime surprise.
//!
//! ## Exposition format and escaping
//!
//! [`Registry::render`] emits, per metric family, in registration
//! order:
//!
//! ```text
//! # HELP <name> <help>
//! # TYPE <name> counter|gauge|histogram
//! <name>{<label>="<value>",…} <number>
//! ```
//!
//! Histograms expand to cumulative `<name>_bucket{…,le="<bound>"}`
//! rows (always ending with `le="+Inf"`), `<name>_sum` (seconds, as a
//! shortest-round-trip float) and `<name>_count`. Escaping rules, like
//! `server::json`, are part of the contract:
//!
//! * **HELP text**: `\` → `\\` and newline → `\n` (one line per
//!   comment, always).
//! * **Label values**: `\` → `\\`, `"` → `\"`, newline → `\n`.
//! * Metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*` and label
//!   names `[a-zA-Z_][a-zA-Z0-9_]*` — enforced at registration, so a
//!   rendered page never needs name escaping.
//!
//! The [`expo`] module is the read side: a parser for this format plus
//! the lint used by CI (`scripts/metrics_check.sh`) — duplicate
//! families, type mismatches, and counters that move backwards between
//! two scrapes all fail by name.
//!
//! The [`trace`] module is the per-request twin of the aggregate
//! registry: request-scoped span trees ([`TraceCollector`] →
//! [`Trace`]) retained in a bounded ring ([`Tracer`]) and served as
//! JSON on `/debug/traces`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

pub mod expo;
pub mod trace;

pub use trace::{AttrValue, SpanRecord, Trace, TraceCollector, Tracer};

/// The Prometheus text exposition format version this crate emits; the
/// `/metrics` route advertises it in its `Content-Type`.
pub const TEXT_FORMAT_VERSION: &str = "0.0.4";

/// The `Content-Type` for a rendered exposition page.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Default latency histogram bounds in seconds: 20 log-scaled buckets,
/// doubling from 10 µs to ~5.24 s (plus the implicit `+Inf` overflow
/// bin). Covers a WAL fsync (~10 µs–10 ms) and a worst-case O(n³)
/// verification pass (~seconds) in the same layout, so every latency
/// histogram in the stack is merge- and compare-able.
pub const LATENCY_BUCKETS: [f64; 20] = {
    let mut b = [0.0; 20];
    let mut i = 0;
    while i < 20 {
        // 1e-5 * 2^i, spelled out because float arithmetic in const
        // position cannot use powi.
        b[i] = 0.00001 * (1u64 << i) as f64;
        i += 1;
    }
    b
};

/// What kind of metric a family holds (its `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing `u64`.
    Counter,
    /// Arbitrary signed value.
    Gauge,
    /// Fixed-bucket latency distribution.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// A monotonically non-decreasing counter. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an externally maintained cumulative total (e.g. a
    /// connect count polled from another subsystem at scrape time).
    /// Uses `fetch_max`, so the rendered value stays monotonic even if
    /// the poll observes an older total.
    pub fn record_total(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways. Cloning shares the
/// cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (e.g. entering an in-flight section).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (e.g. leaving an in-flight section).
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared state of one histogram series: `bounds.len() + 1` bins
/// (the last is the `+Inf` overflow) and a nanosecond sum. The
/// observation count is the bin sum — there is deliberately no separate
/// count cell to tear against the bins.
#[derive(Debug)]
struct HistogramCore {
    /// Ascending upper bounds in seconds (`le` values).
    bounds: Arc<[f64]>,
    bins: Vec<AtomicU64>,
    sum_nanos: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: Arc<[f64]>) -> Self {
        let bins = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            bins,
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket latency histogram. Cloning shares the bins.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one observation given in seconds (negative clamps to 0).
    pub fn observe_secs(&self, secs: f64) {
        let nanos = (secs.max(0.0) * 1e9).min(u64::MAX as f64) as u64;
        self.observe_nanos(nanos);
    }

    fn observe_nanos(&self, nanos: u64) {
        let secs = nanos as f64 / 1e9;
        let core = &*self.0;
        let bin = core.bounds.partition_point(|&b| b < secs);
        core.bins[bin].fetch_add(1, Ordering::Relaxed);
        core.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the bins: each bin is individually
    /// monotonic, so a snapshot racing writers sees, per bin, some
    /// value ≤ the final one — never a torn or overcounted bin. (The
    /// sum may lag the bins by in-flight observations; both converge
    /// once writers stop.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        HistogramSnapshot {
            bounds: Arc::clone(&core.bounds),
            bins: core
                .bins
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_nanos: core.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a histogram's bins, mergeable across shards or
/// threads that share a bucket layout.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    bounds: Arc<[f64]>,
    /// Per-bucket (non-cumulative) counts; last is the overflow bin.
    bins: Vec<u64>,
    sum_nanos: u64,
}

impl HistogramSnapshot {
    /// The bucket upper bounds in seconds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (same length as `bounds` plus the overflow
    /// bin).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations — the bin sum.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Sum of all observations, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Folds `other` in (bin-wise add). Panics if the bucket layouts
    /// differ — merging histograms with different bounds is a bug.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            &*self.bounds, &*other.bounds,
            "merging histograms with different bucket layouts"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.sum_nanos += other.sum_nanos;
    }
}

/// One registered series: a label set and its data cell.
#[derive(Debug)]
enum SeriesData {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    data: SeriesData,
}

/// One metric family: a name, its help text and kind, and every label
/// combination registered under it.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    /// Histogram families pin their bucket layout at first registration.
    bounds: Option<Arc<[f64]>>,
    series: Vec<Series>,
}

/// The namespace all metrics live in: get-or-create registration of
/// namespaced handles plus [`render`](Registry::render) for the
/// `/metrics` page. Registration takes a mutex — get-or-create of an
/// existing series is one short lock, cheap enough for per-request
/// lookups of dynamic label sets; recording through the returned
/// handles is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a HELP line: `\` → `\\`, newline → `\n`.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name{labels}`. Panics if `name` is
    /// already registered as a different kind or with different help.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let data = self.series(name, help, MetricKind::Counter, labels, None);
        match data {
            SeriesHandle::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let data = self.series(name, help, MetricKind::Gauge, labels, None);
        match data {
            SeriesHandle::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates the histogram `name{labels}` with the given
    /// bucket bounds (ascending, in seconds). Panics if the family
    /// already exists with a different layout.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let data = self.series(name, help, MetricKind::Histogram, labels, Some(bounds));
        match data {
            SeriesHandle::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Declares a family without creating any series, pinning its place
    /// in the exposition order. Use for families whose label sets only
    /// appear at runtime (e.g. per-route request counters): declaring
    /// them at startup keeps `render` output deterministic regardless of
    /// which routes have been hit. Get-or-create like the handle
    /// constructors — re-declaring with a different kind, help, or
    /// bucket layout panics.
    pub fn declare(&self, name: &str, help: &str, kind: MetricKind, bounds: Option<&[f64]>) {
        if let Some(b) = bounds {
            assert!(
                b.windows(2).all(|w| w[0] < w[1]),
                "histogram bounds must be strictly ascending"
            );
        }
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} re-registered as a different kind"
                );
                assert_eq!(
                    f.help, help,
                    "metric {name} re-registered with different help"
                );
                if let (Some(have), Some(want)) = (&f.bounds, bounds) {
                    assert_eq!(
                        &have[..],
                        want,
                        "histogram {name} re-registered with a different bucket layout"
                    );
                }
            }
            None => families.push(Family {
                name: name.to_owned(),
                help: help.to_owned(),
                kind,
                bounds: bounds.map(Arc::from),
                series: Vec::new(),
            }),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
    ) -> SeriesHandle {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} re-registered as a different kind"
                );
                assert_eq!(
                    f.help, help,
                    "metric {name} re-registered with different help"
                );
                if let (Some(have), Some(want)) = (&f.bounds, bounds) {
                    assert_eq!(
                        &have[..],
                        want,
                        "histogram {name} re-registered with a different bucket layout"
                    );
                }
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    bounds: bounds.map(Arc::from),
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return match &series.data {
                SeriesData::Counter(c) => SeriesHandle::Counter(c.clone()),
                SeriesData::Gauge(g) => SeriesHandle::Gauge(g.clone()),
                SeriesData::Histogram(h) => SeriesHandle::Histogram(h.clone()),
            };
        }
        let data = match kind {
            MetricKind::Counter => SeriesData::Counter(Counter(Arc::new(AtomicU64::new(0)))),
            MetricKind::Gauge => SeriesData::Gauge(Gauge(Arc::new(AtomicI64::new(0)))),
            MetricKind::Histogram => {
                let bounds = family.bounds.clone().expect("histogram family has bounds");
                SeriesData::Histogram(Histogram(Arc::new(HistogramCore::new(bounds))))
            }
        };
        let handle = match &data {
            SeriesData::Counter(c) => SeriesHandle::Counter(c.clone()),
            SeriesData::Gauge(g) => SeriesHandle::Gauge(g.clone()),
            SeriesData::Histogram(h) => SeriesHandle::Histogram(h.clone()),
        };
        family.series.push(Series { labels, data });
        handle
    }

    /// Renders the whole registry in the text exposition format (see
    /// the module docs for the exact layout and escaping rules).
    /// Families appear in registration order, series in per-family
    /// registration order — deterministic, which the golden-format test
    /// pins.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                match &series.data {
                    SeriesData::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&series.labels, None),
                            c.get()
                        );
                    }
                    SeriesData::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&series.labels, None),
                            g.get()
                        );
                    }
                    SeriesData::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (bound, &bin) in snap.bounds().iter().zip(snap.bins()) {
                            cum += bin;
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                family.name,
                                label_block(&series.labels, Some(&fmt_f64(*bound))),
                                cum
                            );
                        }
                        cum += snap.bins().last().copied().unwrap_or(0);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            label_block(&series.labels, Some("+Inf")),
                            cum
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            label_block(&series.labels, None),
                            fmt_f64(snap.sum_secs())
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            family.name,
                            label_block(&series.labels, None),
                            cum
                        );
                    }
                }
            }
        }
        out
    }
}

/// Marker for which handle kind `series()` hands back.
enum SeriesHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// `{a="x",b="y"}` (or `{}`-less when empty), with an optional trailing
/// `le` label for histogram bucket rows.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Shortest-round-trip float rendering (Rust's `{}` for `f64`): bucket
/// bounds and sums render without an exponent for the magnitudes the
/// stack uses (`0.00001` … `5.24288`), which the format linter and
/// golden test rely on being stable.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn counters_and_gauges_render_in_registration_order() {
        let reg = Registry::new();
        let c = reg.counter("test_total", "Total things.", &[("route", "/a")]);
        c.add(3);
        let c2 = reg.counter("test_total", "Total things.", &[("route", "/b")]);
        c2.inc();
        let g = reg.gauge("test_inflight", "In-flight things.", &[]);
        g.add(5);
        g.sub(2);
        assert_eq!(
            reg.render(),
            "# HELP test_total Total things.\n\
             # TYPE test_total counter\n\
             test_total{route=\"/a\"} 3\n\
             test_total{route=\"/b\"} 1\n\
             # HELP test_inflight In-flight things.\n\
             # TYPE test_inflight gauge\n\
             test_inflight 3\n"
        );
    }

    #[test]
    fn declared_families_render_headers_and_pin_order() {
        let reg = Registry::new();
        reg.declare(
            "later_total",
            "Lazily populated.",
            MetricKind::Counter,
            None,
        );
        let g = reg.gauge("now_inflight", "Immediate.", &[]);
        g.set(1);
        // The declared family renders (header-only) ahead of the gauge
        // even though its first series arrives after the gauge's.
        reg.counter("later_total", "Lazily populated.", &[("route", "/a")])
            .inc();
        assert_eq!(
            reg.render(),
            "# HELP later_total Lazily populated.\n\
             # TYPE later_total counter\n\
             later_total{route=\"/a\"} 1\n\
             # HELP now_inflight Immediate.\n\
             # TYPE now_inflight gauge\n\
             now_inflight 1\n"
        );
    }

    #[test]
    fn same_series_shares_the_cell() {
        let reg = Registry::new();
        let a = reg.counter("shared_total", "h", &[("x", "1")]);
        let b = reg.counter("shared_total", "h", &[("x", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn record_total_is_monotonic() {
        let reg = Registry::new();
        let c = reg.counter("polled_total", "h", &[]);
        c.record_total(7);
        c.record_total(3); // stale poll — must not move backwards
        assert_eq!(c.get(), 7);
        c.record_total(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("twice", "h", &[]);
        reg.gauge("twice", "h", &[]);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_in_seconds() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "Latency.", &[], &[0.001, 0.01, 0.1]);
        h.observe(Duration::from_micros(500)); // ≤ 0.001
        h.observe(Duration::from_millis(5)); // ≤ 0.01
        h.observe(Duration::from_millis(5)); // ≤ 0.01
        h.observe(Duration::from_secs(1)); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.bins(), &[1, 2, 0, 1]);
        assert_eq!(snap.count(), 4);
        assert!((snap.sum_secs() - 1.0105).abs() < 1e-9);
        let text = reg.render();
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.001\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.01\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.1\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_bucket{le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("lat_seconds_count 4\n"), "{text}");
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket() {
        // le is inclusive: an observation exactly at a bound counts in
        // that bucket, per the Prometheus convention.
        let reg = Registry::new();
        let h = reg.histogram("edge_seconds", "h", &[], &[0.001]);
        h.observe(Duration::from_millis(1));
        assert_eq!(h.snapshot().bins(), &[1, 0]);
    }

    #[test]
    fn snapshots_merge_binwise() {
        let reg = Registry::new();
        let a = reg.histogram("m_seconds", "h", &[("shard", "0")], &LATENCY_BUCKETS);
        let b = reg.histogram("m_seconds", "h", &[("shard", "1")], &LATENCY_BUCKETS);
        a.observe(Duration::from_micros(50));
        b.observe(Duration::from_millis(50));
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 2);
        assert!((merged.sum_secs() - 0.05005).abs() < 1e-9);
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        let reg = Registry::new();
        reg.counter(
            "esc_total",
            "Help with \\ and\nnewline.",
            &[("v", "a\"b\\c\nd")],
        );
        let text = reg.render();
        assert!(
            text.contains("# HELP esc_total Help with \\\\ and\\nnewline.\n"),
            "{text}"
        );
        assert!(
            text.contains("esc_total{v=\"a\\\"b\\\\c\\nd\"} 0\n"),
            "{text}"
        );
        // Every rendered line is one line — newline-safe like server::json.
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn latency_buckets_are_log_scaled_and_ascending() {
        assert_eq!(LATENCY_BUCKETS.len(), 20);
        assert!((LATENCY_BUCKETS[0] - 1e-5).abs() < 1e-12);
        for w in LATENCY_BUCKETS.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    /// The ISSUE's torn-bucket test: 8 writer threads hammer one
    /// histogram while a reader snapshots continuously. Totals must be
    /// conserved at the end, and every mid-flight snapshot must be
    /// bin-wise ≤ the final state with a count equal to its own bin sum
    /// (impossible to violate by construction — the count *is* the bin
    /// sum — but pinned here against regressions that add a separate
    /// count cell).
    #[test]
    fn concurrent_observes_conserve_totals_and_never_tear() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let reg = Registry::new();
        let h = reg.histogram("hammer_seconds", "h", &[], &LATENCY_BUCKETS);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic spread across all bins incl. overflow.
                        let nanos = 1u64 << ((i + t as u64) % 34);
                        h.observe(Duration::from_nanos(nanos));
                    }
                });
            }
            let reader = {
                let h = h.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut snaps = 0usize;
                    let mut last_count = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = h.snapshot();
                        let count = snap.count();
                        assert!(count <= THREADS as u64 * PER_THREAD, "overcounted bins");
                        assert!(count >= last_count, "bin sum went backwards");
                        last_count = count;
                        snaps += 1;
                    }
                    snaps
                })
            };
            // Writers finish first; then release the reader.
            // (Scope joins writers only when the closure returns, so
            // park until the totals are all in.)
            while h.snapshot().count() < THREADS as u64 * PER_THREAD {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
            let snaps = reader.join().expect("reader panicked");
            assert!(snaps > 0);
        });
        let snap = h.snapshot();
        assert_eq!(
            snap.count(),
            THREADS as u64 * PER_THREAD,
            "observations lost"
        );
        // With writers quiesced the nanosecond sum is exact too.
        let expected: u64 = (0..THREADS as u64)
            .flat_map(|t| (0..PER_THREAD).map(move |i| 1u64 << ((i + t) % 34)))
            .sum();
        assert!((snap.sum_secs() - expected as f64 / 1e9).abs() < 1e-6);
    }
}
