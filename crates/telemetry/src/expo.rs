//! The read side of the exposition format: a parser for the text
//! format [`Registry::render`](crate::Registry::render) emits, plus the
//! lint CI runs over live scrapes (`scripts/metrics_check.sh`).
//!
//! The parser accepts exactly the subset this crate renders — `# HELP`
//! / `# TYPE` comments, `name{labels} value` samples, the label-value
//! escapes `\\` `\"` `\n` — and fails by name on anything else, so a
//! malformed page is a test failure, never a silent skip.

use std::collections::BTreeMap;

/// One parsed sample row: the sample name (which for histograms carries
/// the `_bucket`/`_sum`/`_count` suffix), its labels, and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The sample name as written.
    pub name: String,
    /// Label pairs in page order.
    pub labels: Vec<(String, String)>,
    /// The parsed value.
    pub value: f64,
}

/// One parsed metric family: the `# TYPE` kind, `# HELP` text, and
/// every sample row that belongs to it.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFamily {
    /// The family name (without histogram suffixes).
    pub name: String,
    /// The `# TYPE` keyword (`counter`, `gauge`, `histogram`).
    pub kind: String,
    /// The unescaped `# HELP` text.
    pub help: String,
    /// The family's sample rows.
    pub samples: Vec<Sample>,
}

/// Whether `sample` is a row of family `family` (exact, or a histogram
/// suffix row).
fn belongs_to(family: &str, sample: &str) -> bool {
    sample == family
        || sample
            .strip_prefix(family)
            .is_some_and(|rest| matches!(rest, "_bucket" | "_sum" | "_count"))
}

fn unescape_label_value(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape \\{}", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// Parses `{a="x",b="y"}` (the cursor starts after the `{`), returning
/// the pairs and the index just past the closing `}`.
fn parse_labels(text: &str) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = text.as_bytes();
    let mut labels = Vec::new();
    let mut pos = 0;
    loop {
        if bytes.get(pos) == Some(&b'}') {
            return Ok((labels, pos + 1));
        }
        let eq = text[pos..]
            .find('=')
            .ok_or_else(|| "label without '='".to_owned())?
            + pos;
        let name = &text[pos..eq];
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err(format!("label {name} value is not quoted"));
        }
        let mut end = eq + 2;
        while end < bytes.len() {
            match bytes[end] {
                b'\\' => end += 2,
                b'"' => break,
                _ => end += 1,
            }
        }
        if end >= bytes.len() {
            return Err(format!("unterminated value for label {name}"));
        }
        labels.push((name.to_owned(), unescape_label_value(&text[eq + 2..end])?));
        pos = end + 1;
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {}
            _ => return Err(format!("expected ',' or '}}' after label {name}")),
        }
    }
}

/// Parses one exposition page into its families. Errors name the
/// offending line (1-based).
pub fn parse_text(text: &str) -> Result<Vec<ParsedFamily>, String> {
    let mut families: Vec<ParsedFamily> = Vec::new();
    let mut pending_help: Option<(String, String)> = None;
    for (i, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| at("HELP without text".into()))?;
            pending_help = Some((
                name.to_owned(),
                help.replace("\\n", "\n").replace("\\\\", "\\"),
            ));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| at("TYPE without kind".into()))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(at(format!("unknown type {kind:?} for {name}")));
            }
            let help = match &pending_help {
                Some((h_name, h)) if h_name == name => h.clone(),
                _ => return Err(at(format!("TYPE {name} without a preceding HELP"))),
            };
            families.push(ParsedFamily {
                name: name.to_owned(),
                kind: kind.to_owned(),
                help,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal in the format
        }
        // A sample row: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| at("sample without a value".into()))?;
        let name = &line[..name_end];
        let (labels, rest) = if line.as_bytes()[name_end] == b'{' {
            let (labels, consumed) = parse_labels(&line[name_end + 1..]).map_err(&at)?;
            (labels, &line[name_end + 1 + consumed..])
        } else {
            (Vec::new(), &line[name_end..])
        };
        let value: f64 = rest
            .trim()
            .parse()
            .map_err(|_| at(format!("unparseable value {:?} for {name}", rest.trim())))?;
        let family = families
            .iter_mut()
            .rev()
            .find(|f| belongs_to(&f.name, name))
            .ok_or_else(|| at(format!("sample {name} without a TYPE header")))?;
        family.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    Ok(families)
}

/// Lints one scrape — and, when `prev` is given, the transition from an
/// earlier scrape of the same endpoint. Returns every violation (empty
/// = clean):
///
/// * duplicate family names on one page;
/// * a family whose kind changed between scrapes;
/// * a counter (or histogram `_count`/`_bucket`) that moved backwards;
/// * histogram bucket rows that are not cumulative, or `_count` ≠ the
///   `+Inf` bucket.
pub fn lint(prev: Option<&[ParsedFamily]>, cur: &[ParsedFamily]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut seen = BTreeMap::new();
    for f in cur {
        if seen.insert(f.name.clone(), f.kind.clone()).is_some() {
            problems.push(format!("duplicate family {}", f.name));
        }
        if f.kind == "histogram" {
            lint_histogram(f, &mut problems);
        }
    }
    let Some(prev) = prev else { return problems };
    for pf in prev {
        let Some(cf) = cur.iter().find(|f| f.name == pf.name) else {
            problems.push(format!("family {} disappeared between scrapes", pf.name));
            continue;
        };
        if cf.kind != pf.kind {
            problems.push(format!(
                "family {} changed kind {} → {}",
                pf.name, pf.kind, cf.kind
            ));
            continue;
        }
        if cf.kind == "gauge" {
            continue; // gauges may move any direction
        }
        // Counters and every histogram row must be non-decreasing
        // (histogram _sum too: observations are non-negative durations).
        for ps in &pf.samples {
            let Some(cs) = cf
                .samples
                .iter()
                .find(|s| s.name == ps.name && s.labels == ps.labels)
            else {
                problems.push(format!("series {} disappeared between scrapes", ps.name));
                continue;
            };
            if cs.value < ps.value {
                problems.push(format!(
                    "{}{:?} moved backwards: {} → {}",
                    ps.name, ps.labels, ps.value, cs.value
                ));
            }
        }
    }
    problems
}

/// Histogram self-consistency within one page: per label set (ignoring
/// `le`), bucket rows are cumulative in page order and `_count` equals
/// the `+Inf` bucket.
fn lint_histogram(f: &ParsedFamily, problems: &mut Vec<String>) {
    let without_le = |labels: &[(String, String)]| -> Vec<(String, String)> {
        labels.iter().filter(|(k, _)| k != "le").cloned().collect()
    };
    let mut last: BTreeMap<String, (f64, bool)> = BTreeMap::new(); // key → (last bucket, saw +Inf)
    for s in &f.samples {
        let key = format!("{:?}", without_le(&s.labels));
        if s.name == format!("{}_bucket", f.name) {
            let entry = last.entry(key).or_insert((0.0, false));
            if s.value < entry.0 {
                problems.push(format!(
                    "{} buckets not cumulative at {:?}: {} after {}",
                    f.name, s.labels, s.value, entry.0
                ));
            }
            entry.0 = s.value;
            if s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf") {
                entry.1 = true;
            }
        } else if s.name == format!("{}_count", f.name) {
            match last.get(&key) {
                Some((total, true)) if *total == s.value => {}
                _ => problems.push(format!(
                    "{}_count{:?} does not match its +Inf bucket",
                    f.name, s.labels
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, LATENCY_BUCKETS};
    use std::time::Duration;

    fn page() -> (Registry, String) {
        let reg = Registry::new();
        let c = reg.counter("a_total", "Things.", &[("route", "/x")]);
        c.add(5);
        let g = reg.gauge("b_now", "Level.", &[]);
        g.set(-3);
        let h = reg.histogram("c_seconds", "Latency.", &[], &LATENCY_BUCKETS);
        h.observe(Duration::from_millis(2));
        let text = reg.render();
        (reg, text)
    }

    #[test]
    fn parse_roundtrips_a_rendered_page() {
        let (_reg, text) = page();
        let families = parse_text(&text).expect("rendered page parses");
        assert_eq!(families.len(), 3);
        assert_eq!(families[0].name, "a_total");
        assert_eq!(families[0].kind, "counter");
        assert_eq!(
            families[0].samples[0].labels,
            vec![("route".into(), "/x".into())]
        );
        assert_eq!(families[0].samples[0].value, 5.0);
        assert_eq!(families[1].samples[0].value, -3.0);
        // 20 buckets + +Inf + sum + count
        assert_eq!(families[2].samples.len(), LATENCY_BUCKETS.len() + 3);
    }

    #[test]
    fn parse_unescapes_label_values() {
        let text = "# HELP e_total h\n# TYPE e_total counter\ne_total{v=\"a\\\"b\\\\c\\nd\"} 1\n";
        let families = parse_text(text).unwrap();
        assert_eq!(families[0].samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn malformed_pages_fail_by_name() {
        for (bad, needle) in [
            ("# TYPE x counter\nx 1\n", "without a preceding HELP"),
            ("# HELP x h\n# TYPE x widget\n", "unknown type"),
            (
                "# HELP x h\n# TYPE x counter\nx notanumber\n",
                "unparseable value",
            ),
            ("orphan 1\n", "without a TYPE header"),
            (
                "# HELP x h\n# TYPE x counter\nx{v=\"open 1\n",
                "unterminated",
            ),
        ] {
            let err = parse_text(bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn lint_passes_a_clean_scrape_pair() {
        let (reg, first) = page();
        reg.counter("a_total", "Things.", &[("route", "/x")]).add(2);
        let second = reg.render();
        let prev = parse_text(&first).unwrap();
        let cur = parse_text(&second).unwrap();
        assert_eq!(lint(Some(&prev), &cur), Vec::<String>::new());
        assert_eq!(lint(None, &cur), Vec::<String>::new());
    }

    #[test]
    fn lint_catches_backwards_counters_dupes_and_kind_changes() {
        let (_r, first) = page();
        let prev = parse_text(&first).unwrap();

        let shrunk = first.replace("a_total{route=\"/x\"} 5", "a_total{route=\"/x\"} 4");
        let cur = parse_text(&shrunk).unwrap();
        assert!(lint(Some(&prev), &cur)
            .iter()
            .any(|p| p.contains("moved backwards")));

        let dup = format!("{first}# HELP a_total Things.\n# TYPE a_total counter\na_total 0\n");
        let cur = parse_text(&dup).unwrap();
        assert!(lint(None, &cur)
            .iter()
            .any(|p| p.contains("duplicate family")));

        let flipped = first.replace("# TYPE a_total counter", "# TYPE a_total gauge");
        let cur = parse_text(&flipped).unwrap();
        assert!(lint(Some(&prev), &cur)
            .iter()
            .any(|p| p.contains("changed kind")));
    }

    #[test]
    fn lint_catches_non_cumulative_buckets() {
        let text = "\
# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le=\"0.1\"} 5
h_seconds_bucket{le=\"+Inf\"} 3
h_seconds_sum 0.2
h_seconds_count 3
";
        let cur = parse_text(text).unwrap();
        let problems = lint(None, &cur);
        assert!(
            problems.iter().any(|p| p.contains("not cumulative")),
            "{problems:?}"
        );
    }
}
