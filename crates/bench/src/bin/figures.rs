//! Regenerates every table and figure of the SilkMoth paper's evaluation
//! (§8) as text, at a configurable scale.
//!
//! ```text
//! cargo run --release -p silkmoth-bench --bin figures -- all
//! cargo run --release -p silkmoth-bench --bin figures -- fig5 --sets 8000
//! cargo run --release -p silkmoth-bench --bin figures -- table3 fig4 fig7
//! ```
//!
//! Absolute times will differ from the paper (different hardware, synthetic
//! data, smaller default scale); the *shapes* — which configuration wins,
//! by roughly what factor, and how curves move with θ and α — are the
//! reproduction target. EXPERIMENTS.md records a full paper-vs-measured
//! comparison.

use silkmoth_bench::{noopt_config, opt_config, Application, Workload, THETAS};
use silkmoth_core::{FilterKind, SignatureScheme};

struct Args {
    figures: Vec<String>,
    sets: Option<usize>,
}

fn parse_args() -> Args {
    let mut figures = Vec::new();
    let mut sets = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sets" => {
                sets = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--sets needs a number"),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [all|table3|fig4|fig5|fig6|fig7|fig8|fig9]... [--sets N]"
                );
                std::process::exit(0);
            }
            other => figures.push(other.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Args { figures, sets }
}

fn main() {
    let args = parse_args();
    let all = args.figures.iter().any(|f| f == "all");
    let want = |name: &str| all || args.figures.iter().any(|f| f == name);

    // Laptop-scale defaults chosen so `all` completes in a few minutes.
    let default_sets = args.sets.unwrap_or(4000);

    if want("table3") {
        table3(default_sets);
    }
    if want("fig4") {
        fig4(default_sets);
    }
    if want("fig5") {
        fig5(default_sets);
    }
    if want("fig6") {
        fig6(default_sets);
    }
    if want("fig7") {
        fig7(args.sets.unwrap_or(600));
    }
    if want("fig8") {
        fig8(default_sets);
    }
    if want("fig9") {
        fig9(default_sets);
    }
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Table 3: dataset details.
fn table3(sets: usize) {
    header("Table 3: The Dataset Details");
    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>12} {:>10}  problem/metric/φ",
        "Application", "#Sets", "Elems/Set", "Tokens/Elem", "Tokens", "Postings"
    );
    for app in Application::ALL {
        let w = Workload::build(app, sets, app.default_alpha());
        let s = w.collection.stats();
        let (problem, metric, phi) = match app {
            Application::StringMatching => ("Discovery", "SET-SIMILARITY", "Eds"),
            Application::SchemaMatching => ("Discovery", "SET-SIMILARITY", "Jac"),
            Application::InclusionDependency => ("Search", "SET-CONTAINMENT", "Jac"),
        };
        println!(
            "{:<22} {:>8} {:>10.1} {:>12.1} {:>12} {:>10}  {}/{}/{}  (δ=0.7..0.85, α={})",
            app.name(),
            s.num_sets,
            s.avg_elems_per_set,
            s.avg_tokens_per_elem,
            s.distinct_tokens,
            s.total_postings,
            problem,
            metric,
            phi,
            app.default_alpha(),
        );
    }
}

/// Figure 4: overall performance gains of SilkMoth's optimizations.
fn fig4(sets: usize) {
    header("Figure 4: Overall performance gains (NOOPT vs OPT, defaults δ=0.7)");
    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>8}",
        "Application", "NOOPT (s)", "OPT (s)", "speedup", "pairs"
    );
    for app in Application::ALL {
        let w = Workload::build(app, sets, app.default_alpha());
        let delta = app.default_delta();
        let noopt = w.run(noopt_config(&w, delta));
        let opt = w.run(opt_config(&w, delta));
        assert_eq!(noopt.pairs, opt.pairs, "exactness violated");
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>8.1}x {:>8}",
            app.name(),
            noopt.seconds,
            opt.seconds,
            noopt.seconds / opt.seconds,
            opt.pairs
        );
    }
}

/// Figure 5: signature schemes vs θ (filters and reduction disabled).
fn fig5(sets: usize) {
    let schemes = [
        ("WEIGHTED", SignatureScheme::Weighted),
        ("COMBUNWEIGHTED", SignatureScheme::CombinedUnweighted),
        ("SKYLINE", SignatureScheme::Skyline),
        ("DICHOTOMY", SignatureScheme::Dichotomy),
    ];
    for (panel, app) in [
        ("5a", Application::StringMatching),
        ("5b", Application::SchemaMatching),
        ("5c", Application::InclusionDependency),
    ] {
        let alpha = match app {
            Application::StringMatching => 0.8,
            Application::SchemaMatching => 0.0,
            Application::InclusionDependency => 0.5,
        };
        header(&format!(
            "Figure {panel}: {} (α={alpha}) — signature schemes, no filters",
            app.name()
        ));
        let w = Workload::build(app, sets, alpha);
        print!("{:<8}", "θ");
        for (name, _) in &schemes {
            print!(" {name:>15}");
        }
        println!("   (seconds; candidates in parens)");
        for &theta in &THETAS {
            print!("{theta:<8.2}");
            for &(name, scheme) in &schemes {
                // COMBUNWEIGHTED at α = 0 degenerates to plain unweighted.
                let scheme = if alpha == 0.0 && scheme == SignatureScheme::CombinedUnweighted {
                    SignatureScheme::Unweighted
                } else {
                    scheme
                };
                let out = w.run(w.config(theta, scheme, FilterKind::None, false));
                let _ = name;
                print!(" {:>7.2} ({:>5})", out.seconds, out.stats.candidates);
            }
            println!();
        }
    }
}

/// Figure 6: filters vs θ (dichotomy scheme, no reduction).
fn fig6(sets: usize) {
    let filters = [
        ("NOFILTER", FilterKind::None),
        ("CHECK", FilterKind::Check),
        ("NEARESTNEIGHBOR", FilterKind::CheckAndNearestNeighbor),
    ];
    for (panel, app) in [
        ("6a", Application::StringMatching),
        ("6b", Application::SchemaMatching),
        ("6c", Application::InclusionDependency),
    ] {
        let alpha = app.default_alpha();
        header(&format!(
            "Figure {panel}: {} (α={alpha}) — refinement filters",
            app.name()
        ));
        let w = Workload::build(app, sets, alpha);
        print!("{:<8}", "θ");
        for (name, _) in &filters {
            print!(" {name:>17}");
        }
        println!("   (seconds; verified pairs in parens)");
        for &theta in &THETAS {
            print!("{theta:<8.2}");
            for &(_, filter) in &filters {
                let out = w.run(w.config(theta, SignatureScheme::Dichotomy, filter, false));
                print!(" {:>9.2} ({:>5})", out.seconds, out.stats.verified);
            }
            println!();
        }
    }
}

/// Figure 7: reduction-based verification (inclusion dependency, α = 0,
/// sets with ≥ 100 elements).
fn fig7(sets: usize) {
    header("Figure 7: Reduction-based verification — Inclusion Dependency (α=0, |sets|≥100)");
    let w = Workload::build_reduction(sets);
    println!(
        "{:<8} {:>16} {:>14} {:>9} {:>14}",
        "θ", "NOREDUCTION (s)", "REDUCTION (s)", "gain", "ident. pairs"
    );
    for &theta in &THETAS {
        let no = w.run(w.config(
            theta,
            SignatureScheme::Dichotomy,
            FilterKind::CheckAndNearestNeighbor,
            false,
        ));
        let yes = w.run(w.config(
            theta,
            SignatureScheme::Dichotomy,
            FilterKind::CheckAndNearestNeighbor,
            true,
        ));
        assert_eq!(no.pairs, yes.pairs);
        println!(
            "{:<8.2} {:>16.3} {:>14.3} {:>8.0}% {:>14}",
            theta,
            no.seconds,
            yes.seconds,
            (no.seconds - yes.seconds) / no.seconds * 100.0,
            yes.stats.reduced_pairs
        );
    }
}

/// Figure 8: SilkMoth vs (simulated) FastJoin on string matching, varying
/// θ at α = 0.8 and varying α at θ = 0.8.
fn fig8(sets: usize) {
    header("Figure 8 (left): String matching, varying θ (α=0.8)");
    let w = Workload::build(Application::StringMatching, sets, 0.8);
    println!(
        "{:<8} {:>13} {:>13} {:>9}",
        "θ", "SILKMOTH (s)", "FASTJOIN (s)", "speedup"
    );
    for &theta in &THETAS {
        let silk = w.run(opt_config(&w, theta));
        let fast = w.run(w.config(
            theta,
            SignatureScheme::CombinedUnweighted,
            FilterKind::None,
            false,
        ));
        assert_eq!(silk.pairs, fast.pairs);
        println!(
            "{:<8.2} {:>13.3} {:>13.3} {:>8.1}x",
            theta,
            silk.seconds,
            fast.seconds,
            fast.seconds / silk.seconds
        );
    }

    header("Figure 8 (right): String matching, varying α (θ=0.8)");
    println!(
        "{:<8} {:>13} {:>13} {:>9}",
        "α", "SILKMOTH (s)", "FASTJOIN (s)", "speedup"
    );
    for &alpha in &[0.70, 0.75, 0.80, 0.85] {
        let w = Workload::build(Application::StringMatching, sets, alpha);
        let silk = w.run(opt_config(&w, 0.8));
        let fast = w.run(w.config(
            0.8,
            SignatureScheme::CombinedUnweighted,
            FilterKind::None,
            false,
        ));
        assert_eq!(silk.pairs, fast.pairs);
        println!(
            "{:<8.2} {:>13.3} {:>13.3} {:>8.1}x",
            alpha,
            silk.seconds,
            fast.seconds,
            fast.seconds / silk.seconds
        );
    }
}

/// Figure 9: scalability with the number of sets (full SilkMoth).
fn fig9(base: usize) {
    for (panel, app) in [
        ("9a", Application::StringMatching),
        ("9b", Application::SchemaMatching),
        ("9c", Application::InclusionDependency),
    ] {
        let alpha = app.default_alpha();
        header(&format!(
            "Figure {panel}: Scalability — {} (α={alpha})",
            app.name()
        ));
        print!("{:<10}", "#sets");
        for &theta in &THETAS {
            print!(" {:>12}", format!("θ={theta:.2}"));
        }
        println!("   (seconds)");
        for scale in [1usize, 2, 4, 8] {
            let n = base * scale / 4;
            let w = Workload::build(app, n, alpha);
            print!("{n:<10}");
            for &theta in &THETAS {
                let out = w.run(opt_config(&w, theta));
                print!(" {:>12.3}", out.seconds);
            }
            println!();
        }
    }
}
