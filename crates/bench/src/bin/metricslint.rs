//! `metricslint` — validates saved Prometheus text-format pages with
//! the `silkmoth-telemetry` exposition linter.
//!
//! ```text
//! curl -s localhost:7700/metrics > a.prom
//! # ... traffic ...
//! curl -s localhost:7700/metrics > b.prom
//! metricslint a.prom b.prom
//! ```
//!
//! Each file must parse as valid exposition text; with two or more
//! files every page is additionally linted *against its predecessor*
//! (same scrape target, in scrape order), which catches drift a single
//! page can't show: counters or histogram rows moving backwards,
//! families or labelled series disappearing, a family changing kind.
//! Any problem prints one line to stderr and the exit code is 1 —
//! which is how the CI soaks fail when a scrape goes bad.
//!
//! With `--traces FILE` the tool instead validates one saved
//! `GET /debug/traces` page: valid version-1 JSON, every trace carries
//! a root span (index 0, no parent) and in-range parent links.
//! `--require-route R` additionally demands at least one trace for
//! route `R`, and `--require-slow` one slow-query-captured trace — how
//! the CI soaks prove the adversarial query actually landed in the
//! ring.

use silkmoth_server::json::Json;
use silkmoth_telemetry::expo;
use std::process::exit;

const USAGE: &str = "\
usage: metricslint FILE [FILE...]   (FILEs are scrapes of one target, oldest first)
       metricslint --traces FILE [--require-route R] [--require-slow]";

/// Validates one `/debug/traces` page; returns the problems found.
fn lint_traces(text: &str, require_route: Option<&str>, require_slow: bool) -> Vec<String> {
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let mut problems = Vec::new();
    if doc.get("version").and_then(Json::as_usize) != Some(1) {
        problems.push("page version is not 1".into());
    }
    let Some(traces) = doc.get("traces").and_then(Json::as_array) else {
        problems.push("page has no traces array".into());
        return problems;
    };
    let mut saw_route = false;
    let mut saw_slow = false;
    for t in traces {
        let id = t.get("id").and_then(Json::as_usize).unwrap_or(0);
        let Some(spans) = t.get("spans").and_then(Json::as_array) else {
            problems.push(format!("trace {id}: no spans array"));
            continue;
        };
        match spans.first() {
            Some(root) if root.get("parent") == Some(&Json::Null) => {}
            Some(_) => problems.push(format!("trace {id}: span 0 is not a root span")),
            None => problems.push(format!("trace {id}: empty span tree")),
        }
        for (i, span) in spans.iter().enumerate() {
            if span
                .get("kind")
                .and_then(Json::as_str)
                .is_none_or(str::is_empty)
            {
                problems.push(format!("trace {id}: span {i} has no kind"));
            }
            if let Some(parent) = span.get("parent").and_then(Json::as_usize) {
                if parent >= spans.len() {
                    problems.push(format!("trace {id}: span {i} parent {parent} out of range"));
                }
            }
        }
        if let Some(route) = require_route {
            saw_route |= t.get("route").and_then(Json::as_str) == Some(route);
        }
        saw_slow |= t.get("slow") == Some(&Json::Bool(true));
    }
    if let Some(route) = require_route {
        if !saw_route {
            problems.push(format!(
                "no trace for required route {route} among {} trace(s)",
                traces.len()
            ));
        }
    }
    if require_slow && !saw_slow {
        problems.push(format!(
            "no slow-query-captured trace among {} trace(s)",
            traces.len()
        ));
    }
    problems
}

/// Bounded-cardinality check for the catalog's per-tenant label: a
/// page that declares `silkmoth_catalog_collections_max` (every
/// catalog-fronted server does) must not carry more distinct
/// `collection` label values than that bound across all families —
/// that gauge IS the declared cardinality contract, so a page
/// violating it means tenant names leaked past the registry bound.
fn lint_collection_cardinality(families: &[expo::ParsedFamily]) -> Vec<String> {
    let Some(max) = families
        .iter()
        .find(|f| f.name == "silkmoth_catalog_collections_max")
        .and_then(|f| f.samples.first())
        .map(|s| s.value)
    else {
        return Vec::new(); // not a catalog server page
    };
    let mut values: Vec<&str> = families
        .iter()
        .flat_map(|f| &f.samples)
        .flat_map(|s| &s.labels)
        .filter(|(k, _)| k == "collection")
        .map(|(_, v)| v.as_str())
        .collect();
    values.sort_unstable();
    values.dedup();
    // The default collection's series carry no label, so the bound on
    // labelled values is max - 1.
    let bound = (max as usize).saturating_sub(1);
    if values.len() > bound {
        return vec![format!(
            "collection label has {} distinct values, past the declared \
             silkmoth_catalog_collections_max bound of {max} ({} labelled): {}",
            values.len(),
            bound,
            values.join(", ")
        )];
    }
    Vec::new()
}

fn run_traces_mode(args: &[String]) -> ! {
    let mut file: Option<&str> = None;
    let mut require_route: Option<&str> = None;
    let mut require_slow = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-route" => match it.next() {
                Some(r) => require_route = Some(r),
                None => {
                    eprintln!("{USAGE}");
                    exit(2);
                }
            },
            "--require-slow" => require_slow = true,
            f if file.is_none() && !f.starts_with("--") => file = Some(f),
            _ => {
                eprintln!("{USAGE}");
                exit(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        exit(2);
    };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{file}: {e}");
            exit(2);
        }
    };
    let problems = lint_traces(&text, require_route, require_slow);
    for p in &problems {
        eprintln!("{file}: {p}");
    }
    if problems.is_empty() {
        println!("metricslint: traces page clean");
        exit(0);
    }
    eprintln!("metricslint: {} problem(s)", problems.len());
    exit(1);
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.first().map(String::as_str) == Some("--traces") {
        run_traces_mode(&files[1..]);
    }
    if files.is_empty() || files.iter().any(|f| f == "--help" || f == "-h") {
        eprintln!("{USAGE}");
        exit(2);
    }
    let mut problems = 0usize;
    let mut prev: Option<Vec<expo::ParsedFamily>> = None;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                exit(2);
            }
        };
        match expo::parse_text(&text) {
            Ok(cur) => {
                for p in expo::lint(prev.as_deref(), &cur) {
                    eprintln!("{file}: {p}");
                    problems += 1;
                }
                for p in lint_collection_cardinality(&cur) {
                    eprintln!("{file}: {p}");
                    problems += 1;
                }
                prev = Some(cur);
            }
            Err(e) => {
                eprintln!("{file}: {e}");
                problems += 1;
                // A page that didn't parse can't serve as the baseline
                // for the next one.
                prev = None;
            }
        }
    }
    if problems > 0 {
        eprintln!(
            "metricslint: {problems} problem(s) across {} page(s)",
            files.len()
        );
        exit(1);
    }
    println!("metricslint: {} page(s) clean", files.len());
}
