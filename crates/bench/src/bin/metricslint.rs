//! `metricslint` — validates saved Prometheus text-format pages with
//! the `silkmoth-telemetry` exposition linter.
//!
//! ```text
//! curl -s localhost:7700/metrics > a.prom
//! # ... traffic ...
//! curl -s localhost:7700/metrics > b.prom
//! metricslint a.prom b.prom
//! ```
//!
//! Each file must parse as valid exposition text; with two or more
//! files every page is additionally linted *against its predecessor*
//! (same scrape target, in scrape order), which catches drift a single
//! page can't show: counters or histogram rows moving backwards,
//! families or labelled series disappearing, a family changing kind.
//! Any problem prints one line to stderr and the exit code is 1 —
//! which is how the CI soaks fail when a scrape goes bad.

use silkmoth_telemetry::expo;
use std::process::exit;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|f| f == "--help" || f == "-h") {
        eprintln!(
            "usage: metricslint FILE [FILE...]   (FILEs are scrapes of one target, oldest first)"
        );
        exit(2);
    }
    let mut problems = 0usize;
    let mut prev: Option<Vec<expo::ParsedFamily>> = None;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                exit(2);
            }
        };
        match expo::parse_text(&text) {
            Ok(cur) => {
                for p in expo::lint(prev.as_deref(), &cur) {
                    eprintln!("{file}: {p}");
                    problems += 1;
                }
                prev = Some(cur);
            }
            Err(e) => {
                eprintln!("{file}: {e}");
                problems += 1;
                // A page that didn't parse can't serve as the baseline
                // for the next one.
                prev = None;
            }
        }
    }
    if problems > 0 {
        eprintln!(
            "metricslint: {problems} problem(s) across {} page(s)",
            files.len()
        );
        exit(1);
    }
    println!("metricslint: {} page(s) clean", files.len());
}
