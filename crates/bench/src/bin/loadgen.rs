//! `loadgen` — drives concurrent `/search` (or, with `--batch N`,
//! `/search/batch`) traffic against a running `silkmoth serve` instance
//! over real TCP and reports throughput and latency percentiles.
//!
//! ```text
//! silkmoth serve --input data.sets --port 7700 --shards 4 &
//! loadgen --addr 127.0.0.1:7700 --threads 8 --requests 200 --k 10 --floor 0.3
//! loadgen --addr 127.0.0.1:7700 --batch 16 --requests 50
//! ```
//!
//! References are drawn from the deterministic datagen schema workload
//! (`--sets` controls its size), so runs are reproducible without a
//! dataset file. Each worker thread holds one keep-alive connection and
//! issues requests back to back — the closed-loop load model.
//!
//! With `--batch N` each HTTP request carries N query specs; the report
//! then shows **per-request** latency percentiles alongside the
//! amortized **per-query** latency (request latency / N), which is what
//! the batch API buys.

use silkmoth_server::json::{obj, Json};
use silkmoth_server::read_simple_response;
use silkmoth_telemetry::expo;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

struct Opts {
    addr: String,
    threads: usize,
    requests: usize,
    k: usize,
    floor: f64,
    sets: usize,
    batch: usize,
    tenants: usize,
    json_out: Option<String>,
    label: Option<String>,
    dump_sets: Option<String>,
    scrape_metrics_ms: Option<u64>,
    trace_sample: Option<u64>,
}

/// Version of the `--json-out` report schema.
const REPORT_VERSION: u64 = 1;

const USAGE: &str = "\
usage: loadgen --addr HOST:PORT [options]

options:
  --addr A       server address, e.g. 127.0.0.1:7700   (required)
  --threads N    concurrent client connections          (default: 4)
  --requests N   requests per connection                (default: 100)
  --k K          top-k per search                       (default: 10)
  --floor F      relatedness floor per search           (default: 0.3)
  --sets N       datagen corpus size to draw references from (default: 200)
  --batch N      queries per request: 1 posts /search, >1 posts
                 /search/batch with N specs per body    (default: 1)
  --tenants N    multi-tenant mode: create catalog collections
                 loadgen-t0..loadgen-t{N-1} (seeding each with the
                 --sets corpus), round-robin the search traffic across
                 their scoped routes, and report per-tenant latency
                 percentiles alongside the aggregate
  --json-out F   also write the report as one versioned JSON object
                 to F ('-' for stdout)
  --label L      scenario name recorded in the JSON report
  --dump-sets F  write the deterministic --sets corpus to F in
                 `silkmoth serve --input` format and exit — serve this
                 file and the generated references actually match it
  --scrape-metrics N
                 also poll GET /metrics every N ms during the run on a
                 separate connection, validate every page with the
                 exposition linter, and report scrape count + latency —
                 measures what monitoring costs under load
  --trace-sample N
                 record that the target serves with --trace-sample N and
                 probe GET /debug/traces after the run, reporting how
                 many traces the ring retained — pairs of runs with and
                 without this measure tracing overhead
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: String::new(),
        threads: 4,
        requests: 100,
        k: 10,
        floor: 0.3,
        sets: 200,
        batch: 1,
        tenants: 0,
        json_out: None,
        label: None,
        dump_sets: None,
        scrape_metrics_ms: None,
        trace_sample: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || {
            args.next()
                .unwrap_or_else(|| fail(&format!("missing value for {a}")))
        };
        match a.as_str() {
            "--addr" => opts.addr = val(),
            "--threads" => opts.threads = val().parse().unwrap_or_else(|_| fail("bad --threads")),
            "--requests" => {
                opts.requests = val().parse().unwrap_or_else(|_| fail("bad --requests"))
            }
            "--k" => opts.k = val().parse().unwrap_or_else(|_| fail("bad --k")),
            "--floor" => opts.floor = val().parse().unwrap_or_else(|_| fail("bad --floor")),
            "--sets" => opts.sets = val().parse().unwrap_or_else(|_| fail("bad --sets")),
            "--batch" => opts.batch = val().parse().unwrap_or_else(|_| fail("bad --batch")),
            "--tenants" => opts.tenants = val().parse().unwrap_or_else(|_| fail("bad --tenants")),
            "--json-out" => opts.json_out = Some(val()),
            "--label" => opts.label = Some(val()),
            "--dump-sets" => opts.dump_sets = Some(val()),
            "--scrape-metrics" => {
                opts.scrape_metrics_ms = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| fail("bad --scrape-metrics")),
                )
            }
            "--trace-sample" => {
                opts.trace_sample =
                    Some(val().parse().unwrap_or_else(|_| fail("bad --trace-sample")))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown option {other}")),
        }
    }
    if opts.addr.is_empty() && opts.dump_sets.is_none() {
        fail("--addr is required");
    }
    if opts.batch == 0 {
        fail("--batch must be at least 1");
    }
    opts
}

fn send(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, Vec<u8>), String> {
    // One write_all for the whole request: write! would issue a syscall
    // (and a TCP segment) per format fragment.
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len(),
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("sending request: {e}"))?;
    read_simple_response(reader).map_err(|e| format!("reading response: {e}"))
}

/// Multi-tenant setup: create `loadgen-t0..` catalog collections and
/// seed each with the deterministic corpus, so every tenant answers the
/// reference pool with the same scores. A collection left over from an
/// earlier run (409 on create) is reused as-is.
fn setup_tenants(
    addr: &str,
    tenants: usize,
    corpus: &[Vec<String>],
) -> Result<Vec<String>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let seed_body = obj(vec![(
        "sets",
        Json::Arr(
            corpus
                .iter()
                .map(|s| Json::Arr(s.iter().map(|e| Json::Str(e.clone())).collect()))
                .collect(),
        ),
    )])
    .to_string();
    let mut names = Vec::with_capacity(tenants);
    for i in 0..tenants {
        let name = format!("loadgen-t{i}");
        let (status, body) = send(
            &mut stream,
            &mut reader,
            addr,
            "PUT",
            &format!("/collections/{name}"),
            "",
        )?;
        match status {
            200 => {
                let (status, body) = send(
                    &mut stream,
                    &mut reader,
                    addr,
                    "POST",
                    &format!("/collections/{name}/sets"),
                    &seed_body,
                )?;
                if status != 200 {
                    return Err(format!(
                        "seeding {name}: HTTP {status}: {}",
                        String::from_utf8_lossy(&body)
                    ));
                }
            }
            409 => eprintln!("# tenant {name} already exists, reusing it"),
            _ => {
                return Err(format!(
                    "creating {name}: HTTP {status}: {}",
                    String::from_utf8_lossy(&body)
                ))
            }
        }
        names.push(name);
    }
    eprintln!("# {tenants} tenants ready ({} sets each)", corpus.len());
    Ok(names)
}

fn healthcheck(addr: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let (status, body) = read_simple_response(&mut reader).map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("healthz returned {status}"));
    }
    let doc = Json::parse(std::str::from_utf8(&body).unwrap_or("")).map_err(|e| e.to_string())?;
    eprintln!(
        "# target healthy: {} sets over {} shards",
        doc.get("sets").and_then(Json::as_usize).unwrap_or(0),
        doc.get("shards").and_then(Json::as_usize).unwrap_or(0),
    );
    Ok(())
}

/// Background `/metrics` poller: one keep-alive connection scraping at
/// a fixed interval for as long as the load runs. Every page must parse
/// and pass the exposition lint against its predecessor — the same
/// monotonicity checks CI runs — so a malformed or backwards-moving
/// page under concurrent load fails the whole run.
fn scrape_metrics(
    addr: &str,
    interval: Duration,
    done: &AtomicBool,
) -> (Vec<Duration>, Vec<String>) {
    let mut latencies = Vec::new();
    let mut problems = Vec::new();
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (
            latencies,
            vec![format!("scraper: connecting to {addr} failed")],
        );
    };
    let _ = stream.set_nodelay(true);
    let Ok(clone) = stream.try_clone() else {
        return (
            latencies,
            vec!["scraper: cloning the connection failed".into()],
        );
    };
    let mut reader = BufReader::new(clone);
    let mut prev: Option<Vec<expo::ParsedFamily>> = None;
    while !done.load(Ordering::Relaxed) {
        let request = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n");
        let start = Instant::now();
        if let Err(e) = stream.write_all(request.as_bytes()) {
            problems.push(format!("scraper: sending request: {e}"));
            break;
        }
        match read_simple_response(&mut reader) {
            Ok((200, body)) => {
                latencies.push(start.elapsed());
                let text = match std::str::from_utf8(&body) {
                    Ok(t) => t,
                    Err(e) => {
                        problems.push(format!("scrape {}: not UTF-8: {e}", latencies.len()));
                        continue;
                    }
                };
                match expo::parse_text(text) {
                    Ok(cur) => {
                        problems.extend(expo::lint(prev.as_deref(), &cur));
                        prev = Some(cur);
                    }
                    Err(e) => problems.push(format!("scrape {}: {e}", latencies.len())),
                }
            }
            Ok((status, _)) => problems.push(format!("scraper: /metrics returned HTTP {status}")),
            Err(e) => {
                problems.push(format!("scraper: reading response: {e}"));
                break;
            }
        }
        std::thread::sleep(interval);
    }
    (latencies, problems)
}

/// One-shot `GET /debug/traces` probe: the page must be valid JSON with
/// a root `http`/`apply` span on every trace; returns the retained
/// count.
fn probe_traces(addr: &str) -> Result<usize, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        stream,
        "GET /debug/traces HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let (status, body) = read_simple_response(&mut reader).map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("/debug/traces returned {status}"));
    }
    let doc = Json::parse(std::str::from_utf8(&body).map_err(|e| e.to_string())?)
        .map_err(|e| format!("/debug/traces is not valid JSON: {e}"))?;
    if doc.get("version").and_then(Json::as_usize) != Some(1) {
        return Err("/debug/traces version is not 1".into());
    }
    let traces = doc
        .get("traces")
        .and_then(Json::as_array)
        .ok_or("/debug/traces has no traces array")?;
    for t in traces {
        let spans = t
            .get("spans")
            .and_then(Json::as_array)
            .ok_or("trace has no spans array")?;
        let root_ok = spans
            .first()
            .is_some_and(|sp| sp.get("parent") == Some(&Json::Null));
        if !root_ok {
            return Err(format!(
                "trace {} has no root span",
                t.get("id").and_then(Json::as_usize).unwrap_or(0)
            ));
        }
    }
    Ok(traces.len())
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Counts `results` rows in a `/search` body, or across every entry of
/// a `/search/batch` `outputs` array.
fn count_results(body: &[u8]) -> usize {
    let Some(doc) = std::str::from_utf8(body)
        .ok()
        .and_then(|t| Json::parse(t).ok())
    else {
        return 0;
    };
    let one = |d: &Json| {
        d.get("results")
            .and_then(Json::as_array)
            .map_or(0, <[_]>::len)
    };
    match doc.get("outputs").and_then(Json::as_array) {
        Some(outputs) => outputs.iter().map(one).sum(),
        None => one(&doc),
    }
}

fn main() {
    let opts = parse_opts();
    // A deterministic pool of references: perturbed slices of the datagen
    // schema corpus, so some match and some don't.
    let corpus = silkmoth_datagen::webtable_schemas(&silkmoth_datagen::SchemaConfig {
        num_sets: opts.sets,
        ..Default::default()
    });
    if let Some(path) = &opts.dump_sets {
        let mut out = String::new();
        for set in &corpus {
            out.push_str(&set.join("|"));
            out.push('\n');
        }
        if let Err(e) = std::fs::write(path, out) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("# wrote {} sets to {path}", corpus.len());
        exit(0);
    }
    if let Err(e) = healthcheck(&opts.addr) {
        fail(&e);
    }
    let tenant_names = if opts.tenants > 0 {
        setup_tenants(&opts.addr, opts.tenants, &corpus).unwrap_or_else(|e| fail(&e))
    } else {
        Vec::new()
    };
    let specs: Vec<Json> = corpus
        .iter()
        .map(|set| {
            let elems: Vec<Json> = set
                .iter()
                .step_by(2)
                .map(|e| Json::Str(e.clone()))
                .collect();
            obj(vec![
                ("reference", Json::Arr(elems)),
                ("k", Json::Num(opts.k as f64)),
                ("floor", Json::Num(opts.floor)),
            ])
        })
        .collect();
    // Pre-render every request body this run can issue: /search takes
    // one spec, /search/batch a window of `--batch` consecutive specs.
    let (path, bodies): (&str, Vec<String>) = if opts.batch == 1 {
        ("/search", specs.iter().map(Json::to_string).collect())
    } else {
        let batched = specs
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let window: Vec<Json> = (0..opts.batch)
                    .map(|j| specs[(i + j) % specs.len()].clone())
                    .collect();
                obj(vec![("queries", Json::Arr(window))]).to_string()
            })
            .collect();
        ("/search/batch", batched)
    };

    eprintln!(
        "# {} threads x {} requests x {} queries/request against {}{}{} (k={}, floor={})",
        opts.threads,
        opts.requests,
        opts.batch,
        opts.addr,
        path,
        if opts.tenants > 0 {
            format!(" round-robin over {} tenants", opts.tenants)
        } else {
            String::new()
        },
        opts.k,
        opts.floor
    );
    let t0 = Instant::now();
    // Latencies keep the tenant index they were measured against
    // (always 0 in single-tenant mode) so the report can slice
    // per-tenant percentiles out of one pass.
    let mut tenant_latencies: Vec<Vec<Duration>> = vec![Vec::new(); opts.tenants.max(1)];
    let mut total_results = 0usize;
    let mut errors = 0usize;
    let done = AtomicBool::new(false);
    let mut scrape_outcome: Option<(Vec<Duration>, Vec<String>)> = None;
    std::thread::scope(|scope| {
        let scraper = opts.scrape_metrics_ms.map(|interval_ms| {
            let addr = &opts.addr;
            let done = &done;
            scope.spawn(move || scrape_metrics(addr, Duration::from_millis(interval_ms), done))
        });
        let handles: Vec<_> = (0..opts.threads)
            .map(|tid| {
                let bodies = &bodies;
                let opts = &opts;
                let tenant_names = &tenant_names;
                scope.spawn(move || {
                    let mut latencies: Vec<(usize, Duration)> = Vec::with_capacity(opts.requests);
                    let mut results = 0usize;
                    let mut errors = 0usize;
                    let Ok(mut stream) = TcpStream::connect(&opts.addr) else {
                        return (latencies, 0, opts.requests);
                    };
                    // Each request is one small write; don't let Nagle
                    // hold it for the previous response's ACK.
                    let _ = stream.set_nodelay(true);
                    let Ok(clone) = stream.try_clone() else {
                        return (latencies, 0, opts.requests);
                    };
                    let mut reader = BufReader::new(clone);
                    for i in 0..opts.requests {
                        let body = &bodies[(tid * opts.requests + i) % bodies.len()];
                        let (tenant, request_path) = if opts.tenants > 0 {
                            let t = (tid * opts.requests + i) % opts.tenants;
                            (t, format!("/collections/{}{path}", tenant_names[t]))
                        } else {
                            (0, path.to_owned())
                        };
                        let start = Instant::now();
                        match send(
                            &mut stream,
                            &mut reader,
                            &opts.addr,
                            "POST",
                            &request_path,
                            body,
                        ) {
                            Ok((200, resp)) => {
                                latencies.push((tenant, start.elapsed()));
                                results += count_results(&resp);
                            }
                            Ok((status, _)) => {
                                eprintln!("# thread {tid}: request {i} got HTTP {status}");
                                errors += 1;
                            }
                            Err(e) => {
                                eprintln!("# thread {tid}: request {i} failed: {e}");
                                // The failed request plus everything this
                                // connection never got to issue.
                                errors += opts.requests - i;
                                break;
                            }
                        }
                    }
                    (latencies, results, errors)
                })
            })
            .collect();
        for h in handles {
            let (latencies, results, errs) = h.join().expect("client thread panicked");
            for (tenant, latency) in latencies {
                tenant_latencies[tenant].push(latency);
            }
            total_results += results;
            errors += errs;
        }
        done.store(true, Ordering::Relaxed);
        if let Some(h) = scraper {
            scrape_outcome = Some(h.join().expect("scraper thread panicked"));
        }
    });
    let elapsed = t0.elapsed();

    let mut all_latencies: Vec<Duration> = tenant_latencies.iter().flatten().copied().collect();
    all_latencies.sort_unstable();
    let ok = all_latencies.len();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mean = if ok > 0 {
        all_latencies.iter().sum::<Duration>() / ok as u32
    } else {
        Duration::ZERO
    };
    println!(
        "requests {} ok {} errors {} in {:.3}s  ({:.1} req/s, {:.1} queries/s, {} result rows)",
        opts.threads * opts.requests,
        ok,
        errors,
        elapsed.as_secs_f64(),
        ok as f64 / elapsed.as_secs_f64(),
        (ok * opts.batch) as f64 / elapsed.as_secs_f64(),
        total_results,
    );
    println!(
        "per-request latency ms  mean {:.2}  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        ms(mean),
        ms(percentile(&all_latencies, 0.50)),
        ms(percentile(&all_latencies, 0.90)),
        ms(percentile(&all_latencies, 0.99)),
        ms(percentile(&all_latencies, 1.0)),
    );
    if opts.tenants > 0 {
        for (t, name) in tenant_names.iter().enumerate() {
            let mut sorted = tenant_latencies[t].clone();
            sorted.sort_unstable();
            println!(
                "tenant {name}  ok {}  latency ms  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
                sorted.len(),
                ms(percentile(&sorted, 0.50)),
                ms(percentile(&sorted, 0.90)),
                ms(percentile(&sorted, 0.99)),
                ms(percentile(&sorted, 1.0)),
            );
        }
    }
    if let Some((scrapes, problems)) = &scrape_outcome {
        let scrape_mean = if scrapes.is_empty() {
            Duration::ZERO
        } else {
            scrapes.iter().sum::<Duration>() / scrapes.len() as u32
        };
        let scrape_max = scrapes.iter().max().copied().unwrap_or(Duration::ZERO);
        println!(
            "metrics scrapes {}  latency ms  mean {:.2}  max {:.2}  lint problems {}",
            scrapes.len(),
            ms(scrape_mean),
            ms(scrape_max),
            problems.len(),
        );
        for p in problems {
            eprintln!("# metrics lint: {p}");
        }
    }
    let traces_captured = opts.trace_sample.map(|n| match probe_traces(&opts.addr) {
        Ok(count) => {
            println!("traces captured {count}  (server --trace-sample {n})");
            count
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    });
    if opts.batch > 1 {
        // The amortized cost of one query inside a batch — the number to
        // compare against the per-request line of a --batch 1 run.
        let per_query = |d: Duration| ms(d) / opts.batch as f64;
        println!(
            "per-query  latency ms  mean {:.2}  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}  (batch {})",
            per_query(mean),
            per_query(percentile(&all_latencies, 0.50)),
            per_query(percentile(&all_latencies, 0.90)),
            per_query(percentile(&all_latencies, 0.99)),
            per_query(percentile(&all_latencies, 1.0)),
            opts.batch,
        );
    }
    if let Some(out) = &opts.json_out {
        let latency = |scale: f64| {
            obj(vec![
                ("mean", Json::Num(ms(mean) / scale)),
                (
                    "p50",
                    Json::Num(ms(percentile(&all_latencies, 0.50)) / scale),
                ),
                (
                    "p90",
                    Json::Num(ms(percentile(&all_latencies, 0.90)) / scale),
                ),
                (
                    "p99",
                    Json::Num(ms(percentile(&all_latencies, 0.99)) / scale),
                ),
                (
                    "max",
                    Json::Num(ms(percentile(&all_latencies, 1.0)) / scale),
                ),
            ])
        };
        let mut fields = vec![
            ("version", Json::Num(REPORT_VERSION as f64)),
            (
                "label",
                match &opts.label {
                    Some(l) => Json::Str(l.clone()),
                    None => Json::Null,
                },
            ),
            ("addr", Json::Str(opts.addr.clone())),
            ("path", Json::Str(path.into())),
            ("threads", Json::Num(opts.threads as f64)),
            ("requests_per_thread", Json::Num(opts.requests as f64)),
            ("batch", Json::Num(opts.batch as f64)),
            ("k", Json::Num(opts.k as f64)),
            ("floor", Json::Num(opts.floor)),
            ("sets", Json::Num(opts.sets as f64)),
            ("ok", Json::Num(ok as f64)),
            ("errors", Json::Num(errors as f64)),
            ("elapsed_s", Json::Num(elapsed.as_secs_f64())),
            ("req_per_s", Json::Num(ok as f64 / elapsed.as_secs_f64())),
            (
                "queries_per_s",
                Json::Num((ok * opts.batch) as f64 / elapsed.as_secs_f64()),
            ),
            ("result_rows", Json::Num(total_results as f64)),
            (
                "trace_sample",
                match opts.trace_sample {
                    Some(n) => Json::Num(n as f64),
                    None => Json::Null,
                },
            ),
            (
                "traces_captured",
                match traces_captured {
                    Some(n) => Json::Num(n as f64),
                    None => Json::Null,
                },
            ),
            ("per_request_latency_ms", latency(1.0)),
        ];
        if opts.batch > 1 {
            fields.push(("per_query_latency_ms", latency(opts.batch as f64)));
        }
        if opts.tenants > 0 {
            let per_tenant: Vec<Json> = tenant_names
                .iter()
                .enumerate()
                .map(|(t, name)| {
                    let mut sorted = tenant_latencies[t].clone();
                    sorted.sort_unstable();
                    obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("ok", Json::Num(sorted.len() as f64)),
                        ("p50", Json::Num(ms(percentile(&sorted, 0.50)))),
                        ("p90", Json::Num(ms(percentile(&sorted, 0.90)))),
                        ("p99", Json::Num(ms(percentile(&sorted, 0.99)))),
                        ("max", Json::Num(ms(percentile(&sorted, 1.0)))),
                    ])
                })
                .collect();
            fields.push(("tenants", Json::Arr(per_tenant)));
        }
        if let Some((scrapes, problems)) = &scrape_outcome {
            let scrape_mean = if scrapes.is_empty() {
                Duration::ZERO
            } else {
                scrapes.iter().sum::<Duration>() / scrapes.len() as u32
            };
            let scrape_max = scrapes.iter().max().copied().unwrap_or(Duration::ZERO);
            fields.push(("metrics_scrapes", Json::Num(scrapes.len() as f64)));
            fields.push((
                "scrape_latency_ms",
                obj(vec![
                    ("mean", Json::Num(ms(scrape_mean))),
                    ("max", Json::Num(ms(scrape_max))),
                ]),
            ));
            fields.push((
                "scrape_problems",
                Json::Arr(problems.iter().map(|p| Json::Str(p.clone())).collect()),
            ));
        }
        let report = obj(fields).to_string();
        if out == "-" {
            println!("{report}");
        } else if let Err(e) = std::fs::write(out, format!("{report}\n")) {
            eprintln!("error: writing {out}: {e}");
            exit(1);
        }
    }
    if errors > 0 || scrape_outcome.as_ref().is_some_and(|(_, p)| !p.is_empty()) {
        exit(1);
    }
}
