//! `loadgen` — drives concurrent `/search` traffic against a running
//! `silkmoth serve` instance over real TCP and reports throughput and
//! latency percentiles.
//!
//! ```text
//! silkmoth serve --input data.sets --port 7700 --shards 4 &
//! loadgen --addr 127.0.0.1:7700 --threads 8 --requests 200 --k 10 --floor 0.3
//! ```
//!
//! References are drawn from the deterministic datagen schema workload
//! (`--sets` controls its size), so runs are reproducible without a
//! dataset file. Each worker thread holds one keep-alive connection and
//! issues requests back to back — the closed-loop load model.

use silkmoth_server::json::{obj, Json};
use silkmoth_server::read_simple_response;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::{Duration, Instant};

struct Opts {
    addr: String,
    threads: usize,
    requests: usize,
    k: usize,
    floor: f64,
    sets: usize,
}

const USAGE: &str = "\
usage: loadgen --addr HOST:PORT [options]

options:
  --addr A       server address, e.g. 127.0.0.1:7700   (required)
  --threads N    concurrent client connections          (default: 4)
  --requests N   requests per connection                (default: 100)
  --k K          top-k per search                       (default: 10)
  --floor F      relatedness floor per search           (default: 0.3)
  --sets N       datagen corpus size to draw references from (default: 200)
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: String::new(),
        threads: 4,
        requests: 100,
        k: 10,
        floor: 0.3,
        sets: 200,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || {
            args.next()
                .unwrap_or_else(|| fail(&format!("missing value for {a}")))
        };
        match a.as_str() {
            "--addr" => opts.addr = val(),
            "--threads" => opts.threads = val().parse().unwrap_or_else(|_| fail("bad --threads")),
            "--requests" => {
                opts.requests = val().parse().unwrap_or_else(|_| fail("bad --requests"))
            }
            "--k" => opts.k = val().parse().unwrap_or_else(|_| fail("bad --k")),
            "--floor" => opts.floor = val().parse().unwrap_or_else(|_| fail("bad --floor")),
            "--sets" => opts.sets = val().parse().unwrap_or_else(|_| fail("bad --sets")),
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown option {other}")),
        }
    }
    if opts.addr.is_empty() {
        fail("--addr is required");
    }
    opts
}

fn post_search(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    addr: &str,
    body: &str,
) -> Result<(u16, Vec<u8>), String> {
    // One write_all for the whole request: write! would issue a syscall
    // (and a TCP segment) per format fragment.
    let request = format!(
        "POST /search HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len(),
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("sending request: {e}"))?;
    read_simple_response(reader).map_err(|e| format!("reading response: {e}"))
}

fn healthcheck(addr: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let (status, body) = read_simple_response(&mut reader).map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("healthz returned {status}"));
    }
    let doc = Json::parse(std::str::from_utf8(&body).unwrap_or("")).map_err(|e| e.to_string())?;
    eprintln!(
        "# target healthy: {} sets over {} shards",
        doc.get("sets").and_then(Json::as_usize).unwrap_or(0),
        doc.get("shards").and_then(Json::as_usize).unwrap_or(0),
    );
    Ok(())
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let opts = parse_opts();
    if let Err(e) = healthcheck(&opts.addr) {
        fail(&e);
    }

    // A deterministic pool of references: perturbed slices of the datagen
    // schema corpus, so some match and some don't.
    let corpus = silkmoth_datagen::webtable_schemas(&silkmoth_datagen::SchemaConfig {
        num_sets: opts.sets,
        ..Default::default()
    });
    let references: Vec<String> = corpus
        .iter()
        .map(|set| {
            let elems: Vec<Json> = set
                .iter()
                .step_by(2)
                .map(|e| Json::Str(e.clone()))
                .collect();
            obj(vec![
                ("reference", Json::Arr(elems)),
                ("k", Json::Num(opts.k as f64)),
                ("floor", Json::Num(opts.floor)),
            ])
            .to_string()
        })
        .collect();

    eprintln!(
        "# {} threads x {} requests against {} (k={}, floor={})",
        opts.threads, opts.requests, opts.addr, opts.k, opts.floor
    );
    let t0 = Instant::now();
    let mut all_latencies: Vec<Duration> = Vec::new();
    let mut total_results = 0usize;
    let mut errors = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.threads)
            .map(|tid| {
                let references = &references;
                let opts = &opts;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(opts.requests);
                    let mut results = 0usize;
                    let mut errors = 0usize;
                    let Ok(mut stream) = TcpStream::connect(&opts.addr) else {
                        return (latencies, 0, opts.requests);
                    };
                    // Each request is one small write; don't let Nagle
                    // hold it for the previous response's ACK.
                    let _ = stream.set_nodelay(true);
                    let Ok(clone) = stream.try_clone() else {
                        return (latencies, 0, opts.requests);
                    };
                    let mut reader = BufReader::new(clone);
                    for i in 0..opts.requests {
                        let body = &references[(tid * opts.requests + i) % references.len()];
                        let start = Instant::now();
                        match post_search(&mut stream, &mut reader, &opts.addr, body) {
                            Ok((200, resp)) => {
                                latencies.push(start.elapsed());
                                results += std::str::from_utf8(&resp)
                                    .ok()
                                    .and_then(|t| Json::parse(t).ok())
                                    .and_then(|d| {
                                        d.get("results").and_then(Json::as_array).map(<[_]>::len)
                                    })
                                    .unwrap_or(0);
                            }
                            Ok((status, _)) => {
                                eprintln!("# thread {tid}: request {i} got HTTP {status}");
                                errors += 1;
                            }
                            Err(e) => {
                                eprintln!("# thread {tid}: request {i} failed: {e}");
                                // The failed request plus everything this
                                // connection never got to issue.
                                errors += opts.requests - i;
                                break;
                            }
                        }
                    }
                    (latencies, results, errors)
                })
            })
            .collect();
        for h in handles {
            let (latencies, results, errs) = h.join().expect("client thread panicked");
            all_latencies.extend(latencies);
            total_results += results;
            errors += errs;
        }
    });
    let elapsed = t0.elapsed();

    all_latencies.sort_unstable();
    let ok = all_latencies.len();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mean = if ok > 0 {
        all_latencies.iter().sum::<Duration>() / ok as u32
    } else {
        Duration::ZERO
    };
    println!(
        "requests {} ok {} errors {} in {:.3}s  ({:.1} req/s, {} result rows)",
        opts.threads * opts.requests,
        ok,
        errors,
        elapsed.as_secs_f64(),
        ok as f64 / elapsed.as_secs_f64(),
        total_results,
    );
    println!(
        "latency ms  mean {:.2}  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        ms(mean),
        ms(percentile(&all_latencies, 0.50)),
        ms(percentile(&all_latencies, 0.90)),
        ms(percentile(&all_latencies, 0.99)),
        ms(percentile(&all_latencies, 1.0)),
    );
    if errors > 0 {
        exit(1);
    }
}
