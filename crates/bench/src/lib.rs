//! Shared workload definitions for the SilkMoth benchmark harness.
//!
//! The three applications of §8.1 (Table 3), with laptop-scale defaults
//! and paper-scale options. Both the `figures` binary (which regenerates
//! every table and figure as text) and the criterion benches build their
//! corpora and configurations through this module so the numbers are
//! comparable.

use silkmoth_collection::{Collection, SetRecord, Tokenization};
use silkmoth_core::{Engine, EngineConfig, FilterKind, RelatednessMetric, SignatureScheme};
use silkmoth_datagen::{
    dblp_titles, pick_references, webtable_columns, webtable_schemas, ColumnsConfig, DblpConfig,
    SchemaConfig,
};
use silkmoth_text::SimilarityFunction;

/// The three evaluation applications (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Application {
    /// DBLP string matching: discovery, SET-SIMILARITY, Eds.
    StringMatching,
    /// WebTable schema matching: discovery, SET-SIMILARITY, Jaccard.
    SchemaMatching,
    /// WebTable inclusion dependency: search, SET-CONTAINMENT, Jaccard.
    InclusionDependency,
}

impl Application {
    /// All three applications.
    pub const ALL: [Application; 3] = [
        Application::StringMatching,
        Application::SchemaMatching,
        Application::InclusionDependency,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Application::StringMatching => "String Matching",
            Application::SchemaMatching => "Schema Matching",
            Application::InclusionDependency => "Inclusion Dependency",
        }
    }

    /// Default α (bold values in Table 3).
    pub fn default_alpha(&self) -> f64 {
        match self {
            Application::StringMatching => 0.8,
            Application::SchemaMatching => 0.0,
            Application::InclusionDependency => 0.5,
        }
    }

    /// Default δ (bold in Table 3: 0.7 for all).
    pub fn default_delta(&self) -> f64 {
        0.7
    }

    /// The similarity function at a given α (string matching picks the
    /// maximum legal q for α — footnote 11).
    pub fn similarity(&self, alpha: f64) -> SimilarityFunction {
        match self {
            Application::StringMatching => {
                let q = SimilarityFunction::max_q_for_alpha(alpha)
                    .expect("string matching requires α > 0.5");
                SimilarityFunction::Eds { q }
            }
            _ => SimilarityFunction::Jaccard,
        }
    }

    /// Relatedness metric (Table 3).
    pub fn metric(&self) -> RelatednessMetric {
        match self {
            Application::StringMatching | Application::SchemaMatching => {
                RelatednessMetric::Similarity
            }
            Application::InclusionDependency => RelatednessMetric::Containment,
        }
    }

    /// Discovery (self-join) vs search (reference columns).
    pub fn is_search_mode(&self) -> bool {
        matches!(self, Application::InclusionDependency)
    }
}

/// A materialized workload: tokenized collection + optional reference
/// sets.
pub struct Workload {
    /// Which application this is.
    pub app: Application,
    /// The tokenized collection, shared with the engines built on it.
    pub collection: std::sync::Arc<Collection>,
    /// Reference set indices (search mode only).
    pub reference_ids: Vec<usize>,
    /// α used to tokenize (string matching: decides q).
    pub alpha: f64,
}

impl Workload {
    /// Builds the workload at a set count. `alpha` must match the α the
    /// engine will run with (it fixes q for string matching).
    pub fn build(app: Application, num_sets: usize, alpha: f64) -> Workload {
        let (raw, reference_ids) = match app {
            Application::StringMatching => (
                dblp_titles(&DblpConfig {
                    num_sets,
                    ..Default::default()
                }),
                Vec::new(),
            ),
            Application::SchemaMatching => (
                webtable_schemas(&SchemaConfig {
                    num_sets,
                    ..Default::default()
                }),
                Vec::new(),
            ),
            Application::InclusionDependency => {
                let raw = webtable_columns(&ColumnsConfig {
                    num_sets,
                    ..Default::default()
                });
                // §8.1 uses 1000 references out of 500K; keep a similar
                // ratio but at least 50.
                let n_refs = (num_sets / 500).max(50).min(num_sets);
                let refs = pick_references(&raw, n_refs, 4, 4747);
                (raw, refs)
            }
        };
        let tokenization = match app.similarity(alpha.max(0.51)) {
            SimilarityFunction::Eds { q } | SimilarityFunction::NEds { q } => {
                Tokenization::QGram { q }
            }
            _ => Tokenization::Whitespace,
        };
        let tokenization = if app == Application::StringMatching {
            tokenization
        } else {
            Tokenization::Whitespace
        };
        Workload {
            app,
            collection: std::sync::Arc::new(Collection::build(&raw, tokenization)),
            reference_ids,
            alpha,
        }
    }

    /// Workload for the Figure 7 reduction experiment: inclusion
    /// dependency with columns of ≥ 100 elements and α = 0 (§8.4).
    pub fn build_reduction(num_sets: usize) -> Workload {
        let raw = webtable_columns(&ColumnsConfig {
            num_sets,
            values_per_set: (100, 160),
            ..Default::default()
        });
        let n_refs = (num_sets / 100).max(25).min(num_sets);
        let reference_ids = pick_references(&raw, n_refs, 4, 4848);
        Workload {
            app: Application::InclusionDependency,
            collection: std::sync::Arc::new(Collection::build(&raw, Tokenization::Whitespace)),
            reference_ids,
            alpha: 0.0,
        }
    }

    /// The engine configuration for this workload at `δ` with a given
    /// scheme/filter/reduction selection. α comes from the workload.
    pub fn config(
        &self,
        delta: f64,
        scheme: SignatureScheme,
        filter: FilterKind,
        reduction: bool,
    ) -> EngineConfig {
        let similarity = match self.app {
            Application::StringMatching => self.app.similarity(self.alpha),
            _ => SimilarityFunction::Jaccard,
        };
        EngineConfig {
            metric: self.app.metric(),
            similarity,
            delta,
            alpha: self.alpha,
            scheme,
            filter,
            reduction,
        }
    }

    /// Runs the workload once (discovery self-join or the reference
    /// search batch), returning pairs found, wall time and stats.
    pub fn run(&self, cfg: EngineConfig) -> RunOutcome {
        let engine = Engine::new(self.collection.clone(), cfg).expect("valid config");
        let t0 = std::time::Instant::now();
        let (pairs, stats) = if self.app.is_search_mode() {
            let mut total = 0usize;
            let mut stats = silkmoth_core::PassStats::default();
            for &rid in &self.reference_ids {
                let out = engine.search(self.collection.set(rid as u32));
                total += out.results.len();
                stats.merge(&out.stats);
            }
            (total, stats)
        } else {
            let out = engine.discover_self();
            (out.pairs.len(), out.stats)
        };
        RunOutcome {
            pairs,
            seconds: t0.elapsed().as_secs_f64(),
            stats,
        }
    }

    /// Reference sets as records (for custom loops).
    pub fn references(&self) -> Vec<&SetRecord> {
        self.reference_ids
            .iter()
            .map(|&rid| self.collection.set(rid as u32))
            .collect()
    }
}

/// One timed run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Number of related pairs found.
    pub pairs: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Aggregated pass counters.
    pub stats: silkmoth_core::PassStats,
}

/// The θ (= δ) sweep every figure uses.
pub const THETAS: [f64; 4] = [0.70, 0.75, 0.80, 0.85];

/// The full SilkMoth configuration (Figure 4's OPT): dichotomy signatures,
/// both filters, reduction.
pub fn opt_config(w: &Workload, delta: f64) -> EngineConfig {
    w.config(
        delta,
        SignatureScheme::Dichotomy,
        FilterKind::CheckAndNearestNeighbor,
        true,
    )
}

/// The unoptimized configuration (Figure 4's NOOPT): the state-of-the-art
/// unweighted signature scheme, no refinement, no reduction. With an α
/// threshold the combined-unweighted scheme is used (plain unweighted is
/// identical at α = 0 and invalid for edit similarity).
pub fn noopt_config(w: &Workload, delta: f64) -> EngineConfig {
    let scheme = if w.alpha > 0.0 {
        SignatureScheme::CombinedUnweighted
    } else {
        SignatureScheme::Unweighted
    };
    w.config(delta, scheme, FilterKind::None, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_run_small() {
        for app in Application::ALL {
            let w = Workload::build(app, 150, app.default_alpha());
            let out = w.run(opt_config(&w, 0.7));
            // Planted clusters must surface in every application.
            assert!(out.pairs > 0, "{app:?} found nothing");
        }
    }

    #[test]
    fn noopt_and_opt_agree() {
        for app in Application::ALL {
            let w = Workload::build(app, 120, app.default_alpha());
            let a = w.run(opt_config(&w, 0.7));
            let b = w.run(noopt_config(&w, 0.7));
            assert_eq!(a.pairs, b.pairs, "{app:?}");
        }
    }

    #[test]
    fn reduction_workload_has_large_sets() {
        let w = Workload::build_reduction(60);
        let avg = w.collection.stats().avg_elems_per_set;
        assert!(avg >= 100.0, "avg = {avg}");
        let out = w.run(opt_config(&w, 0.7));
        assert!(out.stats.reduced_pairs > 0, "reduction should fire");
    }

    #[test]
    fn string_matching_q_tracks_alpha() {
        let w = Workload::build(Application::StringMatching, 50, 0.85);
        assert_eq!(w.app.similarity(0.85), SimilarityFunction::Eds { q: 5 });
        assert_eq!(w.collection.tokenization(), Tokenization::QGram { q: 5 });
    }
}
