//! Figure 8: SilkMoth vs the (simulated) FastJoin baseline on string
//! matching (§8.5), varying θ and α.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silkmoth_bench::{opt_config, Application, Workload};
use silkmoth_core::{FilterKind, SignatureScheme};

fn bench_fastjoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/string_matching");
    group.sample_size(10);
    // Left panel: vary θ at α = 0.8.
    let w = Workload::build(Application::StringMatching, 800, 0.8);
    for theta in [0.7, 0.8] {
        let silk = opt_config(&w, theta);
        group.bench_with_input(
            BenchmarkId::new("SILKMOTH", format!("theta_{theta}")),
            &silk,
            |b, cfg| b.iter(|| w.run(*cfg).pairs),
        );
        let fast = w.config(
            theta,
            SignatureScheme::CombinedUnweighted,
            FilterKind::None,
            false,
        );
        group.bench_with_input(
            BenchmarkId::new("FASTJOIN", format!("theta_{theta}")),
            &fast,
            |b, cfg| b.iter(|| w.run(*cfg).pairs),
        );
    }
    // Right panel: vary α at θ = 0.8.
    for alpha in [0.7, 0.85] {
        let w = Workload::build(Application::StringMatching, 800, alpha);
        let silk = opt_config(&w, 0.8);
        group.bench_with_input(
            BenchmarkId::new("SILKMOTH", format!("alpha_{alpha}")),
            &silk,
            |b, cfg| b.iter(|| w.run(*cfg).pairs),
        );
        let fast = w.config(
            0.8,
            SignatureScheme::CombinedUnweighted,
            FilterKind::None,
            false,
        );
        group.bench_with_input(
            BenchmarkId::new("FASTJOIN", format!("alpha_{alpha}")),
            &fast,
            |b, cfg| b.iter(|| w.run(*cfg).pairs),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fastjoin);
criterion_main!(benches);
