//! Figure 4: overall performance gains of SilkMoth's optimizations —
//! NOOPT (unweighted signatures, no filters, no reduction) vs OPT (full
//! SilkMoth) on all three applications at default parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silkmoth_bench::{noopt_config, opt_config, Application, Workload};

fn bench_overall(c: &mut Criterion) {
    for (app, sets) in [
        (Application::StringMatching, 600),
        (Application::SchemaMatching, 600),
        (Application::InclusionDependency, 1000),
    ] {
        let w = Workload::build(app, sets, app.default_alpha());
        let delta = app.default_delta();
        let mut group = c.benchmark_group(format!("fig4/{}", app.name().replace(' ', "_")));
        group.sample_size(10);
        let noopt = noopt_config(&w, delta);
        group.bench_with_input(BenchmarkId::new("NOOPT", sets), &noopt, |b, cfg| {
            b.iter(|| w.run(*cfg).pairs)
        });
        let opt = opt_config(&w, delta);
        group.bench_with_input(BenchmarkId::new("OPT", sets), &opt, |b, cfg| {
            b.iter(|| w.run(*cfg).pairs)
        });
        group.finish();
    }
}

criterion_group!(benches, bench_overall);
criterion_main!(benches);
