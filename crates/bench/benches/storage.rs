//! Durability-layer costs: WAL-logged updates (the per-request overhead
//! `serve --data-dir` adds), snapshot encode/decode, and full crash
//! recovery (`Store::open` = newest snapshot + WAL replay).
//!
//! On this container the fsync dominates the WAL append by orders of
//! magnitude (as it should — it IS the durability), so the append
//! numbers are reported with `sync: false` to expose the CPU cost;
//! recovery numbers include index rebuilds and are the ones that bound
//! restart time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use silkmoth_collection::Collection;
use silkmoth_core::{CompactionPolicy, Engine, EngineConfig, RelatednessMetric, Update};
use silkmoth_server::{Request, SearchService, ShardedEngine};
use silkmoth_storage::{
    load_snapshot, snapshot_bytes, SnapshotMeta, Store, StoreConfig, StoreEngine,
};
use silkmoth_text::SimilarityFunction;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.6,
        0.0,
    )
}

fn corpus(n: usize) -> Vec<Vec<String>> {
    (0..n)
        .map(|i| {
            (0..3)
                .map(|j| {
                    format!(
                        "w{} w{} w{} shared{}",
                        i % 97,
                        (i + j) % 53,
                        (i * 7 + j) % 31,
                        i % 11
                    )
                })
                .collect()
        })
        .collect()
}

fn engine(n: usize) -> Engine {
    Engine::new(Collection::build(&corpus(n), cfg().tokenization()), cfg()).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "silkmoth-bench-storage-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/wal_append_nosync");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    let dir = temp_dir("append");
    let mut store = Store::create(
        &dir,
        engine(1000),
        StoreConfig {
            sync: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let set = vec!["w1 w2 w3 shared0".to_string()];
    group.bench_function(BenchmarkId::from_parameter("1k-sets"), |b| {
        b.iter(|| store.apply(Update::Append(vec![set.clone()])).unwrap())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/snapshot");
    group.sample_size(10);
    for n in [1000usize, 5000] {
        let state = engine(n).capture();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| snapshot_bytes(SnapshotMeta::default(), &state))
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/recovery");
    group.sample_size(10);
    for (n, wal) in [(1000usize, 0usize), (1000, 200), (5000, 0)] {
        let dir = temp_dir(&format!("recover-{n}-{wal}"));
        let mut store = Store::create(&dir, engine(n), StoreConfig::default()).unwrap();
        for i in 0..wal {
            store
                .apply(Update::Append(vec![vec![format!("tail set {i}")]]))
                .unwrap();
        }
        drop(store);
        group.throughput(Throughput::Elements((n + wal) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}sets+{wal}wal")),
            &dir,
            |b, dir| {
                b.iter(|| {
                    let (store, report) =
                        Store::<Engine>::open(dir, &cfg(), StoreConfig::default()).unwrap();
                    assert_eq!(report.wal_replayed, wal as u64);
                    store.engine().collection().live_len()
                })
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_snapshot_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/snapshot_load");
    group.sample_size(10);
    let dir = temp_dir("load");
    let store = Store::create(&dir, engine(5000), StoreConfig::default()).unwrap();
    drop(store);
    let path = dir.join("snapshot-0.smc");
    group.throughput(Throughput::Elements(5000));
    group.bench_function(BenchmarkId::from_parameter("5k-sets"), |b| {
        b.iter(|| load_snapshot(&path).unwrap().1.live.len())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scenario rows for `BENCH_8.json` (loadgen `REPORT_VERSION` 1
/// shape), collected as the benches run and written once at the end.
static REPORT: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn record_scenario(row: String) {
    REPORT.lock().unwrap().push(row);
}

/// One timed pass of `writers` threads each pushing `per_writer`
/// single-set appends through the service's durable update route
/// (fsync per commit batch). Returns the wall time.
fn group_commit_pass(service: &SearchService, writers: usize, per_writer: usize) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            scope.spawn(move || {
                for i in 0..per_writer {
                    let body = format!(r#"{{"sets": [["bench w{w} u{i} shared{}"]]}}"#, i % 11);
                    let resp = service.handle(&Request::new("POST", "/sets", body.into_bytes()));
                    assert_eq!(resp.status, 200);
                }
            });
        }
    });
    start.elapsed()
}

/// Commit-batch count from the service's own metrics page.
fn commit_batches(service: &SearchService) -> u64 {
    let page = service.handle(&Request::new("GET", "/metrics", Vec::new()));
    String::from_utf8(page.body)
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("silkmoth_wal_commit_batch_records_count "))
        .expect("batch histogram present")
        .trim()
        .parse::<f64>()
        .unwrap() as u64
}

fn durable_service(dir: &PathBuf) -> SearchService {
    let engine = ShardedEngine::build(&corpus(100), cfg(), 2).unwrap();
    let store = Store::create(
        dir,
        engine,
        StoreConfig {
            sync: true,
            policy: CompactionPolicy::DISABLED,
        },
    )
    .unwrap();
    SearchService::durable(store)
}

/// Durable ingest with 1/4/16 concurrent writers: the group-commit
/// acceptance bench. Contending writers share fsyncs, so throughput
/// must scale far better than fsync-per-update.
fn bench_group_commit(c: &mut Criterion) {
    // Long enough per pass that steady-state batching dominates the
    // first few small warm-up batches.
    const PER_WRITER: usize = 96;
    const PASSES: usize = 5;
    let mut group = c.benchmark_group("storage/group_commit_sync");
    group.sample_size(10);
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for writers in [1usize, 4, 16] {
        group.throughput(Throughput::Elements((writers * PER_WRITER) as u64));
        let dir = temp_dir(&format!("group-commit-{writers}"));
        let service = durable_service(&dir);
        group.bench_function(
            BenchmarkId::from_parameter(format!("{writers}-writers")),
            |b| b.iter(|| group_commit_pass(&service, writers, PER_WRITER)),
        );
        let _ = std::fs::remove_dir_all(&dir);

        // The report row measures a fresh service (absolute batch
        // counts), best of PASSES passes to damp scheduler noise.
        let dir = temp_dir(&format!("group-commit-report-{writers}"));
        let service = durable_service(&dir);
        let mut best = Duration::MAX;
        for _ in 0..PASSES {
            best = best.min(group_commit_pass(&service, writers, PER_WRITER));
        }
        let batches = commit_batches(&service);
        let total = (PASSES * writers * PER_WRITER) as u64;
        let ok = (writers * PER_WRITER) as u64;
        let req_per_s = ok as f64 / best.as_secs_f64();
        throughputs.push((writers, req_per_s));
        record_scenario(format!(
            concat!(
                "{{\"version\": 1, \"label\": \"group-commit-{}\", \"path\": \"/sets\", ",
                "\"threads\": {}, \"requests_per_thread\": {}, \"ok\": {}, \"errors\": 0, ",
                "\"elapsed_s\": {:.9}, \"req_per_s\": {:.3}, ",
                "\"commit_batches_all_passes\": {}, \"updates_per_fsync\": {:.2}}}"
            ),
            writers,
            writers,
            PER_WRITER,
            ok,
            best.as_secs_f64(),
            req_per_s,
            batches,
            total as f64 / batches as f64,
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
    let one = throughputs[0].1;
    let sixteen = throughputs[2].1;
    record_scenario(format!(
        concat!(
            "{{\"version\": 1, \"label\": \"group-commit-speedup\", ",
            "\"speedup_16_writers_vs_1\": {:.2}, \"floor\": 5.0, \"pass\": {}}}"
        ),
        sixteen / one,
        sixteen / one >= 5.0,
    ));
}

/// Crash recovery over a segmented WAL (decoded and CRC-checked in
/// parallel) vs the same history in one unbounded segment.
fn bench_parallel_recovery(c: &mut Criterion) {
    const SETS: usize = 2000;
    const WAL: usize = 1024;
    let mut group = c.benchmark_group("storage/parallel_recovery");
    group.sample_size(10);
    group.throughput(Throughput::Elements((SETS + WAL) as u64));
    for (label, policy) in [
        ("single-segment", CompactionPolicy::DISABLED),
        (
            "segmented",
            CompactionPolicy::DISABLED.segment_at_wal_bytes(4096),
        ),
    ] {
        let dir = temp_dir(&format!("parallel-recovery-{label}"));
        let store_cfg = StoreConfig {
            sync: false,
            policy,
        };
        let mut store = Store::create(&dir, engine(SETS), store_cfg).unwrap();
        for i in 0..WAL {
            store
                .apply(Update::Append(vec![vec![format!(
                    "tail set {i} shared{}",
                    i % 11
                )]]))
                .unwrap();
        }
        let segments = store.status().wal_segments;
        drop(store);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let (store, report) = Store::<Engine>::open(&dir, &cfg(), store_cfg).unwrap();
                assert_eq!(report.wal_replayed, WAL as u64);
                store.engine().collection().live_len()
            })
        });
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            let (store, report) = Store::<Engine>::open(&dir, &cfg(), store_cfg).unwrap();
            assert_eq!(report.wal_replayed, WAL as u64);
            criterion::black_box(store.engine().collection().live_len());
            best = best.min(t0.elapsed());
        }
        record_scenario(format!(
            concat!(
                "{{\"version\": 1, \"label\": \"recovery-{}\", \"sets\": {}, ",
                "\"wal_records\": {}, \"wal_segments\": {}, \"elapsed_s\": {:.9}, ",
                "\"req_per_s\": {:.3}}}"
            ),
            label,
            SETS,
            WAL,
            segments,
            best.as_secs_f64(),
            WAL as f64 / best.as_secs_f64(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Writes `BENCH_8.json` from the scenarios the benches above
/// recorded. Runs last in the group; a filtered run that skipped them
/// leaves the file untouched.
fn bench_write_report(_c: &mut Criterion) {
    let scenarios = REPORT.lock().unwrap();
    if scenarios.is_empty() {
        return;
    }
    let body = format!(
        concat!(
            "{{\n \"version\": 1,\n \"pr\": 8,\n",
            " \"note\": \"Numbers measured inside this development container (single shared ",
            "CPU, ext4, release build); compare shapes and ratios, not absolutes. Each ",
            "scenario is the best of repeated runs to damp scheduler noise.\",\n",
            " \"workload\": \"group commit: 100-set 2-shard durable SearchService, sync fsync ",
            "per commit batch, 96 single-set appends per writer; recovery: 2000-set snapshot ",
            "+ 1024 WAL records, segmented at 4096 bytes vs one unbounded segment\",\n",
            " \"scenarios\": [\n  {}\n ]\n}}\n"
        ),
        scenarios.join(",\n  "),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path, body).expect("write BENCH_8.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_snapshot_roundtrip,
    bench_snapshot_load,
    bench_recovery,
    bench_group_commit,
    bench_parallel_recovery,
    bench_write_report
);
criterion_main!(benches);
