//! Durability-layer costs: WAL-logged updates (the per-request overhead
//! `serve --data-dir` adds), snapshot encode/decode, and full crash
//! recovery (`Store::open` = newest snapshot + WAL replay).
//!
//! On this container the fsync dominates the WAL append by orders of
//! magnitude (as it should — it IS the durability), so the append
//! numbers are reported with `sync: false` to expose the CPU cost;
//! recovery numbers include index rebuilds and are the ones that bound
//! restart time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use silkmoth_collection::Collection;
use silkmoth_core::{Engine, EngineConfig, RelatednessMetric, Update};
use silkmoth_storage::{
    load_snapshot, snapshot_bytes, SnapshotMeta, Store, StoreConfig, StoreEngine,
};
use silkmoth_text::SimilarityFunction;
use std::path::PathBuf;

fn cfg() -> EngineConfig {
    EngineConfig::full(
        RelatednessMetric::Similarity,
        SimilarityFunction::Jaccard,
        0.6,
        0.0,
    )
}

fn corpus(n: usize) -> Vec<Vec<String>> {
    (0..n)
        .map(|i| {
            (0..3)
                .map(|j| {
                    format!(
                        "w{} w{} w{} shared{}",
                        i % 97,
                        (i + j) % 53,
                        (i * 7 + j) % 31,
                        i % 11
                    )
                })
                .collect()
        })
        .collect()
}

fn engine(n: usize) -> Engine {
    Engine::new(Collection::build(&corpus(n), cfg().tokenization()), cfg()).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "silkmoth-bench-storage-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/wal_append_nosync");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    let dir = temp_dir("append");
    let mut store = Store::create(
        &dir,
        engine(1000),
        StoreConfig {
            sync: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let set = vec!["w1 w2 w3 shared0".to_string()];
    group.bench_function(BenchmarkId::from_parameter("1k-sets"), |b| {
        b.iter(|| store.apply(Update::Append(vec![set.clone()])).unwrap())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/snapshot");
    group.sample_size(10);
    for n in [1000usize, 5000] {
        let state = engine(n).capture();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| snapshot_bytes(SnapshotMeta::default(), &state))
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/recovery");
    group.sample_size(10);
    for (n, wal) in [(1000usize, 0usize), (1000, 200), (5000, 0)] {
        let dir = temp_dir(&format!("recover-{n}-{wal}"));
        let mut store = Store::create(&dir, engine(n), StoreConfig::default()).unwrap();
        for i in 0..wal {
            store
                .apply(Update::Append(vec![vec![format!("tail set {i}")]]))
                .unwrap();
        }
        drop(store);
        group.throughput(Throughput::Elements((n + wal) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}sets+{wal}wal")),
            &dir,
            |b, dir| {
                b.iter(|| {
                    let (store, report) =
                        Store::<Engine>::open(dir, &cfg(), StoreConfig::default()).unwrap();
                    assert_eq!(report.wal_replayed, wal as u64);
                    store.engine().collection().live_len()
                })
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_snapshot_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/snapshot_load");
    group.sample_size(10);
    let dir = temp_dir("load");
    let store = Store::create(&dir, engine(5000), StoreConfig::default()).unwrap();
    drop(store);
    let path = dir.join("snapshot-0.smc");
    group.throughput(Throughput::Elements(5000));
    group.bench_function(BenchmarkId::from_parameter("5k-sets"), |b| {
        b.iter(|| load_snapshot(&path).unwrap().1.live.len())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_snapshot_roundtrip,
    bench_snapshot_load,
    bench_recovery
);
criterion_main!(benches);
