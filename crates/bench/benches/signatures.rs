//! Figure 5: runtime of the signature schemes with varying θ, filters and
//! reduction disabled (§8.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silkmoth_bench::{Application, Workload};
use silkmoth_core::{FilterKind, SignatureScheme};

fn bench_schemes(c: &mut Criterion) {
    for (app, sets) in [
        (Application::StringMatching, 800),
        (Application::SchemaMatching, 800),
        (Application::InclusionDependency, 1200),
    ] {
        let alpha = app.default_alpha();
        let w = Workload::build(app, sets, alpha);
        let mut group = c.benchmark_group(format!("fig5/{}", app.name().replace(' ', "_")));
        group.sample_size(10);
        for (name, scheme) in [
            ("WEIGHTED", SignatureScheme::Weighted),
            ("COMBUNWEIGHTED", SignatureScheme::CombinedUnweighted),
            ("SKYLINE", SignatureScheme::Skyline),
            ("DICHOTOMY", SignatureScheme::Dichotomy),
        ] {
            let scheme = if alpha == 0.0 && scheme == SignatureScheme::CombinedUnweighted {
                SignatureScheme::Unweighted
            } else {
                scheme
            };
            for theta in [0.7, 0.85] {
                let cfg = w.config(theta, scheme, FilterKind::None, false);
                group.bench_with_input(
                    BenchmarkId::new(name, format!("theta_{theta}")),
                    &cfg,
                    |b, cfg| b.iter(|| w.run(*cfg).pairs),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
