//! Figure 9: scalability of full SilkMoth with the number of sets (§8.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use silkmoth_bench::{opt_config, Application, Workload};

fn bench_scaling(c: &mut Criterion) {
    for app in Application::ALL {
        let mut group = c.benchmark_group(format!("fig9/{}", app.name().replace(' ', "_")));
        group.sample_size(10);
        for sets in [400usize, 800, 1600] {
            let w = Workload::build(app, sets, app.default_alpha());
            let cfg = opt_config(&w, 0.7);
            group.throughput(Throughput::Elements(sets as u64));
            group.bench_with_input(BenchmarkId::from_parameter(sets), &cfg, |b, cfg| {
                b.iter(|| w.run(*cfg).pairs)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
