//! Figure 7: reduction-based verification on large sets (§8.4) —
//! inclusion dependency, α = 0, columns of ≥ 100 elements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silkmoth_bench::Workload;
use silkmoth_core::{FilterKind, SignatureScheme};

fn bench_reduction(c: &mut Criterion) {
    let w = Workload::build_reduction(250);
    let mut group = c.benchmark_group("fig7/reduction");
    group.sample_size(10);
    for (name, reduction) in [("NOREDUCTION", false), ("REDUCTION", true)] {
        for theta in [0.7, 0.85] {
            let cfg = w.config(
                theta,
                SignatureScheme::Dichotomy,
                FilterKind::CheckAndNearestNeighbor,
                reduction,
            );
            group.bench_with_input(
                BenchmarkId::new(name, format!("theta_{theta}")),
                &cfg,
                |b, cfg| b.iter(|| w.run(*cfg).pairs),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
