//! Microbenchmarks of the verification kernel: the Hungarian algorithm,
//! its greedy lower bound, and the effect of the §5.3 reduction at
//! various identical-element fractions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silkmoth_matching::{
    greedy_matching_score, max_weight_assignment, reduce_identical, WeightMatrix,
};

fn pseudo_weight(i: usize, j: usize) -> f64 {
    (((i * 31 + j * 17 + 7) % 101) as f64) / 101.0
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/hungarian");
    for n in [8usize, 32, 128] {
        let w = WeightMatrix::from_fn(n, n, pseudo_weight);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| max_weight_assignment(w).score)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("matching/greedy");
    for n in [32usize, 128] {
        let w = WeightMatrix::from_fn(n, n, pseudo_weight);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| greedy_matching_score(w))
        });
    }
    group.finish();
}

fn bench_reduction_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/reduction_fraction");
    let n = 128usize;
    for identical_pct in [0usize, 50, 90] {
        // Two element-key vectors sharing `identical_pct`% of keys.
        let r: Vec<u32> = (0..n as u32).collect();
        let s: Vec<u32> = (0..n)
            .map(|i| {
                if i * 100 < n * identical_pct {
                    i as u32
                } else {
                    (i + n) as u32
                }
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(identical_pct),
            &(r, s),
            |b, (r, s)| {
                b.iter(|| {
                    let red = reduce_identical(r, s);
                    let m = WeightMatrix::from_fn(red.rest_r.len(), red.rest_s.len(), |i, j| {
                        pseudo_weight(red.rest_r[i], red.rest_s[j])
                    });
                    red.identical_pairs as f64 + max_weight_assignment(&m).score
                })
            },
        );
    }
    group.finish();
}

/// Ablation: dense Hungarian vs the sparse positive-edge solver at
/// various zero fractions (what α-clamping produces in verification).
fn bench_sparse_ablation(c: &mut Criterion) {
    use silkmoth_matching::sparse::sparse_from_dense;
    let n = 96usize;
    let mut group = c.benchmark_group("matching/sparse_vs_dense");
    for zero_pct in [0usize, 80, 99] {
        let w = WeightMatrix::from_fn(n, n, |i, j| {
            let h = (i * 131 + j * 137 + 11) % 100;
            if h < zero_pct {
                0.0
            } else {
                pseudo_weight(i, j).max(0.01)
            }
        });
        group.bench_with_input(BenchmarkId::new("dense", zero_pct), &w, |b, w| {
            b.iter(|| max_weight_assignment(w).score)
        });
        group.bench_with_input(BenchmarkId::new("sparse", zero_pct), &w, |b, w| {
            b.iter(|| sparse_from_dense(w))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hungarian,
    bench_reduction_kernel,
    bench_sparse_ablation
);
criterion_main!(benches);
