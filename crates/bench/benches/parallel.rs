//! Parallel batched discovery: `discover_parallel` over external
//! references and `discover_self_parallel`, swept across thread counts.
//! Demonstrates the fan-out speedup introduced with the owned engine API
//! (output is verified identical to serial by the test suite).
//!
//! On a single-CPU host the sweep instead demonstrates that the fan-out
//! adds no measurable overhead versus the serial path — the speedup
//! requires real cores, so read the numbers alongside
//! `std::thread::available_parallelism`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use silkmoth_bench::{opt_config, Application, Workload};
use silkmoth_core::Engine;

fn bench_discover_refs(c: &mut Criterion) {
    let w = Workload::build(Application::InclusionDependency, 1500, 0.5);
    let cfg = opt_config(&w, 0.7);
    let engine = Engine::new(w.collection.clone(), cfg).expect("valid config");
    let refs: Vec<_> = w.references().into_iter().cloned().collect();

    let mut group = c.benchmark_group("parallel/discover_refs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(refs.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| engine.discover_parallel(&refs, threads).pairs),
        );
    }
    group.finish();
}

fn bench_discover_self(c: &mut Criterion) {
    let w = Workload::build(Application::SchemaMatching, 800, 0.0);
    let cfg = opt_config(&w, 0.7);
    let engine = Engine::new(w.collection.clone(), cfg).expect("valid config");

    let mut group = c.benchmark_group("parallel/discover_self");
    group.sample_size(10);
    group.throughput(Throughput::Elements(engine.collection().len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| engine.discover_self_parallel(threads).pairs),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_discover_refs, bench_discover_self);
criterion_main!(benches);
