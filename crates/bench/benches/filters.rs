//! Figure 6: runtime of the refinement filters with varying θ (§8.3),
//! dichotomy signatures, no reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silkmoth_bench::{Application, Workload};
use silkmoth_core::{FilterKind, SignatureScheme};

fn bench_filters(c: &mut Criterion) {
    for (app, sets) in [
        (Application::StringMatching, 800),
        (Application::SchemaMatching, 800),
        (Application::InclusionDependency, 1200),
    ] {
        let w = Workload::build(app, sets, app.default_alpha());
        let mut group = c.benchmark_group(format!("fig6/{}", app.name().replace(' ', "_")));
        group.sample_size(10);
        for (name, filter) in [
            ("NOFILTER", FilterKind::None),
            ("CHECK", FilterKind::Check),
            ("NEARESTNEIGHBOR", FilterKind::CheckAndNearestNeighbor),
        ] {
            for theta in [0.7, 0.85] {
                let cfg = w.config(theta, SignatureScheme::Dichotomy, filter, false);
                group.bench_with_input(
                    BenchmarkId::new(name, format!("theta_{theta}")),
                    &cfg,
                    |b, cfg| b.iter(|| w.run(*cfg).pairs),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
