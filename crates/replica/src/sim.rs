//! Deterministic in-process transport for chaos tests: a duplex pair
//! of [`SimStream`]s backed by byte queues, with per-direction fault
//! plans — delivery delays, a cut after N bytes (which truncates a
//! write mid-record before closing), and byte flips at chosen stream
//! offsets. All faults are parameters, so a seeded RNG in the test
//! makes every run reproducible.
//!
//! Only tests construct these, but the module is public API: the chaos
//! harnesses of dependent crates (the server's failover tests) drive
//! the same transport.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Faults injected into one direction of a simulated connection.
/// Offsets are absolute positions in that direction's byte stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Close the direction after delivering this many bytes; a write
    /// crossing the boundary is delivered truncated first, so the
    /// reader sees a torn frame, then EOF.
    pub cut_after: Option<u64>,
    /// XOR the byte at `.0` with the (nonzero) mask `.1` in transit.
    pub flip: Option<(u64, u8)>,
    /// Sleep this long before delivering each write.
    pub delay: Option<Duration>,
}

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

impl Pipe {
    fn close(&self) {
        self.state.lock().expect("pipe poisoned").closed = true;
        self.cond.notify_all();
    }
}

/// One endpoint of a simulated duplex connection. `Read` blocks (up to
/// the pair's read timeout) for the peer's writes; `Write` applies
/// this endpoint's outbound [`FaultPlan`]. Dropping an endpoint closes
/// both directions, so a blocked peer sees EOF rather than hanging.
#[derive(Debug)]
pub struct SimStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    faults: FaultPlan,
    written: u64,
    read_timeout: Duration,
}

/// A connected pair of [`SimStream`]s. `a_faults` shapes bytes written
/// by the first endpoint, `b_faults` bytes written by the second.
pub fn sim_duplex(
    a_faults: FaultPlan,
    b_faults: FaultPlan,
    read_timeout: Duration,
) -> (SimStream, SimStream) {
    let a_to_b = Arc::new(Pipe::default());
    let b_to_a = Arc::new(Pipe::default());
    (
        SimStream {
            rx: Arc::clone(&b_to_a),
            tx: Arc::clone(&a_to_b),
            faults: a_faults,
            written: 0,
            read_timeout,
        },
        SimStream {
            rx: a_to_b,
            tx: b_to_a,
            faults: b_faults,
            written: 0,
            read_timeout,
        },
    )
}

impl Read for SimStream {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.rx.state.lock().expect("pipe poisoned");
        while state.buf.is_empty() {
            if state.closed {
                return Ok(0);
            }
            let (next, timed_out) = self
                .rx
                .cond
                .wait_timeout(state, self.read_timeout)
                .expect("pipe poisoned");
            state = next;
            if timed_out.timed_out() && state.buf.is_empty() && !state.closed {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "simulated read timeout",
                ));
            }
        }
        let n = state.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("n bounded by len");
        }
        Ok(n)
    }
}

impl Write for SimStream {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if let Some(delay) = self.faults.delay {
            std::thread::sleep(delay);
        }
        // How much of this write survives the cut, if one is planned.
        let deliver = match self.faults.cut_after {
            Some(cut) if self.written >= cut => 0,
            Some(cut) => ((cut - self.written) as usize).min(data.len()),
            None => data.len(),
        };
        let cut_now = deliver < data.len();
        {
            let mut state = self.tx.state.lock().expect("pipe poisoned");
            if state.closed {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "simulated connection closed",
                ));
            }
            for (i, &byte) in data[..deliver].iter().enumerate() {
                let offset = self.written + i as u64;
                let byte = match self.faults.flip {
                    Some((at, mask)) if at == offset => byte ^ mask,
                    _ => byte,
                };
                state.buf.push_back(byte);
            }
            self.written += deliver as u64;
            if cut_now {
                state.closed = true;
            }
            self.tx.cond.notify_all();
        }
        if cut_now {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "simulated connection cut",
            ));
        }
        Ok(deliver)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for SimStream {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_flow_both_ways() {
        let (mut a, mut b) = sim_duplex(
            FaultPlan::default(),
            FaultPlan::default(),
            Duration::from_secs(1),
        );
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn cut_truncates_mid_write_then_closes() {
        let (mut a, mut b) = sim_duplex(
            FaultPlan {
                cut_after: Some(3),
                ..FaultPlan::default()
            },
            FaultPlan::default(),
            Duration::from_secs(1),
        );
        let err = a.write_all(b"hello").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hel");
    }

    #[test]
    fn flip_corrupts_exactly_one_byte() {
        let (mut a, mut b) = sim_duplex(
            FaultPlan {
                flip: Some((1, 0xFF)),
                ..FaultPlan::default()
            },
            FaultPlan::default(),
            Duration::from_secs(1),
        );
        a.write_all(&[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2 ^ 0xFF, 3]);
    }

    #[test]
    fn drop_unblocks_reader_with_eof() {
        let (a, mut b) = sim_duplex(
            FaultPlan::default(),
            FaultPlan::default(),
            Duration::from_secs(5),
        );
        let reader = std::thread::spawn(move || {
            let mut buf = Vec::new();
            b.read_to_end(&mut buf).unwrap();
            buf
        });
        drop(a);
        assert_eq!(reader.join().unwrap(), Vec::<u8>::new());
    }
}
