//! Follower side of replication: [`run_follower`] drives the
//! connect → handshake → replay loop with bounded backoff, applying
//! frames through a [`ReplicaSink`]. [`FollowerShared`] is the handle
//! the rest of the process holds: live status, and a stop switch that
//! interrupts both backoff sleeps and blocking reads (via a connection
//! "breaker" the connector registers).

use crate::proto::{read_frame, write_handshake, Frame, Handshake};
use crate::ReplicaError;
use silkmoth_core::wire::decode_update;
use silkmoth_storage::{parse_snapshot, Store, StoreConfig, StoreEngine};
use silkmoth_telemetry::trace::{self, TraceCollector, Tracer};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a follower obtains its transport. Abstracted so the chaos
/// harness can substitute a deterministic in-process pipe for TCP.
pub trait Connector: Send {
    /// The transport this connector produces.
    type Io: Read + Write;

    /// Establishes one connection to the primary.
    fn connect(&mut self) -> std::io::Result<Self::Io>;
}

/// TCP connector: resolves `addr` fresh on every attempt (the primary
/// may have moved), sets a read timeout so a silent primary is detected
/// a few heartbeats after it stops, and registers a breaker on `shared`
/// so [`FollowerShared::stop`] unblocks an in-flight read immediately.
pub struct TcpConnector {
    /// The primary's replication listener, `host:port`.
    pub addr: String,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Read timeout; make it a small multiple of the primary's
    /// heartbeat interval.
    pub read_timeout: Duration,
    /// Where to register the connection breaker, if anywhere.
    pub shared: Option<Arc<FollowerShared>>,
}

impl Connector for TcpConnector {
    type Io = TcpStream;

    fn connect(&mut self) -> std::io::Result<TcpStream> {
        let mut last = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.read_timeout))?;
                    let _ = stream.set_nodelay(true);
                    if let Some(shared) = &self.shared {
                        let breaker = stream.try_clone()?;
                        shared.set_breaker(move || {
                            let _ = breaker.shutdown(Shutdown::Both);
                        });
                    }
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("{} resolved to no addresses", self.addr),
            )
        }))
    }
}

/// Where replicated state lands. Implementations must make
/// [`apply_record`](ReplicaSink::apply_record) advance
/// [`applied_seq`](ReplicaSink::applied_seq) by exactly one — the
/// driver relies on that for its idempotent-skip and gap checks.
pub trait ReplicaSink: Send {
    /// The failover epoch the sink's state was applied under.
    fn epoch(&self) -> u64;

    /// Total updates applied (the handshake cursor).
    fn applied_seq(&self) -> u64;

    /// Replaces all local state with `snapshot`, positioning the sink
    /// at (`seq`, `epoch`).
    fn install_snapshot(
        &mut self,
        snapshot: &[u8],
        seq: u64,
        epoch: u64,
    ) -> Result<(), ReplicaError>;

    /// Applies the record with sequence number `seq` (always
    /// `applied_seq() + 1`; the driver has already skipped duplicates
    /// and rejected gaps).
    fn apply_record(&mut self, seq: u64, payload: &[u8]) -> Result<(), ReplicaError>;
}

/// A [`ReplicaSink`] over a local [`Store`]: records replay through the
/// store's own commit path (WAL-logged, durably), so the follower's
/// on-disk state is itself crash-recoverable, and a restart resumes
/// from the recovered cursor.
///
/// The store must be configured with compaction disabled
/// ([`StoreConfig`]'s policy = never): compactions arrive as replicated
/// records, and a locally triggered one would fork the id history. A
/// sink whose store auto-compacts fails the session with a named
/// protocol error rather than diverge silently.
pub struct StoreSink<E: StoreEngine> {
    store: Store<E>,
    spec: E::Spec,
    cfg: StoreConfig,
}

impl<E: StoreEngine> StoreSink<E> {
    /// Wraps an open follower store. `spec` and `cfg` are what
    /// bootstrap uses to rebuild the store after installing a
    /// snapshot.
    pub fn new(store: Store<E>, spec: E::Spec, cfg: StoreConfig) -> Self {
        Self { store, spec, cfg }
    }

    /// The underlying store.
    pub fn store(&self) -> &Store<E> {
        &self.store
    }

    /// Consumes the sink, returning the store (for promotion: stop the
    /// follower, take the store back, bump its epoch, serve writes).
    pub fn into_store(self) -> Store<E> {
        self.store
    }
}

impl<E: StoreEngine> ReplicaSink for StoreSink<E>
where
    E::Spec: Send,
{
    fn epoch(&self) -> u64 {
        self.store.status().epoch
    }

    fn applied_seq(&self) -> u64 {
        self.store.status().update_seq
    }

    fn install_snapshot(
        &mut self,
        snapshot: &[u8],
        seq: u64,
        epoch: u64,
    ) -> Result<(), ReplicaError> {
        let (meta, state) = parse_snapshot(snapshot, "replication bootstrap snapshot")
            .map_err(ReplicaError::Storage)?;
        if meta.update_seq != seq || meta.epoch != epoch {
            return Err(ReplicaError::Protocol(format!(
                "snapshot frame says (seq {seq}, epoch {epoch}) but its payload says (seq {}, epoch {})",
                meta.update_seq, meta.epoch
            )));
        }
        let engine = E::restore(&self.spec, state).map_err(ReplicaError::Storage)?;
        let dir = self.store.dir().to_path_buf();
        // Wipe the old on-disk state before re-creating. The old
        // store's open file handles stay valid until it is dropped.
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(ReplicaError::Io {
                    context: format!("wipe follower dir {} for bootstrap", dir.display()),
                    source: e,
                })
            }
        }
        self.store = Store::create_continuing(&dir, engine, self.cfg, seq, epoch)
            .map_err(ReplicaError::Storage)?;
        Ok(())
    }

    fn apply_record(&mut self, seq: u64, payload: &[u8]) -> Result<(), ReplicaError> {
        let decoded = decode_update(payload)
            .map_err(|e| ReplicaError::Protocol(format!("record {seq} does not decode: {e}")))?;
        let receipt = self
            .store
            .apply(decoded.update)
            .map_err(ReplicaError::Storage)?;
        if receipt.auto_compacted {
            return Err(ReplicaError::Protocol(format!(
                "follower store compacted on its own at record {seq}; follower compaction \
                 policy must be disabled (compactions are replicated, not local decisions)"
            )));
        }
        // Compactions carry the primary's id remap; the follower's
        // engine recomputed its own. A mismatch is divergence at this
        // exact record — fail loudly instead of drifting.
        if let (Some(theirs), Some(ours)) = (&decoded.remap, &receipt.outcome.remap) {
            if theirs != ours {
                return Err(ReplicaError::Protocol(format!(
                    "record {seq}: compaction remap diverged from the primary's"
                )));
            }
        }
        let now = self.store.status().update_seq;
        if now != seq {
            return Err(ReplicaError::Protocol(format!(
                "applying record {seq} left the store at seq {now}"
            )));
        }
        Ok(())
    }
}

/// Lifecycle of a follower loop, as surfaced in status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerState {
    /// Trying to reach the primary.
    Connecting,
    /// Connected and processing frames.
    Streaming,
    /// Backing off after a failure; `last_error` says which.
    Retrying,
    /// The loop has exited (after [`FollowerShared::stop`]).
    Stopped,
}

impl FollowerState {
    /// The lowercase name used in HTTP status payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Connecting => "connecting",
            Self::Streaming => "streaming",
            Self::Retrying => "retrying",
            Self::Stopped => "stopped",
        }
    }
}

/// A snapshot of a follower loop's progress.
#[derive(Debug, Clone)]
pub struct FollowerStatus {
    /// Where the loop is in its lifecycle.
    pub state: FollowerState,
    /// Updates applied locally.
    pub applied_seq: u64,
    /// The primary's committed count per its latest heartbeat (0 until
    /// the first heartbeat arrives).
    pub primary_seq: u64,
    /// Successful connections made.
    pub connects: u64,
    /// Frames processed across all connections.
    pub frames: u64,
    /// Records skipped as already applied (idempotent replay).
    pub skipped: u64,
    /// Snapshot bootstraps installed.
    pub bootstraps: u64,
    /// The most recent failure, if any.
    pub last_error: Option<String>,
}

impl FollowerStatus {
    /// Records the primary has committed that this follower has not
    /// yet applied (by the latest heartbeat; 0 before the first).
    pub fn lag(&self) -> u64 {
        self.primary_seq.saturating_sub(self.applied_seq)
    }
}

/// The process-wide handle to a running follower loop: live status, a
/// stop switch, and (internally) the connection breaker that makes
/// stop interrupt blocking reads.
pub struct FollowerShared {
    status: Mutex<FollowerStatus>,
    flags: Mutex<Flags>,
    cond: Condvar,
    breaker: Mutex<Option<Box<dyn Fn() + Send>>>,
    tracer: Mutex<Option<Arc<Tracer>>>,
}

#[derive(Debug, Default)]
struct Flags {
    stop: bool,
    exited: bool,
}

impl std::fmt::Debug for FollowerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FollowerShared")
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

impl Default for FollowerShared {
    fn default() -> Self {
        Self {
            status: Mutex::new(FollowerStatus {
                state: FollowerState::Connecting,
                applied_seq: 0,
                primary_seq: 0,
                connects: 0,
                frames: 0,
                skipped: 0,
                bootstraps: 0,
                last_error: None,
            }),
            flags: Mutex::new(Flags::default()),
            cond: Condvar::new(),
            breaker: Mutex::new(None),
            tracer: Mutex::new(None),
        }
    }
}

impl FollowerShared {
    /// A fresh handle in the `Connecting` state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current status (a copy).
    pub fn status(&self) -> FollowerStatus {
        self.status
            .lock()
            .expect("follower status poisoned")
            .clone()
    }

    /// Asks the loop to stop and breaks any in-flight read so it
    /// notices immediately.
    pub fn stop(&self) {
        self.flags.lock().expect("follower flags poisoned").stop = true;
        self.cond.notify_all();
        if let Some(breaker) = self.breaker.lock().expect("breaker poisoned").take() {
            breaker();
        }
    }

    /// Whether stop has been requested.
    pub fn stopped(&self) -> bool {
        self.flags.lock().expect("follower flags poisoned").stop
    }

    /// Waits until the loop has exited (true) or `timeout` elapses
    /// (false). Call after [`stop`](Self::stop) when the caller needs
    /// the loop provably finished — e.g. before promoting.
    pub fn wait_exited(&self, timeout: Duration) -> bool {
        let flags = self.flags.lock().expect("follower flags poisoned");
        let (flags, _) = self
            .cond
            .wait_timeout_while(flags, timeout, |f| !f.exited)
            .expect("follower flags poisoned");
        flags.exited
    }

    /// Sleeps up to `timeout` or until stop is requested; returns
    /// whether it was.
    fn wait_stop(&self, timeout: Duration) -> bool {
        let flags = self.flags.lock().expect("follower flags poisoned");
        let (flags, _) = self
            .cond
            .wait_timeout_while(flags, timeout, |f| !f.stop)
            .expect("follower flags poisoned");
        flags.stop
    }

    fn mark_exited(&self) {
        self.flags.lock().expect("follower flags poisoned").exited = true;
        self.cond.notify_all();
    }

    /// Installs the trace ring follower applies are sampled into —
    /// normally the serving service's own [`Tracer`], so
    /// `/debug/traces` on a follower shows its replication applies next
    /// to its read traffic. The tracer's 1-in-N sampling applies;
    /// without a tracer installed applies are never traced.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.lock().expect("follower tracer poisoned") = Some(tracer);
    }

    /// The tracer, when one is installed *and* its sampler elects this
    /// apply.
    fn sampled_tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer
            .lock()
            .expect("follower tracer poisoned")
            .as_ref()
            .filter(|t| t.should_sample())
            .cloned()
    }

    fn set_breaker(&self, f: impl Fn() + Send + 'static) {
        *self.breaker.lock().expect("breaker poisoned") = Some(Box::new(f));
    }

    fn update(&self, f: impl FnOnce(&mut FollowerStatus)) {
        f(&mut self.status.lock().expect("follower status poisoned"));
    }

    fn note_error(&self, msg: String) {
        self.update(|s| {
            s.state = FollowerState::Retrying;
            s.last_error = Some(msg);
        });
    }
}

/// Tuning for the follower loop.
#[derive(Debug, Clone, Copy)]
pub struct FollowerConfig {
    /// First backoff after a failure; doubles per consecutive failure.
    pub backoff_min: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Max frame body accepted, in bytes (bounds bootstrap snapshot
    /// size).
    pub max_frame_len: u32,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        Self {
            backoff_min: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            max_frame_len: 1 << 30,
        }
    }
}

/// Runs the follower loop until [`FollowerShared::stop`]: connect with
/// bounded exponential backoff (an unreachable primary is a retry, not
/// an exit), handshake with the sink's cursor, then apply frames.
/// Records at or below the cursor are skipped (replay after a
/// reconnect is idempotent); a gap above it aborts the session with a
/// named error and reconnects. Returns the sink so the caller can take
/// the replicated state back (promotion).
pub fn run_follower<C: Connector, K: ReplicaSink>(
    mut connector: C,
    mut sink: K,
    shared: &Arc<FollowerShared>,
    cfg: &FollowerConfig,
) -> K {
    let mut backoff = cfg.backoff_min;
    while !shared.stopped() {
        shared.update(|s| {
            s.state = FollowerState::Connecting;
            s.applied_seq = sink.applied_seq();
        });
        let mut io = match connector.connect() {
            Ok(io) => io,
            Err(e) => {
                shared.note_error(format!("connect: {e}"));
                if shared.wait_stop(backoff) {
                    break;
                }
                backoff = (backoff * 2).min(cfg.backoff_max);
                continue;
            }
        };
        shared.update(|s| {
            s.connects += 1;
            s.state = FollowerState::Streaming;
        });
        let frames_before = shared.status().frames;
        match stream_session(&mut io, &mut sink, shared, cfg) {
            Ok(()) => break, // stop requested
            Err(e) => {
                shared.note_error(e.to_string());
                if shared.status().frames > frames_before {
                    backoff = cfg.backoff_min;
                }
                if shared.wait_stop(backoff) {
                    break;
                }
                backoff = (backoff * 2).min(cfg.backoff_max);
            }
        }
    }
    shared.update(|s| s.state = FollowerState::Stopped);
    shared.mark_exited();
    sink
}

fn stream_session<Io: Read + Write, K: ReplicaSink>(
    io: &mut Io,
    sink: &mut K,
    shared: &Arc<FollowerShared>,
    cfg: &FollowerConfig,
) -> Result<(), ReplicaError> {
    write_handshake(
        io,
        &Handshake {
            epoch: sink.epoch(),
            applied_seq: sink.applied_seq(),
        },
    )?;
    loop {
        if shared.stopped() {
            return Ok(());
        }
        let frame = read_frame(io, cfg.max_frame_len)?;
        // Nothing may be applied after a stop request: promotion
        // assumes the applied count is frozen once stop() returns and
        // the loop is seen exited.
        if shared.stopped() {
            return Ok(());
        }
        shared.update(|s| s.frames += 1);
        match frame {
            Frame::Heartbeat { committed_seq } => {
                shared.update(|s| s.primary_seq = committed_seq);
            }
            Frame::Record { seq, payload } => {
                let applied = sink.applied_seq();
                if seq <= applied {
                    shared.update(|s| s.skipped += 1);
                    continue;
                }
                if seq != applied + 1 {
                    return Err(ReplicaError::Protocol(format!(
                        "record sequence gap: applied {applied}, next frame is {seq}"
                    )));
                }
                // Sampled applies land in the service's trace ring as
                // one-span traces keyed by the update seq, so a
                // follower's `/debug/traces` answers "what is apply
                // latency here" the way `/search` traces answer it for
                // queries.
                let capture = shared.sampled_tracer();
                let applied_at = Instant::now();
                sink.apply_record(seq, &payload)?;
                if let Some(tracer) = capture {
                    let mut t = TraceCollector::begin(seq, "replica/apply");
                    let span = t.add_span(trace::ROOT, "apply", 0, applied_at.elapsed());
                    t.attr_u64(span, "seq", seq);
                    t.attr_u64(span, "bytes", payload.len() as u64);
                    tracer.record(t.finish(0, false));
                }
                shared.update(|s| s.applied_seq = seq);
            }
            Frame::Snapshot {
                epoch,
                seq,
                snapshot,
            } => {
                sink.install_snapshot(&snapshot, seq, epoch)?;
                shared.update(|s| {
                    s.applied_seq = seq;
                    s.bootstraps += 1;
                });
            }
            Frame::Error(msg) => {
                return Err(ReplicaError::Protocol(format!("primary said: {msg}")));
            }
        }
    }
}
