//! WAL-shipping replication for silkmoth stores.
//!
//! A primary exposes its storage WAL as a versioned, length-prefixed,
//! CRC-checked record stream over TCP ([`serve_log`]). A follower
//! connects with a cursor — the count of updates it has already
//! applied plus the failover epoch it applied them under — and the
//! primary either resumes streaming raw WAL records from that point or,
//! when the cursor predates the oldest retained WAL generation (or
//! belongs to a different epoch), sends a full snapshot to bootstrap
//! from. The follower replays records through the same
//! [`Store`](silkmoth_storage::Store) commit path the primary used, so
//! a caught-up follower is *byte-identical* to the primary: same ids,
//! same tie order, bit-equal scores (the recovery-equivalence guarantee
//! of the storage layer, transported).
//!
//! # Cursor and epoch
//!
//! The cursor is the store's `update_seq` — the total number of updates
//! ever committed, monotonic across snapshot rotations. Record *seq* n
//! is the n-th committed update; a follower that has applied n asks for
//! n+1 onward. The *epoch* counts failovers: promoting a follower bumps
//! it durably ([`Store::bump_epoch`](silkmoth_storage::Store)), so a
//! cursor minted under an older epoch — which may index a diverged
//! history — is never silently resumed; the primary answers it with a
//! snapshot instead.
//!
//! # Wire format
//!
//! All integers little-endian. The follower opens with a 25-byte
//! handshake: magic `"SMRS"`, version byte (currently
//! [`PROTOCOL_VERSION`]), epoch `u64`, applied seq `u64`, CRC-32 of the
//! preceding 21 bytes. The primary then sends frames:
//! `tag u8 | body_len u32 | crc32(tag + body) u32 | body`. Tags:
//! error (0, UTF-8 message), heartbeat (1, committed seq), record
//! (2, seq + raw WAL payload), snapshot (3, epoch + seq + bytes in the
//! storage snapshot-file format). Unknown magic, versions, and tags are
//! rejected by name; a version bump is required for any layout change.
//!
//! # Modules
//!
//! - `proto`: the framing itself — encode/decode, CRC, length caps.
//! - `source`: primary side — [`ReplicationSource`] over a store,
//!   [`stream_updates`] for one follower connection, [`serve_log`] for
//!   the TCP accept loop, and [`CommitSignal`] to wake streamers at the
//!   store's commit point.
//! - `follower`: follower side — [`run_follower`] drives connect /
//!   handshake / replay with bounded backoff, applying through a
//!   [`ReplicaSink`]; [`FollowerShared`] exposes live status and stop.
//! - `sim`: a deterministic in-process duplex transport with seeded
//!   faults (delays, cuts mid-record, byte flips) for chaos tests.
//! - `telemetry`: [`FollowerMetrics`] — replication lag / connect /
//!   bootstrap gauges refreshed from a [`FollowerStatus`] at scrape
//!   time, so the replication loop itself stays metrics-free.

mod follower;
mod proto;
mod sim;
mod source;
mod telemetry;

pub use follower::{
    run_follower, Connector, FollowerConfig, FollowerShared, FollowerState, FollowerStatus,
    ReplicaSink, StoreSink, TcpConnector,
};
pub use proto::{
    read_frame, read_handshake, write_frame, write_handshake, Frame, Handshake, PROTOCOL_VERSION,
};
pub use sim::{sim_duplex, FaultPlan, SimStream};
pub use source::{
    serve_log, store_records_after, stream_updates, CommitSignal, CursorHandle, CursorTracker,
    ReplicaServer, ReplicationSource, StoreSource, StreamerConfig,
};
pub use telemetry::FollowerMetrics;

use silkmoth_storage::StorageError;
use std::fmt;
use std::io;

/// Errors from the replication layer. `Frame` means bytes that don't
/// parse as the protocol (torn, flipped, or foreign traffic); `Protocol`
/// means well-formed frames that violate the session contract (sequence
/// gaps, a primary that compacts under us, an error frame from the
/// peer). Both name what was wrong — the chaos and fuzz harnesses
/// assert on that.
#[derive(Debug)]
pub enum ReplicaError {
    /// An I/O failure, with what was being done at the time.
    Io {
        /// What the operation was trying to do.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// Bytes that do not parse as a protocol frame or handshake.
    Frame(String),
    /// A parseable message that violates the session contract.
    Protocol(String),
    /// A storage-layer failure while applying or serving records.
    Storage(StorageError),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "{context}: {source}"),
            Self::Frame(detail) => write!(f, "bad frame: {detail}"),
            Self::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            Self::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ReplicaError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl ReplicaError {
    pub(crate) fn io(context: impl Into<String>) -> impl FnOnce(io::Error) -> Self {
        let context = context.into();
        move |source| Self::Io { context, source }
    }
}
