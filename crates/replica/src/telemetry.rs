//! Replication metrics: a bundle of gauges and counters describing one
//! follower loop, refreshed from its [`FollowerStatus`] at scrape time.
//!
//! The follower loop itself stays metrics-free — it already maintains
//! [`FollowerStatus`] under [`FollowerShared`], so the metrics layer
//! polls that snapshot when `/metrics` is scraped instead of
//! instrumenting the replication hot path. Monotonic totals
//! (`connects`, `bootstraps`) go through
//! [`Counter::record_total`](silkmoth_telemetry::Counter::record_total)
//! so a scrape can never observe them moving backwards even though they
//! are polled, not incremented.

use silkmoth_telemetry::{Counter, Gauge, Registry};

use crate::follower::{FollowerState, FollowerStatus};

/// The replication metric family bundle. Register once per process
/// with [`FollowerMetrics::register`], then call
/// [`record`](Self::record) with the current status whenever fresh
/// values are wanted (typically on each `/metrics` scrape).
#[derive(Debug, Clone)]
pub struct FollowerMetrics {
    lag: Gauge,
    applied_seq: Gauge,
    primary_seq: Gauge,
    streaming: Gauge,
    connects: Counter,
    bootstraps: Counter,
}

impl FollowerMetrics {
    /// Gets or creates the replication families in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            lag: registry.gauge(
                "silkmoth_replication_lag_records",
                "Records the primary has committed that this follower has not yet applied",
                &[],
            ),
            applied_seq: registry.gauge(
                "silkmoth_replication_applied_seq",
                "Updates this follower has applied locally",
                &[],
            ),
            primary_seq: registry.gauge(
                "silkmoth_replication_primary_seq",
                "The primary's committed update count per its latest heartbeat",
                &[],
            ),
            streaming: registry.gauge(
                "silkmoth_replication_streaming",
                "1 while the follower is connected and processing frames, else 0",
                &[],
            ),
            connects: registry.counter(
                "silkmoth_replication_connects_total",
                "Successful connections this follower has made to the primary",
                &[],
            ),
            bootstraps: registry.counter(
                "silkmoth_replication_bootstraps_total",
                "Snapshot bootstraps this follower has performed",
                &[],
            ),
        }
    }

    /// Refreshes every family from one status snapshot.
    pub fn record(&self, status: &FollowerStatus) {
        self.lag.set(status.lag() as i64);
        self.applied_seq.set(status.applied_seq as i64);
        self.primary_seq.set(status.primary_seq as i64);
        self.streaming
            .set(i64::from(status.state == FollowerState::Streaming));
        self.connects.record_total(status.connects);
        self.bootstraps.record_total(status.bootstraps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(applied: u64, primary: u64, connects: u64) -> FollowerStatus {
        FollowerStatus {
            state: FollowerState::Streaming,
            applied_seq: applied,
            primary_seq: primary,
            connects,
            frames: 0,
            skipped: 0,
            bootstraps: 1,
            last_error: None,
        }
    }

    #[test]
    fn record_reflects_the_status_snapshot() {
        let registry = Registry::new();
        let metrics = FollowerMetrics::register(&registry);
        metrics.record(&status(7, 10, 3));
        let page = registry.render();
        assert!(
            page.contains("silkmoth_replication_lag_records 3"),
            "{page}"
        );
        assert!(
            page.contains("silkmoth_replication_applied_seq 7"),
            "{page}"
        );
        assert!(page.contains("silkmoth_replication_streaming 1"), "{page}");
        assert!(
            page.contains("silkmoth_replication_connects_total 3"),
            "{page}"
        );
    }

    #[test]
    fn polled_counters_never_move_backwards() {
        // A racing status read could deliver an older snapshot after a
        // newer one; record_total's fetch_max keeps the exposed counter
        // monotonic regardless of arrival order.
        let registry = Registry::new();
        let metrics = FollowerMetrics::register(&registry);
        metrics.record(&status(5, 5, 4));
        metrics.record(&status(3, 5, 2)); // stale snapshot arrives late
        let page = registry.render();
        assert!(
            page.contains("silkmoth_replication_connects_total 4"),
            "{page}"
        );
    }
}
